"""Quickstart: build a graph, run similarity search, survive a schema change.

This walks the paper's Figure-1 example end to end:

1. build the DBLP-style bibliographic fragment;
2. ask "which research area is most similar to Data Mining?" with
   PathSim, SimRank, RWR and RelSim;
3. restructure the database into the SIGMOD-Record style (areas attach
   to proceedings instead of papers) with the DBLP2SIGM transformation;
4. show that the baselines change their answers while RelSim — with the
   Theorem-2-translated RRE pattern — returns exactly the same ranking.

Run:  python examples/quickstart.py
"""

from repro import RWR, PathSim, RelSim, SimRank, parse_pattern
from repro.datasets import figure1_dblp
from repro.transform import dblp2sigm, map_pattern


def show_ranking(title, ranking):
    print("  {}:".format(title))
    for node, score in ranking.items():
        print("    {:<22s} {:.4f}".format(node, score))


def main():
    # ------------------------------------------------------------------
    # 1. The Figure-1(a) fragment: papers, conferences, research areas.
    # ------------------------------------------------------------------
    db = figure1_dblp()
    print("Original database:", db)
    print()

    # ------------------------------------------------------------------
    # 2. Similarity search on the original structure.
    #    The relationship: areas are similar when the same conferences
    #    publish papers in them (area <- paper -> proc <- paper -> area).
    # ------------------------------------------------------------------
    pattern = parse_pattern("r-a-.p-in.p-in-.r-a")
    query = "DataMining"

    print("Who is most similar to {!r}?".format(query))
    show_ranking("PathSim", PathSim(db, pattern).rank(query))
    show_ranking("SimRank", SimRank(db).rank(query))
    show_ranking("RWR", RWR(db).rank(query))
    relsim = RelSim(db, pattern)
    show_ranking("RelSim", relsim.rank(query))
    print()

    # ------------------------------------------------------------------
    # 3. Restructure: the SIGMOD-Record style of Figure 1(b).
    # ------------------------------------------------------------------
    mapping = dblp2sigm()
    variant = mapping.apply(db)
    print("Transformed database (DBLP2SIGM):", variant)
    print("   r-a edges now:", sorted(variant.edges("r-a")))
    print()

    # ------------------------------------------------------------------
    # 4. Same question over the new structure.
    #    Baselines run on the new topology; RelSim uses the pattern
    #    translated by the Theorem-2 mapping: r-a  =>  <<p-in.r-a>>.
    # ------------------------------------------------------------------
    translated = map_pattern(mapping, pattern)
    print("RelSim pattern over the new structure:", translated)
    print()

    print("Who is most similar to {!r} now?".format(query))
    # The natural simple pattern over the new structure for PathSim:
    show_ranking("PathSim", PathSim(variant, "r-a-.r-a").rank(query))
    show_ranking("SimRank", SimRank(variant).rank(query))
    show_ranking("RWR", RWR(variant).rank(query))
    show_ranking("RelSim", RelSim(variant, translated).rank(query))
    print()

    original = relsim.rank(query).top()
    after = RelSim(variant, translated).rank(query).top()
    print("RelSim ranking before:", original)
    print("RelSim ranking after: ", after)
    assert original == after, "RelSim must be structurally robust!"
    print("=> identical: RelSim is structurally robust (Corollary 1).")


if __name__ == "__main__":
    main()
