"""Quickstart: build a graph, run similarity search, survive a schema change.

This walks the paper's Figure-1 example end to end:

1. build the DBLP-style bibliographic fragment and open a
   ``SimilaritySession`` — the one entry point: every algorithm asked of
   the session shares one engine of materialized matrices;
2. ask "which research area is most similar to Data Mining?" with
   PathSim, SimRank, RWR and RelSim, all by registry name;
3. restructure the database into the SIGMOD-Record style (areas attach
   to proceedings instead of papers) with the DBLP2SIGM transformation;
4. show that the baselines change their answers while RelSim — with the
   Theorem-2-translated RRE pattern — returns exactly the same ranking;
5. serve the query shape: prepare once, run per node on pinned state,
   and absorb a live edge update through ``SimilarityService``'s atomic
   snapshot swap;
6. serve it over the network: boot the HTTP front-end on a free port
   and ask the same question with a JSON request.

Run:  python examples/quickstart.py
"""

import json
import urllib.request

from repro import SimilarityService, SimilaritySession, parse_pattern
from repro.server import BackgroundServer
from repro.transform import dblp2sigm, map_pattern
from repro.datasets import figure1_dblp


def show_ranking(title, ranking):
    print("  {}:".format(title))
    for node, score in ranking.items():
        print("    {:<22s} {:.4f}".format(node, score))


def main():
    # ------------------------------------------------------------------
    # 1. The Figure-1(a) fragment: papers, conferences, research areas.
    # ------------------------------------------------------------------
    db = figure1_dblp()
    session = SimilaritySession(db)
    print("Original database:", db)
    print()

    # ------------------------------------------------------------------
    # 2. Similarity search on the original structure.
    #    The relationship: areas are similar when the same conferences
    #    publish papers in them (area <- paper -> proc <- paper -> area).
    #    One session: PathSim and RelSim share the commuting matrices.
    # ------------------------------------------------------------------
    pattern = parse_pattern("r-a-.p-in.p-in-.r-a")
    query = "DataMining"

    print("Who is most similar to {!r}?".format(query))
    show_ranking(
        "PathSim", session.query(query).using("pathsim", pattern=pattern).rank()
    )
    show_ranking("SimRank", session.query(query).using("simrank").rank())
    show_ranking("RWR", session.query(query).using("rwr").rank())
    relsim = session.algorithm("relsim", pattern=pattern)
    show_ranking("RelSim", relsim.rank(query))
    print()

    # ------------------------------------------------------------------
    # 3. Restructure: the SIGMOD-Record style of Figure 1(b).
    # ------------------------------------------------------------------
    mapping = dblp2sigm()
    variant = mapping.apply(db)
    print("Transformed database (DBLP2SIGM):", variant)
    print("   r-a edges now:", sorted(variant.edges("r-a")))
    print()

    # ------------------------------------------------------------------
    # 4. Same question over the new structure — a fresh session, because
    #    a session is a snapshot of one database.  Baselines run on the
    #    new topology; RelSim uses the pattern translated by the
    #    Theorem-2 mapping: r-a  =>  <<p-in.r-a>>.
    # ------------------------------------------------------------------
    translated = map_pattern(mapping, pattern)
    variant_session = SimilaritySession(variant)
    print("RelSim pattern over the new structure:", translated)
    print()

    print("Who is most similar to {!r} now?".format(query))
    # The natural simple pattern over the new structure for PathSim:
    show_ranking(
        "PathSim",
        variant_session.query(query).using("pathsim", pattern="r-a-.r-a").rank(),
    )
    show_ranking("SimRank", variant_session.query(query).using("simrank").rank())
    show_ranking("RWR", variant_session.query(query).using("rwr").rank())
    show_ranking(
        "RelSim",
        variant_session.query(query).using("relsim", pattern=translated).rank(),
    )
    print()

    original = relsim.rank(query).top()
    after = (
        variant_session.query(query)
        .using("relsim", pattern=translated)
        .rank()
        .top()
    )
    print("RelSim ranking before:", original)
    print("RelSim ranking after: ", after)
    assert original == after, "RelSim must be structurally robust!"
    print("=> identical: RelSim is structurally robust (Corollary 1).")
    print()

    # ------------------------------------------------------------------
    # 5. Serving: prepare the query shape once (parse, compile, warm),
    #    run it per node with near-zero overhead, and keep serving
    #    through a live update — the service rebuilds a fresh snapshot
    #    off the serving path and swaps it in atomically, re-binding
    #    the prepared handle.
    # ------------------------------------------------------------------
    service = SimilarityService(db)
    prepared = service.prepare(algorithm="relsim", pattern=pattern, top_k=3)
    show_ranking(
        "RelSim (prepared, v{})".format(service.version), prepared.run(query)
    )
    service.apply(edges_added=[("CodeMining", "p-in", "VLDB")])
    show_ranking(
        "RelSim (prepared, v{} after live update)".format(service.version),
        prepared.run(query),
    )
    print()

    # ------------------------------------------------------------------
    # 6. Over the network: the same service behind the asyncio HTTP
    #    front-end (what `repro serve` runs).  port=0 binds a free
    #    port; concurrent /query requests would coalesce into batches.
    # ------------------------------------------------------------------
    with BackgroundServer(service, prepared, port=0) as server:
        url = "http://{}:{}/query".format(*server.address)
        response = urllib.request.urlopen(
            urllib.request.Request(
                url, data=json.dumps({"node": query}).encode()
            ),
            timeout=30,
        )
        answer = json.loads(response.read())
    print("HTTP POST /query {!r} (version {}):".format(
        query, answer["version"]
    ))
    for node, score in answer["ranking"]:
        print("    {:<22s} {:.4f}".format(node, score))
    assert answer["ranking"] == [
        [node, score] for node, score in prepared.run(query).items()
    ], "the wire answer must match the in-process one"


if __name__ == "__main__":
    main()
