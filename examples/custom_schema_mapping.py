"""Authoring your own schema, constraints, and transformation.

The other examples use the paper's catalog; this one builds everything
from scratch for a new domain — a movie graph — and shows the full
workflow a downstream user follows to make *their* similarity feature
structurally robust:

1. define the source schema (with the tgd constraint that licenses a
   structural variation) and load data;
2. write the transformation and its inverse as declarative rules;
3. validate: roundtrip invertibility + the Proposition-1 composition;
4. derive the Theorem-2 pattern translation and run RelSim on both
   shapes;
5. persist the database to JSON and reload it.

Domain: movies credit actors via casting records (movie <- cast -> actor),
and every movie of a franchise shares the franchise's studio.  A partner
feed denormalizes: it links movies directly to studios and drops the
franchise hop.

Run:  python examples/custom_schema_mapping.py
"""

import os
import tempfile

from repro import (
    GraphDatabase,
    Schema,
    SimilaritySession,
    parse_pattern,
    parse_tgd,
)
from repro.constraints.tgd import Atom
from repro.graph.io import load_json, save_json
from repro.transform import (
    Rule,
    SchemaMapping,
    copy_rule,
    derived_source_constraints,
    map_pattern,
    verify_derived_constraints,
    verify_roundtrip,
)


def build_source_schema():
    """Movies belong to franchises; franchises are produced by studios.

    The tgd says the direct movie->studio edge is exactly the franchise
    composition — the constraint that makes denormalization invertible.
    """
    constraint = parse_tgd(
        "(m, in-franchise, f) & (f, produced-by, s) -> (m, made-by, s)"
    )
    return Schema(
        labels=["acts-in", "in-franchise", "produced-by", "made-by"],
        constraints=[constraint],
        node_types={
            "acts-in": ("actor", "movie"),
            "in-franchise": ("movie", "franchise"),
            "produced-by": ("franchise", "studio"),
            "made-by": ("movie", "studio"),
        },
    )


def build_target_schema():
    """The partner feed: no franchise nodes, movies link to studios."""
    return Schema(
        labels=["acts-in", "made-by"],
        node_types={
            "acts-in": ("actor", "movie"),
            "made-by": ("movie", "studio"),
        },
    )


def load_movies(schema):
    db = GraphDatabase(schema)
    franchises = {
        "galaxy-saga": ("stellar-studios", ["gs1", "gs2", "gs3"]),
        "noir-nights": ("moonlight-films", ["nn1", "nn2"]),
        "slapstick": ("moonlight-films", ["sl1"]),
    }
    casts = {
        "gs1": ["ada", "bruno"],
        "gs2": ["ada", "chen"],
        "gs3": ["bruno", "chen"],
        "nn1": ["dara", "chen"],
        "nn2": ["dara", "ada"],
        "sl1": ["bruno"],
    }
    for franchise, (studio, movies) in franchises.items():
        db.add_node(franchise, "franchise")
        db.add_node(studio, "studio")
        db.add_edge(franchise, "produced-by", studio)
        for movie in movies:
            db.add_node(movie, "movie")
            db.add_edge(movie, "in-franchise", franchise)
            db.add_edge(movie, "made-by", studio)  # satisfies the tgd
    for movie, actors in casts.items():
        for actor in actors:
            db.add_node(actor, "actor")
            db.add_edge(actor, "acts-in", movie)
    return db


def build_denormalizing_mapping(source):
    """The feed drops the derivable ``made-by`` edges and keeps the
    franchise path; the inverse re-derives ``made-by`` from it — the
    same pattern as the paper's BioMedT."""
    feed_schema = Schema(
        labels=["acts-in", "in-franchise", "produced-by"],
        node_types={
            "acts-in": ("actor", "movie"),
            "in-franchise": ("movie", "franchise"),
            "produced-by": ("franchise", "studio"),
        },
    )
    forward = SchemaMapping(
        "MOVIES2NORM",
        source,
        feed_schema,
        rules=[
            copy_rule("acts-in"),
            copy_rule("in-franchise"),
            copy_rule("produced-by"),
        ],
    )
    inverse = SchemaMapping(
        "MOVIES2NORM-inverse",
        feed_schema,
        source,
        rules=[
            copy_rule("acts-in"),
            copy_rule("in-franchise"),
            copy_rule("produced-by"),
            Rule(
                premise=[Atom("m", "in-franchise.produced-by", "s")],
                conclusion=[Atom("m", "made-by", "s")],
            ),
        ],
    )
    return forward.with_inverse(inverse)


def main():
    source = build_source_schema()
    db = load_movies(source)
    print("Movie graph:", db)

    mapping = build_denormalizing_mapping(source)
    print("Invertible:", verify_roundtrip(mapping, db))
    print("Proposition-1 composition holds:",
          verify_derived_constraints(mapping, db))
    for constraint in derived_source_constraints(mapping):
        print("  derived constraint:", constraint)
    print()

    # Similarity: movies similar when made by the same studio, weighted
    # by shared cast members along the way.
    pattern = parse_pattern("made-by.made-by-.acts-in-.acts-in")
    translated = map_pattern(mapping, pattern)
    print("Pattern on source:", pattern)
    print("Pattern on feed:  ", translated)

    variant = mapping.apply(db)
    query = "gs1"
    # One fluent session per shape; "relsim" is resolved through the
    # algorithm registry.
    source_top = (
        SimilaritySession(db)
        .query(query).using("relsim", pattern=pattern).top(4)
    )
    feed_top = (
        SimilaritySession(variant)
        .query(query).using("relsim", pattern=translated).top(4)
    )
    print("RelSim top-4 for {} on source: {}".format(query, source_top.top()))
    print("RelSim top-4 for {} on feed:   {}".format(query, feed_top.top()))
    assert source_top.top() == feed_top.top()
    print("=> robust across the custom transformation.")
    print()

    # Persistence round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "movies.json")
        save_json(db, path)
        reloaded = load_json(path)
        print("JSON round trip intact:", reloaded.same_content(db))


if __name__ == "__main__":
    main()
