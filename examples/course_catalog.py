"""Course-catalog integration (the WSU / Alchemy UW-CSE scenario).

Two universities publish course catalogs with the same information in
different shapes: WSU attaches subjects to *offerings*, Alchemy UW-CSE
attaches them to *courses*.  A "find similar courses" feature built and
tuned on one catalog silently degrades on the other — unless the
similarity algorithm is structurally robust.

This example:

1. generates a WSU-style catalog and transforms it into the Alchemy
   style (WSUC2ALCH);
2. verifies the transformation is invertible (no information lost) and
   that the derived Proposition-1 constraint holds on the source;
3. compares the top-5 "similar courses" lists of PathSim/RWR/RelSim on
   both shapes and reports each algorithm's average Kendall tau;
4. demonstrates Algorithm 1: the user writes the simple WSU-side
   pattern and the system derives the robust pattern set from the
   schema constraint.

Run:  python examples/course_catalog.py
"""

from repro import SimilaritySession, parse_pattern
from repro.datasets import generate_wsu, sample_queries_by_degree
from repro.eval import RobustnessExperiment, robustness_table
from repro.patterns import generate_patterns
from repro.transform import (
    map_pattern,
    verify_derived_constraints,
    verify_roundtrip,
    wsuc2alch,
)


def main():
    bundle = generate_wsu(seed=2)
    db = bundle.database
    mapping = wsuc2alch()
    variant = mapping.apply(db)
    print("WSU catalog:            ", db)
    print("Alchemy-style catalog:  ", variant)
    print()

    # ------------------------------------------------------------------
    # Information preservation (Section 3).
    # ------------------------------------------------------------------
    print("WSUC2ALCH invertible on this catalog: ",
          verify_roundtrip(mapping, db))
    print("Proposition-1 derived constraint held:",
          verify_derived_constraints(mapping, db))
    print()

    # ------------------------------------------------------------------
    # Robustness comparison on a degree-weighted course workload.
    # ------------------------------------------------------------------
    p_src = parse_pattern("co-.os.os-.co")  # courses sharing subjects
    p_tgt = map_pattern(mapping, p_src)
    print("RelSim pattern, WSU side:    ", p_src)
    print("RelSim pattern, Alchemy side:", p_tgt)
    print()

    # One session per catalog shape: the three algorithms on each side
    # share that side's materialized matrices, and the workload is
    # scored through the batch path.
    wsu_session = SimilaritySession(db)
    alch_session = SimilaritySession(variant)
    queries = sample_queries_by_degree(db, "course", 40, seed=0)
    experiment = RobustnessExperiment(
        db,
        variant,
        {
            "PathSim": (
                lambda s: s.algorithm("pathsim", pattern="co-.os.os-.co"),
                lambda s: s.algorithm("pathsim", pattern="cs.cs-"),
            ),
            "RWR": (
                lambda s: s.algorithm("rwr"),
                lambda s: s.algorithm("rwr"),
            ),
            "RelSim": (
                lambda s: s.algorithm("relsim", pattern=p_src),
                lambda s: s.algorithm("relsim", pattern=p_tgt),
            ),
        },
        queries=queries,
        sessions=(wsu_session, alch_session),
        transformation_name="WSUC2ALCH",
    )
    print(robustness_table([experiment.run()],
                           title="Ranking difference across catalogs"))
    print()

    # ------------------------------------------------------------------
    # One concrete query, side by side (fluent form).
    # ------------------------------------------------------------------
    query = queries[0]
    wsu_top = (
        wsu_session.query(query).using("relsim", pattern=p_src).top(5).top()
    )
    alch_top = (
        alch_session.query(query).using("relsim", pattern=p_tgt).top(5).top()
    )
    print("RelSim top-5 for {} on WSU:    {}".format(query, wsu_top))
    print("RelSim top-5 for {} on Alchemy:{}".format(query, alch_top))
    assert wsu_top == alch_top
    print("=> identical lists on both catalog shapes.")
    print()

    # ------------------------------------------------------------------
    # Usability: Algorithm 1 on the schema constraint.
    # ------------------------------------------------------------------
    generated = generate_patterns(p_src, db.schema.constraints,
                                  max_patterns=12)
    print("Algorithm 1 pattern set for {} (constraint-aware):".format(p_src))
    for pattern in generated:
        print("   ", pattern)


if __name__ == "__main__":
    main()
