"""Drug repurposing over a biomedical knowledge graph (BioMed scenario).

The paper's motivating NIH use case: rank candidate drugs for a queried
disease by how strongly they connect through phenotypes and protein
targets.  The catch: biomedical graphs are routinely restructured — the
curators here materialize ``indirect-associated-with`` shortcut edges
(derivable from ``is-parent-of`` plus the direct associations), and a
later cleanup pass (BioMedT) removes them again.

This example shows:

1. MRR of HeteSim, RWR, SimRank and RelSim against planted expert
   relevance (the Table-3 experiment);
2. that RelSim's answers — and therefore its MRR — are bit-identical
   before and after the BioMedT restructuring, while the baselines move;
3. the usability layer: the user submits only the *simple* meta-path and
   Algorithm 1 derives the robust RRE set from the schema's constraints.

Run:  python examples/drug_repurposing.py
"""

from repro import RWR, HeteSim, RelSim, SimilaritySession, SimRank, parse_pattern
from repro.datasets import generate_biomed_small
from repro.eval import (
    EffectivenessExperiment,
    effectiveness_table,
    mean_reciprocal_rank,
)
from repro.transform import EXPERIMENT_PATTERNS, biomedt, map_pattern


def main():
    bundle = generate_biomed_small(seed=0)
    db = bundle.database
    print("BioMed:", db)
    print("Query workload: {} diseases with expert-relevant drugs".format(
        len(bundle.ground_truth)))
    print()

    mapping = biomedt()
    variant = mapping.apply(db)
    print("After BioMedT (indirect edges dropped):", variant)
    print()

    spec = EXPERIMENT_PATTERNS["BioMedT"]
    p_src = parse_pattern(spec["relsim_source"])
    p_tgt = map_pattern(mapping, p_src)
    print("Evaluation relationship:  disease -> phenotype -> protein <- drug")
    print("  original pattern:   ", p_src)
    print("  translated pattern: ", p_tgt)
    print()

    # ------------------------------------------------------------------
    # Table-3-style effectiveness comparison.
    # ------------------------------------------------------------------
    algorithms = {
        "HeteSim": {
            "original": lambda d: HeteSim(
                d, spec["pathsim_source"], answer_type="drug"
            ),
            "under BioMedT": lambda d: HeteSim(
                d, spec["pathsim_target"], answer_type="drug"
            ),
        },
        "RWR": {
            "original": lambda d: RWR(d, answer_type="drug"),
            "under BioMedT": lambda d: RWR(d, answer_type="drug"),
        },
        "SimRank": {
            "original": lambda d: SimRank(d, answer_type="drug"),
            "under BioMedT": lambda d: SimRank(d, answer_type="drug"),
        },
        "RelSim": {
            "original": lambda d: RelSim(
                d, p_src, scoring="cosine", answer_type="drug"
            ),
            "under BioMedT": lambda d: RelSim(
                d, p_tgt, scoring="cosine", answer_type="drug"
            ),
        },
    }
    result = EffectivenessExperiment(
        variants={"original": db, "under BioMedT": variant},
        algorithms=algorithms,
        ground_truth=bundle.ground_truth,
    ).run()
    print(effectiveness_table(result, title="MRR on disease->drug queries"))
    print()

    # ------------------------------------------------------------------
    # The usability layer (Section 5) through the session facade: the
    # user supplies only the simple meta-path; the fluent builder runs
    # Algorithm 1 against the schema constraints, and the whole query
    # workload is scored in one batch (one sparse row slice per
    # pattern, shared matrices for every algorithm on this session).
    # ------------------------------------------------------------------
    session = SimilaritySession(db)
    builder = (
        session.query(next(iter(bundle.ground_truth)))
        .using("relsim", pattern=spec["relsim_source"],
               scoring="cosine", answer_type="drug")
        .expand_patterns()
    )
    usable = builder.build()
    print("Algorithm 1 expanded the simple input into {} RREs:".format(
        len(builder.patterns_used)))
    for pattern in builder.patterns_used:
        print("   ", pattern)
    batch = session.rank_many(bundle.ground_truth, algorithm=usable)
    rankings = {q: ranking.top() for q, ranking in batch.items()}
    print("Aggregated-RelSim MRR: {:.3f}".format(
        mean_reciprocal_rank(rankings, bundle.ground_truth)))
    print()

    # ------------------------------------------------------------------
    # Spot-check a single query.
    # ------------------------------------------------------------------
    query = next(iter(bundle.ground_truth))
    relevant = bundle.ground_truth[query]
    ranking = (
        session.query(query)
        .using("relsim", pattern=p_src, scoring="cosine", answer_type="drug")
        .top(5)
    )
    print("Top-5 drugs for {} (expert answer: {}):".format(query, relevant))
    for position, (drug, score) in enumerate(ranking.items(), start=1):
        marker = "  <== relevant" if drug == relevant else ""
        print("  {}. {:<12s} {:.4f}{}".format(position, drug, score, marker))


if __name__ == "__main__":
    main()
