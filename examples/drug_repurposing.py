"""Drug repurposing over a biomedical knowledge graph (BioMed scenario).

The paper's motivating NIH use case: rank candidate drugs for a queried
disease by how strongly they connect through phenotypes and protein
targets.  The catch: biomedical graphs are routinely restructured — the
curators here materialize ``indirect-associated-with`` shortcut edges
(derivable from ``is-parent-of`` plus the direct associations), and a
later cleanup pass (BioMedT) removes them again.

This example shows:

1. MRR of HeteSim, RWR, SimRank and RelSim against planted expert
   relevance (the Table-3 experiment);
2. that RelSim's answers — and therefore its MRR — are bit-identical
   before and after the BioMedT restructuring, while the baselines move;
3. the usability layer: the user submits only the *simple* meta-path and
   Algorithm 1 derives the robust RRE set from the schema's constraints.

Run:  python examples/drug_repurposing.py
"""

from repro import RWR, HeteSim, RelSim, SimRank, parse_pattern
from repro.datasets import generate_biomed_small
from repro.eval import (
    EffectivenessExperiment,
    effectiveness_table,
    mean_reciprocal_rank,
)
from repro.transform import EXPERIMENT_PATTERNS, biomedt, map_pattern


def main():
    bundle = generate_biomed_small(seed=0)
    db = bundle.database
    print("BioMed:", db)
    print("Query workload: {} diseases with expert-relevant drugs".format(
        len(bundle.ground_truth)))
    print()

    mapping = biomedt()
    variant = mapping.apply(db)
    print("After BioMedT (indirect edges dropped):", variant)
    print()

    spec = EXPERIMENT_PATTERNS["BioMedT"]
    p_src = parse_pattern(spec["relsim_source"])
    p_tgt = map_pattern(mapping, p_src)
    print("Evaluation relationship:  disease -> phenotype -> protein <- drug")
    print("  original pattern:   ", p_src)
    print("  translated pattern: ", p_tgt)
    print()

    # ------------------------------------------------------------------
    # Table-3-style effectiveness comparison.
    # ------------------------------------------------------------------
    algorithms = {
        "HeteSim": {
            "original": lambda d: HeteSim(
                d, spec["pathsim_source"], answer_type="drug"
            ),
            "under BioMedT": lambda d: HeteSim(
                d, spec["pathsim_target"], answer_type="drug"
            ),
        },
        "RWR": {
            "original": lambda d: RWR(d, answer_type="drug"),
            "under BioMedT": lambda d: RWR(d, answer_type="drug"),
        },
        "SimRank": {
            "original": lambda d: SimRank(d, answer_type="drug"),
            "under BioMedT": lambda d: SimRank(d, answer_type="drug"),
        },
        "RelSim": {
            "original": lambda d: RelSim(
                d, p_src, scoring="cosine", answer_type="drug"
            ),
            "under BioMedT": lambda d: RelSim(
                d, p_tgt, scoring="cosine", answer_type="drug"
            ),
        },
    }
    result = EffectivenessExperiment(
        variants={"original": db, "under BioMedT": variant},
        algorithms=algorithms,
        ground_truth=bundle.ground_truth,
    ).run()
    print(effectiveness_table(result, title="MRR on disease->drug queries"))
    print()

    # ------------------------------------------------------------------
    # The usability layer (Section 5): the user supplies only the simple
    # meta-path; Algorithm 1 consults the schema constraints.
    # ------------------------------------------------------------------
    usable = RelSim.from_simple_pattern(
        db,
        spec["relsim_source"],
        scoring="cosine",
        answer_type="drug",
    )
    print("Algorithm 1 expanded the simple input into {} RREs:".format(
        len(usable.patterns)))
    for pattern in usable.patterns:
        print("   ", pattern)
    rankings = {q: usable.rank(q).top() for q in bundle.ground_truth}
    print("Aggregated-RelSim MRR: {:.3f}".format(
        mean_reciprocal_rank(rankings, bundle.ground_truth)))
    print()

    # ------------------------------------------------------------------
    # Spot-check a single query.
    # ------------------------------------------------------------------
    query = next(iter(bundle.ground_truth))
    relevant = bundle.ground_truth[query]
    ranking = RelSim(
        db, p_src, scoring="cosine", answer_type="drug"
    ).rank(query, top_k=5)
    print("Top-5 drugs for {} (expert answer: {}):".format(query, relevant))
    for position, (drug, score) in enumerate(ranking.items(), start=1):
        marker = "  <== relevant" if drug == relevant else ""
        print("  {}. {:<12s} {:.4f}{}".format(position, drug, score, marker))


if __name__ == "__main__":
    main()
