"""Plan compiler vs per-pattern cold evaluation (the CSE payoff).

The gate behind the plan layer: evaluating an Algorithm-1-expanded
pattern set (>= 16 patterns) through the engine's ``matrices_many``
batch path must be **at least 2x faster** than evaluating each pattern
cold (one fresh memo per pattern — the seed's recursive semantics via
``naive_matrix``), with bitwise-identical commuting matrices and
identical rankings.  Both sides read per-label adjacencies from the
same pre-warmed ``MatrixView``, so the comparison isolates pattern
evaluation: the speedup is cross-pattern CSE (shared prefixes and
skip/nested cores evaluated once) plus cost-ordered chain
multiplication, not adjacency extraction.

Set ``REPRO_BENCH_SCALE=smoke`` (the CI smoke job does) to run on the
reduced DBLP workload; the gate threshold is the same.
"""

import time

from repro.core import RelSim
from repro.datasets import sample_queries_by_degree
from repro.graph.matrices import MatrixView
from repro.lang.matrix_semantics import CommutingMatrixEngine, naive_matrix
from repro.patterns import generate_patterns

SPEEDUP_GATE = 2.0
SIMPLE_PATTERN = "r-a-.p-in.p-in-.r-a"
MIN_PATTERNS = 16


def _expanded_patterns(database):
    generated = generate_patterns(
        SIMPLE_PATTERN,
        database.schema.constraints,
        max_patterns=64,
    )
    patterns = list(generated.patterns)
    assert len(patterns) >= MIN_PATTERNS
    return patterns


def test_plan_vs_naive_speedup(emit, dblp_large_bundle):
    database = dblp_large_bundle.database
    patterns = _expanded_patterns(database)

    view = MatrixView(database)
    for label in sorted(database.used_labels()):
        view.adjacency(label)  # both sides start from warm adjacencies

    start = time.perf_counter()
    naive = [naive_matrix(view, pattern, cache={}) for pattern in patterns]
    naive_seconds = time.perf_counter() - start

    engine = CommutingMatrixEngine(view)
    start = time.perf_counter()
    planned = engine.matrices_many(patterns)
    plan_seconds = time.perf_counter() - start

    speedup = naive_seconds / max(plan_seconds, 1e-9)
    info = engine.cache_info()
    emit(
        "plan_compiler",
        "\n".join(
            [
                "Plan compiler vs per-pattern cold evaluation "
                "({} patterns from Algorithm 1)".format(len(patterns)),
                "  naive (fresh memo per pattern): {:.3f}s".format(
                    naive_seconds
                ),
                "  matrices_many (plan + CSE):     {:.3f}s".format(
                    plan_seconds
                ),
                "  speedup: {:.1f}x (gate: >= {:.1f}x)".format(
                    speedup, SPEEDUP_GATE
                ),
                "  plan cache: {} matrices, {} nnz, {} hits / {} "
                "misses".format(
                    info["matrices"],
                    info["nnz"],
                    info["hits"],
                    info["misses"],
                ),
            ]
        ),
    )

    # Bitwise-identical commuting matrices: counts are integer-valued,
    # so reassociated products are float64-exact.
    for pattern, cold, warm in zip(patterns, naive, planned):
        assert (cold != warm).nnz == 0, str(pattern)

    # Identical rankings through the plan-backed RelSim.
    queries = sample_queries_by_degree(database, "proc", 10, seed=0)
    relsim = RelSim(database, patterns, engine=engine)
    fast = relsim.rank_many(queries, top_k=10)
    reference = relsim.rank_many_via_scores(queries, top_k=10)
    for query in queries:
        assert fast[query].items() == reference[query].items()

    assert speedup >= SPEEDUP_GATE, (
        "plan path {:.2f}x over naive; gate is {}x".format(
            speedup, SPEEDUP_GATE
        )
    )
