"""Table 2 — robustness under transformations that modify information.

Paper columns: DBLP2SIGMX (invertible, *adds* author-proceedings record
nodes), BioMedT(.95) and DBLP2SIGM(.95) (restructure, then delete 5% of
the edges — no longer information preserving).

Expected shape: RelSim is exactly 0 under the invertible DBLP2SIGMX and
*smaller than the baselines* under the lossy variants (it degrades
gracefully); the baselines are far from 0 everywhere.
"""

from repro.core import RelSim
from repro.datasets import sample_queries_by_degree
from repro.eval import RobustnessExperiment, robustness_table
from repro.lang import parse_pattern
from repro.similarity import RWR, HeteSim, PathSim, SimRank
from repro.transform import (
    EXPERIMENT_PATTERNS,
    biomedt_lossy,
    dblp2sigm_lossy,
    dblp2sigmx,
    map_pattern,
)


def _dblp_experiment(bundle, transformation, name, num_queries=50):
    spec = EXPERIMENT_PATTERNS["DBLP2SIGM"]
    db = bundle.database
    variant = transformation.apply(db)
    p_src = parse_pattern(spec["relsim_source"])
    p_tgt = map_pattern(transformation, p_src) if hasattr(
        transformation, "rules"
    ) else map_pattern(transformation.mapping, p_src)
    queries = sample_queries_by_degree(
        db, spec["query_type"], num_queries, seed=0
    )
    algorithms = {
        "RelSim": (
            lambda d: RelSim(d, p_src),
            lambda d: RelSim(d, p_tgt),
        ),
        "PathSim": (
            lambda d: PathSim(d, spec["pathsim_source"]),
            lambda d: PathSim(d, spec["pathsim_target"]),
        ),
        "RWR": (lambda d: RWR(d), lambda d: RWR(d)),
        "SimRank": (lambda d: SimRank(d), lambda d: SimRank(d)),
    }
    return RobustnessExperiment(
        db, variant, algorithms, queries, transformation_name=name
    )


def _biomed_lossy_experiment(bundle, num_queries=30):
    transformation = biomedt_lossy(keep=0.95, seed=0)
    spec = EXPERIMENT_PATTERNS["BioMedT"]
    db = bundle.database
    variant = transformation.apply(db)
    p_src = parse_pattern(spec["relsim_source"])
    p_tgt = map_pattern(transformation.mapping, p_src)
    queries = list(bundle.ground_truth)[:num_queries]
    algorithms = {
        "RelSim": (
            lambda d: RelSim(d, p_src, scoring="cosine", answer_type="drug"),
            lambda d: RelSim(d, p_tgt, scoring="cosine", answer_type="drug"),
        ),
        "PathSim": (
            lambda d: HeteSim(d, spec["pathsim_source"], answer_type="drug"),
            lambda d: HeteSim(d, spec["pathsim_target"], answer_type="drug"),
        ),
        "RWR": (
            lambda d: RWR(d, answer_type="drug"),
            lambda d: RWR(d, answer_type="drug"),
        ),
        "SimRank": (
            lambda d: SimRank(d, answer_type="drug"),
            lambda d: SimRank(d, answer_type="drug"),
        ),
    }
    return RobustnessExperiment(
        db, variant, algorithms, queries, transformation_name="BioMedT(.95)"
    )


def test_table2_modified_information(benchmark, emit, dblp_bundle,
                                     biomed_bundle):
    experiments = [
        _dblp_experiment(dblp_bundle, dblp2sigmx(), "DBLP2SIGMX"),
        _biomed_lossy_experiment(biomed_bundle),
        _dblp_experiment(
            dblp_bundle, dblp2sigm_lossy(keep=0.95, seed=0), "DBLP2SIGM(.95)"
        ),
    ]

    def run():
        return [experiment.run() for experiment in experiments]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table2",
        robustness_table(
            results,
            algorithms=["RelSim", "RWR", "SimRank", "PathSim"],
            title="Table 2 - average ranking difference over "
            "transformations that modify information",
        ),
    )

    sigmx, biomed_lossy, dblp_lossy = results
    # RelSim is provably robust under the invertible DBLP2SIGMX.
    assert sigmx.tau("RelSim", 5) == 0.0
    assert sigmx.tau("RelSim", 10) == 0.0
    # Under the lossy variants RelSim degrades more gracefully than the
    # average baseline.
    for result in (biomed_lossy, dblp_lossy):
        baselines = [
            taus[10] for name, taus in result.taus.items() if name != "RelSim"
        ]
        assert result.tau("RelSim", 10) <= sum(baselines) / len(baselines)
