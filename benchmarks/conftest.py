"""Shared benchmark fixtures and result emission.

Every benchmark prints the paper-table analogue it regenerates and also
appends it to ``benchmarks/results/<name>.txt`` so the rows survive
pytest's output capturing.  Run with::

    pytest benchmarks/ --benchmark-only -s

Dataset sizes are scaled to laptop budgets (the paper used a 64 GB
MATLAB server); the *shape* of each table — who wins, by roughly what
factor — is the reproduction target, not absolute numbers (see
EXPERIMENTS.md).
"""

import os

import pytest

from repro.datasets import (
    generate_biomed_small,
    generate_dblp,
    generate_dblp_small,
    generate_wsu,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def emit():
    """Print a table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _emit(name, text):
        print()
        print(text)
        with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
            handle.write(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def dblp_bundle():
    """DBLP analogue sized so SimRank's dense solve stays tractable."""
    return generate_dblp_small(seed=0)


@pytest.fixture(scope="session")
def dblp_large_bundle():
    """Larger DBLP for the efficiency table (no SimRank there).

    ``REPRO_BENCH_SCALE=smoke`` (the CI benchmark smoke job) shrinks it
    so the efficiency gates run in CI minutes; thresholds are ratios,
    so they hold at either size.
    """
    if os.environ.get("REPRO_BENCH_SCALE") == "smoke":
        return generate_dblp(
            num_areas=8, num_procs=60, num_papers=800, num_authors=400, seed=0
        )
    return generate_dblp(
        num_areas=15, num_procs=120, num_papers=2000, num_authors=900, seed=0
    )


@pytest.fixture(scope="session")
def wsu_bundle():
    return generate_wsu(seed=0)


@pytest.fixture(scope="session")
def biomed_bundle():
    return generate_biomed_small(seed=0)
