"""Ablation — the Section-6 optimizations on vs off.

The paper reports that without the constraint-filtering optimizations,
simple-pattern RelSim "takes days to finish for 5 constraints or longer
patterns"; with them it stays interactive.  We measure *pattern
generation* (the part the filters accelerate) with filters on and off,
on the same random constraint sets as the Figure-5 benchmark, and also
count how many constraints each configuration actually processes.

Expected shape: filters reduce both generation time and generated-set
size; the gap widens with the number of constraints.
"""

import time

from repro.eval import format_table
from repro.patterns import generate_patterns

from bench_fig5_scalability import random_constraints, random_simple_pattern

CONSTRAINT_COUNTS = (1, 5, 10)
PATTERN_LENGTH = 6


def _generation_time(pattern, constraints, use_filters, repeat=3):
    started = time.perf_counter()
    for _ in range(repeat):
        result = generate_patterns(
            pattern,
            constraints,
            use_filters=use_filters,
            max_patterns=32,
        )
    elapsed = (time.perf_counter() - started) / repeat
    return elapsed, len(result), result.constraints_used


def test_ablation_section6_filters(benchmark, emit):
    pattern = random_simple_pattern(PATTERN_LENGTH, seed=PATTERN_LENGTH)

    def run():
        rows = []
        for count in CONSTRAINT_COUNTS:
            constraints = random_constraints(count, seed=1)
            on_time, on_size, on_used = _generation_time(
                pattern, constraints, use_filters=True
            )
            off_time, off_size, off_used = _generation_time(
                pattern, constraints, use_filters=False
            )
            rows.append(
                [
                    str(count),
                    on_time,
                    off_time,
                    "{}/{}".format(on_used, count),
                    str(on_size),
                    str(off_size),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_filters",
        format_table(
            [
                "#constraints",
                "filtered s",
                "unfiltered s",
                "constraints kept",
                "|E_p| filtered",
                "|E_p| unfiltered",
            ],
            rows,
            title="Ablation - Section-6 constraint filters on generation",
            float_format="{:.5f}",
        ),
    )

    # Shape: filtering never *increases* generation time materially.
    for row in rows:
        filtered_time, unfiltered_time = row[1], row[2]
        assert filtered_time <= unfiltered_time * 1.5 + 1e-3
