"""Table 3 — effectiveness (MRR) on BioMed, original and transformed.

Paper rows: average MRR of RWR, SimRank, HeteSim and RelSim over a
30-disease drug-relevance workload, on the original BioMed and on BioMed
under BioMedT.

Expected shape: RelSim >= HeteSim > SimRank > RWR, and RelSim's MRR is
*identical* on both variants (the paper's .077/.077) while HeteSim's
drops slightly under the transformation (.077 -> .072 in the paper).
"""

from repro.core import RelSim
from repro.eval import EffectivenessExperiment, effectiveness_table
from repro.lang import parse_pattern
from repro.similarity import RWR, HeteSim, SimRank
from repro.transform import EXPERIMENT_PATTERNS, biomedt, map_pattern


def test_table3_effectiveness(benchmark, emit, biomed_bundle):
    mapping = biomedt()
    spec = EXPERIMENT_PATTERNS["BioMedT"]
    db = biomed_bundle.database
    variant = mapping.apply(db)
    p_src = parse_pattern(spec["relsim_source"])
    p_tgt = map_pattern(mapping, p_src)

    algorithms = {
        "RWR": {
            "original": lambda d: RWR(d, answer_type="drug"),
            "under BioMedT": lambda d: RWR(d, answer_type="drug"),
        },
        "SimRank": {
            "original": lambda d: SimRank(d, answer_type="drug"),
            "under BioMedT": lambda d: SimRank(d, answer_type="drug"),
        },
        "HeteSim": {
            "original": lambda d: HeteSim(
                d, spec["pathsim_source"], answer_type="drug"
            ),
            "under BioMedT": lambda d: HeteSim(
                d, spec["pathsim_target"], answer_type="drug"
            ),
        },
        "RelSim": {
            "original": lambda d: RelSim(
                d, p_src, scoring="cosine", answer_type="drug"
            ),
            "under BioMedT": lambda d: RelSim(
                d, p_tgt, scoring="cosine", answer_type="drug"
            ),
        },
    }
    experiment = EffectivenessExperiment(
        variants={"original": db, "under BioMedT": variant},
        algorithms=algorithms,
        ground_truth=biomed_bundle.ground_truth,
    )

    result = benchmark.pedantic(experiment.run, rounds=1, iterations=1)
    emit(
        "table3",
        effectiveness_table(
            result, title="Table 3 - average MRR over BioMed"
        ),
    )

    # Shape assertions (see module docstring).
    original = result.mrrs["original"]
    transformed = result.mrrs["under BioMedT"]
    assert original["RelSim"] == transformed["RelSim"]  # robustness
    assert original["RelSim"] >= original["HeteSim"] - 1e-9
    assert original["HeteSim"] > original["RWR"]
    assert original["RelSim"] > original["SimRank"]
