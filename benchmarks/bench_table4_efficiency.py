"""Table 4 — average query processing time: RelSim vs PathSim.

Two settings per dataset (DBLP, BioMed), as in the paper:

* **single pattern** — the user supplies the exact relationship pattern:
  RelSim evaluates the (longer) RRE, PathSim the closest simple
  meta-path, both over materialized commuting matrices for meta-paths up
  to length 3.
* **using Algorithm 1** — both get the same simple input pattern;
  RelSim additionally runs pattern generation and aggregates over the
  generated set.

Expected shape: RelSim is slightly slower than PathSim in both modes but
within the same order of magnitude ("making RelSim more usable does not
increase its running time considerably").
"""

from repro.core import RelSim
from repro.datasets import sample_queries_by_degree
from repro.eval import time_queries, timing_table
from repro.lang import CommutingMatrixEngine, parse_pattern
from repro.similarity import PathSim
from repro.transform import (
    EXPERIMENT_PATTERNS,
    biomedt,
    dblp2sigm,
    map_pattern,
)


def _materialized_engine(database):
    engine = CommutingMatrixEngine(database)
    engine.materialize_simple_patterns(max_length=3)
    return engine


def _single_pattern_timings(bundle, mapping, spec_key, queries):
    """RelSim evaluates the translated RRE over the transformed database;
    PathSim evaluates the closest simple pattern (the paper's p_R vs
    p_P comparison)."""
    spec = EXPERIMENT_PATTERNS[spec_key]
    variant = mapping.apply(bundle.database)
    engine = _materialized_engine(variant)
    p_rre = map_pattern(mapping, parse_pattern(spec["relsim_source"]))
    relsim = RelSim(variant, p_rre, engine=engine)
    pathsim = PathSim(variant, spec["pathsim_target"], engine=engine)
    queries = [q for q in queries if variant.has_node(q)]
    return (
        time_queries(relsim, queries),
        time_queries(pathsim, queries),
    )


def _algorithm1_timings(bundle, spec_key, queries):
    """Both algorithms get the same simple input pattern; RelSim runs
    Algorithm 1 (with the Section-6 filters) and aggregates."""
    spec = EXPERIMENT_PATTERNS[spec_key]
    db = bundle.database
    engine = _materialized_engine(db)
    pathsim = PathSim(db, spec["relsim_source"], engine=engine)
    relsim = RelSim.from_simple_pattern(
        db, spec["relsim_source"], engine=engine, max_patterns=16
    )
    return (
        time_queries(relsim, queries),
        time_queries(pathsim, queries),
    )


def test_table4_efficiency(benchmark, emit, dblp_large_bundle, biomed_bundle):
    dblp_queries = sample_queries_by_degree(
        dblp_large_bundle.database, "proc", 30, seed=0
    )
    biomed_queries = list(biomed_bundle.ground_truth)[:20]

    def run():
        timings = {"RelSim": {}, "PathSim": {}}
        relsim_t, pathsim_t = _single_pattern_timings(
            dblp_large_bundle, dblp2sigm(), "DBLP2SIGM", dblp_queries
        )
        timings["RelSim"]["DBLP single"] = relsim_t
        timings["PathSim"]["DBLP single"] = pathsim_t

        relsim_t, pathsim_t = _single_pattern_timings(
            biomed_bundle, biomedt(), "BioMedT", biomed_queries
        )
        timings["RelSim"]["BioMed single"] = relsim_t
        timings["PathSim"]["BioMed single"] = pathsim_t

        relsim_t, pathsim_t = _algorithm1_timings(
            dblp_large_bundle, "DBLP2SIGM", dblp_queries
        )
        timings["RelSim"]["DBLP alg1"] = relsim_t
        timings["PathSim"]["DBLP alg1"] = pathsim_t

        relsim_t, pathsim_t = _algorithm1_timings(
            biomed_bundle, "BioMedT", biomed_queries
        )
        timings["RelSim"]["BioMed alg1"] = relsim_t
        timings["PathSim"]["BioMed alg1"] = pathsim_t
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table4",
        timing_table(
            timings,
            title="Table 4 - average query processing time (seconds)",
        ),
    )

    # Shape: RelSim slower but same order of magnitude (within 50x gives
    # ample slack for noisy CI machines; the paper's own ratios are
    # 1.1x - 1.9x).
    for column in timings["RelSim"]:
        relsim_t = timings["RelSim"][column]
        pathsim_t = timings["PathSim"][column]
        assert relsim_t >= 0
        if pathsim_t > 0:
            assert relsim_t < pathsim_t * 50
