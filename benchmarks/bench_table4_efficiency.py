"""Table 4 — average query processing time: RelSim vs PathSim.

Two settings per dataset (DBLP, BioMed), as in the paper:

* **single pattern** — the user supplies the exact relationship pattern:
  RelSim evaluates the (longer) RRE, PathSim the closest simple
  meta-path, both over materialized commuting matrices for meta-paths up
  to length 3.
* **using Algorithm 1** — both get the same simple input pattern;
  RelSim additionally runs pattern generation and aggregates over the
  generated set.

Both algorithms on a dataset are built from one ``SimilaritySession``,
so they share the materialized matrices (the paper's pre-load setting);
an extra row times RelSim through the batch path (``rank_many``: one
sparse row slice per pattern for the whole workload).

Expected shape: RelSim is slightly slower than PathSim in both modes but
within the same order of magnitude ("making RelSim more usable does not
increase its running time considerably"); the batch path is no slower
than looped queries.
"""

from repro.api import SimilaritySession
from repro.core import RelSim
from repro.datasets import sample_queries_by_degree
from repro.eval import time_queries, timing_table
from repro.lang import parse_pattern
from repro.transform import (
    EXPERIMENT_PATTERNS,
    biomedt,
    dblp2sigm,
    map_pattern,
)

TOP_K = 10


def _materialized_session(database):
    session = SimilaritySession(database)
    session.materialize(max_length=3)
    return session


def _single_pattern_timings(bundle, mapping, spec_key, queries):
    """RelSim evaluates the translated RRE over the transformed database;
    PathSim evaluates the closest simple pattern (the paper's p_R vs
    p_P comparison).  Both share the session's engine."""
    spec = EXPERIMENT_PATTERNS[spec_key]
    variant = mapping.apply(bundle.database)
    session = _materialized_session(variant)
    p_rre = map_pattern(mapping, parse_pattern(spec["relsim_source"]))
    relsim = session.algorithm("relsim", pattern=p_rre)
    pathsim = session.algorithm("pathsim", pattern=spec["pathsim_target"])
    queries = [q for q in queries if variant.has_node(q)]
    return (
        time_queries(relsim, queries, top_k=TOP_K),
        time_queries(pathsim, queries, top_k=TOP_K),
        time_queries(relsim, queries, top_k=TOP_K, batched=True),
    )


def _algorithm1_timings(bundle, spec_key, queries):
    """Both algorithms get the same simple input pattern; RelSim runs
    Algorithm 1 (with the Section-6 filters) and aggregates."""
    spec = EXPERIMENT_PATTERNS[spec_key]
    db = bundle.database
    session = _materialized_session(db)
    pathsim = session.algorithm("pathsim", pattern=spec["relsim_source"])
    relsim = RelSim.from_simple_pattern(
        db, spec["relsim_source"], engine=session.engine, max_patterns=16
    )
    return (
        time_queries(relsim, queries, top_k=TOP_K),
        time_queries(pathsim, queries, top_k=TOP_K),
        time_queries(relsim, queries, top_k=TOP_K, batched=True),
    )


def test_table4_efficiency(benchmark, emit, dblp_large_bundle, biomed_bundle):
    dblp_queries = sample_queries_by_degree(
        dblp_large_bundle.database, "proc", 30, seed=0
    )
    biomed_queries = list(biomed_bundle.ground_truth)[:20]

    def run():
        timings = {"RelSim": {}, "PathSim": {}, "RelSim (batch)": {}}

        def record(column, cell):
            relsim_t, pathsim_t, batch_t = cell
            timings["RelSim"][column] = relsim_t
            timings["PathSim"][column] = pathsim_t
            timings["RelSim (batch)"][column] = batch_t

        record(
            "DBLP single",
            _single_pattern_timings(
                dblp_large_bundle, dblp2sigm(), "DBLP2SIGM", dblp_queries
            ),
        )
        record(
            "BioMed single",
            _single_pattern_timings(
                biomed_bundle, biomedt(), "BioMedT", biomed_queries
            ),
        )
        record(
            "DBLP alg1",
            _algorithm1_timings(dblp_large_bundle, "DBLP2SIGM", dblp_queries),
        )
        record(
            "BioMed alg1",
            _algorithm1_timings(biomed_bundle, "BioMedT", biomed_queries),
        )
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table4",
        timing_table(
            timings,
            title="Table 4 - average query processing time (seconds)",
        ),
    )

    # Shape: RelSim slower but same order of magnitude (within 50x gives
    # ample slack for noisy CI machines; the paper's own ratios are
    # 1.1x - 1.9x).
    for column in timings["RelSim"]:
        relsim_t = timings["RelSim"][column]
        pathsim_t = timings["PathSim"][column]
        assert relsim_t >= 0
        if pathsim_t > 0:
            assert relsim_t < pathsim_t * 50
        # The batch path must not be dramatically slower than looping
        # (it is usually faster; 2x slack absorbs timer noise on tiny
        # workloads).
        assert timings["RelSim (batch)"][column] <= max(
            relsim_t * 2, relsim_t + 1e-3
        )
