"""Table 4 — average query processing time: RelSim vs PathSim.

Two settings per dataset (DBLP, BioMed), as in the paper:

* **single pattern** — the user supplies the exact relationship pattern:
  RelSim evaluates the (longer) RRE, PathSim the closest simple
  meta-path, both over materialized commuting matrices for meta-paths up
  to length 3.
* **using Algorithm 1** — both get the same simple input pattern;
  RelSim additionally runs pattern generation and aggregates over the
  generated set.

Both algorithms on a dataset are built from one ``SimilaritySession``,
so they share the materialized matrices (the paper's pre-load setting);
two extra rows time RelSim through the batch path — once via the
per-candidate dict implementation (``rank_many_via_scores``, the
before) and once via the array-native top-k path (``rank_many``:
``score_rows`` + ``np.argpartition``, the after).

Expected shape: RelSim is slightly slower than PathSim in both modes but
within the same order of magnitude ("making RelSim more usable does not
increase its running time considerably"); the array-native batch path is
no slower than looped queries, and on a large synthetic workload it
beats the dict path by at least 3x with identical rankings
(``test_batched_topk_speedup_synthetic``).
"""

from repro.api import SimilaritySession
from repro.core import RelSim
from repro.datasets import sample_queries_by_degree
from repro.eval import time_queries, timing_table
from repro.lang import parse_pattern
from repro.transform import (
    EXPERIMENT_PATTERNS,
    biomedt,
    dblp2sigm,
    map_pattern,
)

TOP_K = 10


def _materialized_session(database):
    session = SimilaritySession(database)
    session.materialize(max_length=3)
    return session


def _single_pattern_timings(bundle, mapping, spec_key, queries):
    """RelSim evaluates the translated RRE over the transformed database;
    PathSim evaluates the closest simple pattern (the paper's p_R vs
    p_P comparison).  Both share the session's engine."""
    spec = EXPERIMENT_PATTERNS[spec_key]
    variant = mapping.apply(bundle.database)
    session = _materialized_session(variant)
    p_rre = map_pattern(mapping, parse_pattern(spec["relsim_source"]))
    relsim = session.algorithm("relsim", pattern=p_rre)
    pathsim = session.algorithm("pathsim", pattern=spec["pathsim_target"])
    queries = [q for q in queries if variant.has_node(q)]
    return (
        time_queries(relsim, queries, top_k=TOP_K),
        time_queries(pathsim, queries, top_k=TOP_K),
        time_queries(relsim, queries, top_k=TOP_K, batched=True,
                     dict_path=True),
        time_queries(relsim, queries, top_k=TOP_K, batched=True),
    )


def _algorithm1_timings(bundle, spec_key, queries):
    """Both algorithms get the same simple input pattern; RelSim runs
    Algorithm 1 (with the Section-6 filters) and aggregates."""
    spec = EXPERIMENT_PATTERNS[spec_key]
    db = bundle.database
    session = _materialized_session(db)
    pathsim = session.algorithm("pathsim", pattern=spec["relsim_source"])
    relsim = RelSim.from_simple_pattern(
        db, spec["relsim_source"], engine=session.engine, max_patterns=16
    )
    return (
        time_queries(relsim, queries, top_k=TOP_K),
        time_queries(pathsim, queries, top_k=TOP_K),
        time_queries(relsim, queries, top_k=TOP_K, batched=True,
                     dict_path=True),
        time_queries(relsim, queries, top_k=TOP_K, batched=True),
    )


def test_table4_efficiency(benchmark, emit, dblp_large_bundle, biomed_bundle):
    dblp_queries = sample_queries_by_degree(
        dblp_large_bundle.database, "proc", 30, seed=0
    )
    biomed_queries = list(biomed_bundle.ground_truth)[:20]

    def run():
        timings = {
            "RelSim": {},
            "PathSim": {},
            "RelSim (batch dict)": {},
            "RelSim (batch top-k)": {},
        }

        def record(column, cell):
            relsim_t, pathsim_t, batch_dict_t, batch_topk_t = cell
            timings["RelSim"][column] = relsim_t
            timings["PathSim"][column] = pathsim_t
            timings["RelSim (batch dict)"][column] = batch_dict_t
            timings["RelSim (batch top-k)"][column] = batch_topk_t

        record(
            "DBLP single",
            _single_pattern_timings(
                dblp_large_bundle, dblp2sigm(), "DBLP2SIGM", dblp_queries
            ),
        )
        record(
            "BioMed single",
            _single_pattern_timings(
                biomed_bundle, biomedt(), "BioMedT", biomed_queries
            ),
        )
        record(
            "DBLP alg1",
            _algorithm1_timings(dblp_large_bundle, "DBLP2SIGM", dblp_queries),
        )
        record(
            "BioMed alg1",
            _algorithm1_timings(biomed_bundle, "BioMedT", biomed_queries),
        )
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table4",
        timing_table(
            timings,
            title="Table 4 - average query processing time (seconds)",
        ),
    )

    # Shape: RelSim slower but same order of magnitude (within 50x gives
    # ample slack for noisy CI machines; the paper's own ratios are
    # 1.1x - 1.9x).
    for column in timings["RelSim"]:
        relsim_t = timings["RelSim"][column]
        pathsim_t = timings["PathSim"][column]
        assert relsim_t >= 0
        if pathsim_t > 0:
            assert relsim_t < pathsim_t * 50
        # The batch paths must not be dramatically slower than looping
        # (they are usually faster; 2x slack absorbs timer noise on tiny
        # workloads).
        assert timings["RelSim (batch top-k)"][column] <= max(
            relsim_t * 2, relsim_t + 1e-3
        )


def test_batched_topk_speedup_synthetic(benchmark, emit, dblp_large_bundle):
    """Array-native batched top-10 vs the dict path, same workload.

    The acceptance gate of the array-native refactor: on the synthetic
    DBLP workload (2000 papers as candidates, 100 queries) ``rank_many``
    must produce rankings identical to ``rank_many_via_scores`` and be
    at least 3x faster.
    """
    database = dblp_large_bundle.database
    session = SimilaritySession(database)
    relsim = session.algorithm("relsim", pattern="p-in.p-in-")
    queries = database.nodes_of_type("paper")[:100]

    fast = relsim.rank_many(queries, top_k=TOP_K)
    slow = relsim.rank_many_via_scores(queries, top_k=TOP_K)
    for query in queries:
        assert fast[query].items() == slow[query].items()

    def run():
        # Median of three to keep a noisy neighbor from deciding the
        # ratio either way.
        dict_times = sorted(
            time_queries(relsim, queries, top_k=TOP_K, batched=True,
                         dict_path=True)
            for _ in range(3)
        )
        topk_times = sorted(
            time_queries(relsim, queries, top_k=TOP_K, batched=True)
            for _ in range(3)
        )
        return {
            "RelSim (batch dict)": {"DBLP synthetic": dict_times[1]},
            "RelSim (batch top-k)": {"DBLP synthetic": topk_times[1]},
        }

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table4_batch_topk",
        timing_table(
            timings,
            title="Batched top-10: dict path vs array-native (seconds)",
        ),
    )
    dict_t = timings["RelSim (batch dict)"]["DBLP synthetic"]
    topk_t = timings["RelSim (batch top-k)"]["DBLP synthetic"]
    assert topk_t * 3 <= dict_t, (
        "array-native batch path ({:.6f}s/query) is not 3x faster than "
        "the dict path ({:.6f}s/query)".format(topk_t, dict_t)
    )
