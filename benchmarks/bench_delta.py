"""Delta-maintenance gate: incremental apply speed and exactness.

The serving layer absorbs live updates by building the next snapshot
off the serving path.  Before this gate's subject existed, every
``SimilarityService.apply`` paid a **full session rebuild** — re-parse,
re-run Algorithm 1, re-compile, re-materialize every cached commuting
matrix — even for a single-edge delta.  The incremental path instead
forks the serving engine and *patches* its cached plan-DAG products
with sparse delta propagation (``Δ(AB) = ΔA·B + A·ΔB + ΔA·ΔB``),
updating each shared sub-chain exactly once.

Two things are gated, per single-edge delta:

1. **Speed**: the incremental ``apply()`` must be **at least 3x
   faster** than the full-rebuild ``apply()`` of the same delta on an
   identically-loaded service (same prepared queries, same warm
   caches).
2. **Exactness**: after every delta, the rankings served by the
   incrementally-maintained service must be **bitwise identical** to
   those of the rebuild service *and* of a session built from scratch
   on the same database — patching is integer-exact, never approximate.

Unlike the other benchmarks, this one runs on a fixed mid-size DBLP
regardless of ``REPRO_BENCH_SCALE``: the gate compares patch
propagation against full re-materialization, and on the smoke-scale
graph a sparse product costs about the same as the Python/SciPy per-op
*overhead*, so a shrunken run would measure interpreter constants
rather than the algorithm (the measured ratio only grows with graph
size — ~4x at this scale, ~20x at 2x this scale).  A handful of
rebuild applies at this size still finishes in CI seconds.
"""

import time

import pytest

from repro.api import SimilarityService, SimilaritySession
from repro.datasets import generate_dblp, sample_queries_by_degree

INCREMENTAL_SPEEDUP_GATE = 3.0
SIMPLE_PATTERN = "r-a-.p-in.p-in-.r-a"
MAX_EXPAND = 16
NUM_QUERIES = 20
TOP_K = 10
ROUNDS = 4


@pytest.fixture(scope="module")
def delta_bundle():
    """Fixed-size DBLP for the delta gate (see module docstring)."""
    return generate_dblp(
        num_areas=15, num_procs=120, num_papers=2000, num_authors=900, seed=0
    )


def _service_setup(database):
    service = SimilarityService(database)
    prepared = service.prepare(
        algorithm="relsim",
        pattern=SIMPLE_PATTERN,
        expand={"max_patterns": MAX_EXPAND},
        top_k=TOP_K,
    )
    return service, prepared


def _rankings(prepared, queries):
    return {query: prepared.run(query).items() for query in queries}


def _fresh_rankings(database, queries):
    session = SimilaritySession(database)
    prepared = session.prepare(
        algorithm="relsim",
        pattern=SIMPLE_PATTERN,
        expand={"max_patterns": MAX_EXPAND},
        top_k=TOP_K,
    )
    return _rankings(prepared, queries)


def test_incremental_apply_speedup_with_identical_rankings(
    emit, delta_bundle
):
    database = delta_bundle.database
    queries = sample_queries_by_degree(database, "proc", NUM_QUERIES, seed=0)
    # Two identically-loaded services: one applies every delta through
    # the incremental path, the other through the full-rebuild path.
    incremental_service, incremental_prepared = _service_setup(database)
    rebuild_service, rebuild_prepared = _service_setup(database)
    incremental_prepared.run(queries[0])
    rebuild_prepared.run(queries[0])

    # Toggle existing p-in edges: each round removes one edge and adds
    # it back, so every apply is a genuine single-edge delta and the
    # database ends each round back in its start state.
    edges = sorted(database.edges("p-in"))[:ROUNDS]
    assert len(edges) == ROUNDS

    incremental_seconds = 0.0
    rebuild_seconds = 0.0
    applies = 0
    for edge in edges:
        for delta in ({"edges_removed": [edge]}, {"edges_added": [edge]}):
            start = time.perf_counter()
            incremental_service.apply(incremental=True, **delta)
            incremental_seconds += time.perf_counter() - start

            start = time.perf_counter()
            rebuild_service.apply(incremental=False, **delta)
            rebuild_seconds += time.perf_counter() - start
            applies += 1

            served = _rankings(incremental_prepared, queries)
            assert served == _rankings(rebuild_prepared, queries)
            assert served == _fresh_rankings(
                incremental_service.database, queries
            )

    assert incremental_service.delta_stats["incremental_applies"] == applies
    assert rebuild_service.delta_stats["full_rebuilds"] == applies

    speedup = rebuild_seconds / max(incremental_seconds, 1e-9)
    emit(
        "delta_maintenance",
        "\n".join(
            [
                "Incremental delta maintenance vs full rebuild "
                "({} single-edge applies, {} prepared patterns, "
                "{} verification queries)".format(
                    applies, len(incremental_prepared.patterns), len(queries)
                ),
                "  full rebuild apply : {:8.2f} ms/delta".format(
                    1000.0 * rebuild_seconds / applies
                ),
                "  incremental apply  : {:8.2f} ms/delta  ({:.1f}x)".format(
                    1000.0 * incremental_seconds / applies, speedup
                ),
                "  rankings: bitwise identical to rebuild and to a "
                "fresh session after every delta",
            ]
        ),
    )
    assert speedup >= INCREMENTAL_SPEEDUP_GATE, (
        "incremental apply {:.2f}x over full rebuild; gate is {}x".format(
            speedup, INCREMENTAL_SPEEDUP_GATE
        )
    )
