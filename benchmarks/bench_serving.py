"""Serving-path gates: prepared hot path, thread ceiling, process scaling.

Three gates behind the serving layer:

1. **Prepared hot path**: running a prepared query
   (``session.prepare(...)`` once, then ``prepared.run(node)`` per
   request) must be **at least 3x faster** than the per-call one-shot
   path (``session.query(node).using(...).expand_patterns(...).top(k)``)
   on the same warm session, with identical rankings.  The per-call
   path re-runs Algorithm 1, re-constructs the algorithm, and re-probes
   the plan compiler on every request — exactly the overhead
   preparation hoists out of the loop.

2. **Thread ceiling**: 8 threads hammering one prepared query must
   return results identical to the single-threaded run and must not
   degrade past the single-thread wall time (the locks guard, they
   must not serialize).  The GIL caps this path below 1x — which is
   the measured motivation for gate 3.

3. **Process scaling**: the shared-memory worker pool
   (:mod:`repro.server.workers`) swept at 1/2/4/8 workers must return
   results **bitwise-identical** to the in-process reference at every
   width, must leak **zero** ``/dev/shm`` segments after shutdown, and
   — on hosts with at least 4 usable cores — the 8-worker pool must
   clear **3x** the single-worker throughput.  (Identity and zero-leak
   gate unconditionally; the scaling ratio is meaningless on the
   1-2 core CI boxes, where the sweep still runs and reports.)

Set ``REPRO_BENCH_SCALE=smoke`` (the CI smoke job does) to run on the
reduced DBLP workload; the thresholds are ratios, so they hold at
either size.
"""

import glob
import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api import SimilaritySession
from repro.datasets import sample_queries_by_degree
from repro.server.workers import WorkerPool

PREPARED_SPEEDUP_GATE = 3.0
THREADS = 8
CONCURRENT_SLOWDOWN_GATE = 2.0
WORKER_SWEEP = (1, 2, 4, 8)
WORKER_SCALING_GATE = 3.0  # 8 workers vs 1 worker, needs >= this ratio
WORKER_SCALING_MIN_CORES = 4
SIMPLE_PATTERN = "r-a-.p-in.p-in-.r-a"
MAX_EXPAND = 16
NUM_QUERIES = 30
TOP_K = 10


def _usable_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _shm_entries():
    return set(glob.glob("/dev/shm/psm_*"))


def _serving_setup(bundle):
    database = bundle.database
    session = SimilaritySession(database)
    queries = sample_queries_by_degree(database, "proc", NUM_QUERIES, seed=0)
    prepared = session.prepare(
        algorithm="relsim",
        pattern=SIMPLE_PATTERN,
        expand={"max_patterns": MAX_EXPAND},
        top_k=TOP_K,
    )
    return session, queries, prepared


def test_prepared_hot_path_speedup(emit, dblp_large_bundle):
    session, queries, prepared = _serving_setup(dblp_large_bundle)

    def per_call(node):
        return (
            session.query(node)
            .using("relsim", pattern=SIMPLE_PATTERN)
            .expand_patterns(max_patterns=MAX_EXPAND)
            .top(TOP_K)
        )

    per_call(queries[0])  # both sides start from warm matrices
    prepared.run(queries[0])

    start = time.perf_counter()
    baseline = {node: per_call(node) for node in queries}
    per_call_seconds = time.perf_counter() - start

    start = time.perf_counter()
    served = {node: prepared.run(node) for node in queries}
    prepared_seconds = time.perf_counter() - start

    speedup = per_call_seconds / max(prepared_seconds, 1e-9)
    emit(
        "serving_prepared",
        "\n".join(
            [
                "Prepared-query hot path vs per-call session.query "
                "({} queries, Algorithm-1 expansion x{})".format(
                    len(queries), len(prepared.patterns)
                ),
                "  per-call (parse+expand+build each time): "
                "{:.2f} ms/query".format(
                    1000.0 * per_call_seconds / len(queries)
                ),
                "  prepared.run (pinned state):             "
                "{:.2f} ms/query".format(
                    1000.0 * prepared_seconds / len(queries)
                ),
                "  speedup: {:.1f}x (gate: >= {:.1f}x)".format(
                    speedup, PREPARED_SPEEDUP_GATE
                ),
            ]
        ),
    )

    for node in queries:
        assert served[node].items() == baseline[node].items(), node
    assert speedup >= PREPARED_SPEEDUP_GATE, (
        "prepared path {:.2f}x over per-call; gate is {}x".format(
            speedup, PREPARED_SPEEDUP_GATE
        )
    )


def test_concurrent_serving_scales_with_identical_results(
    emit, dblp_large_bundle
):
    """Threads (the GIL ceiling) and processes (the way past it).

    One combined table: the 8-thread measurement that motivated the
    worker pool, then the 1/2/4/8 process sweep over shared-memory
    snapshots — every width bitwise-identical, every pool leak-free.
    """
    session, queries, prepared = _serving_setup(dblp_large_bundle)
    rounds = 4
    workload = queries * rounds

    prepared.run(queries[0])
    start = time.perf_counter()
    sequential = {node: prepared.run(node) for node in queries}
    for _ in range(rounds - 1):
        for node in queries:
            prepared.run(node)
    sequential_seconds = time.perf_counter() - start

    with ThreadPoolExecutor(max_workers=THREADS) as dispatch:
        start = time.perf_counter()
        concurrent = list(dispatch.map(prepared.run, workload))
        concurrent_seconds = time.perf_counter() - start

    # Identical results: every concurrent ranking matches the
    # single-threaded reference bit for bit.
    for node, ranking in zip(workload, concurrent):
        assert ranking.items() == sequential[node].items(), node

    # Process sweep: one pool per width over the same workload.
    spec = prepared.export_spec()
    worker_seconds = {}
    for count in WORKER_SWEEP:
        shm_before = _shm_entries()
        pool = WorkerPool(spec, session, workers=count)
        try:
            pool.run(queries[0])  # absorb first-touch before timing
            with ThreadPoolExecutor(max_workers=count) as dispatch:
                start = time.perf_counter()
                answers = list(dispatch.map(pool.run, workload))
                worker_seconds[count] = time.perf_counter() - start
        finally:
            pool.shutdown()
        # Bitwise identity at every pool width (unconditional gate).
        for node, ranking in zip(workload, answers):
            assert ranking.items() == sequential[node].items(), (
                "worker pool ({} workers) diverged on {!r}".format(
                    count, node
                )
            )
        # Zero-leak after shutdown (unconditional gate).
        leaked = _shm_entries() - shm_before
        assert not leaked, (
            "worker pool ({} workers) leaked segments: {}".format(
                count, sorted(leaked)
            )
        )

    sequential_qps = len(workload) / max(sequential_seconds, 1e-9)
    concurrent_qps = len(workload) / max(concurrent_seconds, 1e-9)
    cores = _usable_cores()
    lines = [
        "Concurrent prepared-query serving "
        "({} requests, {} usable cores)".format(len(workload), cores),
        "  1 thread            : {:.0f} queries/s".format(sequential_qps),
        "  {} threads, one GIL  : {:.0f} queries/s ({:.2f}x)".format(
            THREADS, concurrent_qps,
            concurrent_qps / max(sequential_qps, 1e-9),
        ),
    ]
    for count in WORKER_SWEEP:
        qps = len(workload) / max(worker_seconds[count], 1e-9)
        lines.append(
            "  {} worker process{}: {:.0f} queries/s ({:.2f}x)".format(
                count,
                "es" if count > 1 else " ",
                qps,
                qps / max(sequential_qps, 1e-9),
            )
        )
    lines.append("  results identical across threads and workers: yes")
    lines.append("  shared-memory segments leaked: 0")
    emit("serving_concurrent", "\n".join(lines))

    # The locks must not serialize the thread path into a slowdown.
    assert concurrent_seconds <= sequential_seconds * CONCURRENT_SLOWDOWN_GATE, (
        "{} threads took {:.3f}s vs {:.3f}s single-threaded".format(
            THREADS, concurrent_seconds, sequential_seconds
        )
    )
    # The scaling gate needs real cores to mean anything.
    if cores >= WORKER_SCALING_MIN_CORES:
        scaling = (
            worker_seconds[1] / max(worker_seconds[max(WORKER_SWEEP)], 1e-9)
        )
        assert scaling >= WORKER_SCALING_GATE, (
            "{} workers only {:.2f}x over 1 worker; gate is {}x".format(
                max(WORKER_SWEEP), scaling, WORKER_SCALING_GATE
            )
        )
