"""Serving-path gates: prepared hot-path speedup and thread scaling.

Two gates behind the serving layer:

1. **Prepared hot path**: running a prepared query
   (``session.prepare(...)`` once, then ``prepared.run(node)`` per
   request) must be **at least 3x faster** than the per-call one-shot
   path (``session.query(node).using(...).expand_patterns(...).top(k)``)
   on the same warm session, with identical rankings.  The per-call
   path re-runs Algorithm 1, re-constructs the algorithm, and re-probes
   the plan compiler on every request — exactly the overhead
   preparation hoists out of the loop.

2. **Concurrent serving**: 8 threads hammering one prepared query must
   return results identical to the single-threaded run, and the
   concurrent wall time must not degrade past the single-thread time
   (the locks guard, they must not serialize; with the GIL, CPU-bound
   Python threads cannot beat 1x by much, so the gate is
   no-pathological-slowdown, and the measured throughput is reported).

Set ``REPRO_BENCH_SCALE=smoke`` (the CI smoke job does) to run on the
reduced DBLP workload; the thresholds are ratios, so they hold at
either size.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro.api import SimilaritySession
from repro.datasets import sample_queries_by_degree

PREPARED_SPEEDUP_GATE = 3.0
THREADS = 8
CONCURRENT_SLOWDOWN_GATE = 2.0
SIMPLE_PATTERN = "r-a-.p-in.p-in-.r-a"
MAX_EXPAND = 16
NUM_QUERIES = 30
TOP_K = 10


def _serving_setup(bundle):
    database = bundle.database
    session = SimilaritySession(database)
    queries = sample_queries_by_degree(database, "proc", NUM_QUERIES, seed=0)
    prepared = session.prepare(
        algorithm="relsim",
        pattern=SIMPLE_PATTERN,
        expand={"max_patterns": MAX_EXPAND},
        top_k=TOP_K,
    )
    return session, queries, prepared


def test_prepared_hot_path_speedup(emit, dblp_large_bundle):
    session, queries, prepared = _serving_setup(dblp_large_bundle)

    def per_call(node):
        return (
            session.query(node)
            .using("relsim", pattern=SIMPLE_PATTERN)
            .expand_patterns(max_patterns=MAX_EXPAND)
            .top(TOP_K)
        )

    per_call(queries[0])  # both sides start from warm matrices
    prepared.run(queries[0])

    start = time.perf_counter()
    baseline = {node: per_call(node) for node in queries}
    per_call_seconds = time.perf_counter() - start

    start = time.perf_counter()
    served = {node: prepared.run(node) for node in queries}
    prepared_seconds = time.perf_counter() - start

    speedup = per_call_seconds / max(prepared_seconds, 1e-9)
    emit(
        "serving_prepared",
        "\n".join(
            [
                "Prepared-query hot path vs per-call session.query "
                "({} queries, Algorithm-1 expansion x{})".format(
                    len(queries), len(prepared.patterns)
                ),
                "  per-call (parse+expand+build each time): "
                "{:.2f} ms/query".format(
                    1000.0 * per_call_seconds / len(queries)
                ),
                "  prepared.run (pinned state):             "
                "{:.2f} ms/query".format(
                    1000.0 * prepared_seconds / len(queries)
                ),
                "  speedup: {:.1f}x (gate: >= {:.1f}x)".format(
                    speedup, PREPARED_SPEEDUP_GATE
                ),
            ]
        ),
    )

    for node in queries:
        assert served[node].items() == baseline[node].items(), node
    assert speedup >= PREPARED_SPEEDUP_GATE, (
        "prepared path {:.2f}x over per-call; gate is {}x".format(
            speedup, PREPARED_SPEEDUP_GATE
        )
    )


def test_concurrent_serving_scales_with_identical_results(
    emit, dblp_large_bundle
):
    _, queries, prepared = _serving_setup(dblp_large_bundle)
    rounds = 4
    workload = queries * rounds

    prepared.run(queries[0])
    start = time.perf_counter()
    sequential = {node: prepared.run(node) for node in queries}
    for _ in range(rounds - 1):
        for node in queries:
            prepared.run(node)
    sequential_seconds = time.perf_counter() - start

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        start = time.perf_counter()
        concurrent = list(pool.map(prepared.run, workload))
        concurrent_seconds = time.perf_counter() - start

    sequential_qps = len(workload) / max(sequential_seconds, 1e-9)
    concurrent_qps = len(workload) / max(concurrent_seconds, 1e-9)
    emit(
        "serving_concurrent",
        "\n".join(
            [
                "Concurrent prepared-query serving "
                "({} threads, {} requests)".format(THREADS, len(workload)),
                "  single thread: {:.0f} queries/s".format(sequential_qps),
                "  {} threads:    {:.0f} queries/s ({:.2f}x)".format(
                    THREADS, concurrent_qps,
                    concurrent_qps / max(sequential_qps, 1e-9),
                ),
                "  results identical across threads: yes",
            ]
        ),
    )

    # Identical results: every concurrent ranking matches the
    # single-threaded reference bit for bit.
    for node, ranking in zip(workload, concurrent):
        assert ranking.items() == sequential[node].items(), node
    # The locks must not serialize the hot path into a slowdown.
    assert concurrent_seconds <= sequential_seconds * CONCURRENT_SLOWDOWN_GATE, (
        "{} threads took {:.3f}s vs {:.3f}s single-threaded".format(
            THREADS, concurrent_seconds, sequential_seconds
        )
    )
