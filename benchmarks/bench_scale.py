"""Honest scale curves: latency and memory at 10^5..10^7 edges.

The paper argues structural generalizability has to survive real
database sizes; the figure-scale benches top out around 10^3 edges.
This bench generates power-law DBLP-like databases at 10^5 / 10^6 /
10^7 edges (``generate_dblp_scale``), runs a degree-biased RelSim
workload at each tier twice — once unbudgeted to record the true peak
cache footprint, once under ``memory_budget = peak // 3`` — and emits
two tables:

* ``scale_latency`` — nodes vs per-query seconds, budgeted and not;
* ``scale_rss``     — nodes vs process RSS and cache bytes.

Gates, not just curves: the budgeted run must hold ``cache_info()
["bytes"] <= budget`` with a budget provably smaller than the
unbudgeted peak, and its rankings must be bitwise-identical to the
unbudgeted run at every tier (spill/stream may change *where* work
happens, never the answer).

Tier selection — ``REPRO_BENCH_SCALE``: ``smoke`` runs 10^5 only (the
CI scale-smoke job, which also sets an RSS ceiling via
``REPRO_SCALE_RSS_MB``), unset/``default`` runs 10^5 and 10^6,
``full`` adds 10^7.
"""

import gc
import os
import time

from repro.api import SimilaritySession
from repro.datasets import generate_dblp_scale
from repro.eval import format_table

PATTERNS = ["w-.w", "w-.w.w-.w", "w-.w.p-in"]
NUM_QUERIES = 8


def _tiers():
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    if scale == "smoke":
        return [100_000]
    if scale == "full":
        return [100_000, 1_000_000, 10_000_000]
    return [100_000, 1_000_000]


def _rss_bytes():
    """Current resident set (VmRSS); ru_maxrss (peak) as the fallback."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _rss_ceiling_bytes():
    configured = os.environ.get("REPRO_SCALE_RSS_MB")
    if configured:
        return int(configured) * 1024 * 1024
    if os.environ.get("REPRO_BENCH_SCALE") == "smoke":
        return 1024 * 1024 * 1024
    return None


def _run_workload(session, queries):
    """``{pattern: {query: Ranking}}`` plus per-query seconds."""
    start = time.perf_counter()
    rankings = {
        pattern: session.rank_many(
            queries, algorithm="relsim", pattern=pattern, scoring="count"
        )
        for pattern in PATTERNS
    }
    elapsed = time.perf_counter() - start
    return rankings, elapsed / (len(queries) * len(PATTERNS))


def _assert_same_rankings(budgeted, unbudgeted):
    for pattern in PATTERNS:
        for query in unbudgeted[pattern]:
            assert (
                budgeted[pattern][query].items()
                == unbudgeted[pattern][query].items()
            ), (pattern, query)


def _run_tier(num_edges):
    start = time.perf_counter()
    bundle = generate_dblp_scale(num_edges, seed=0)
    build_seconds = time.perf_counter() - start
    database = bundle.database
    queries = bundle.info["suggested_queries"][:NUM_QUERIES]

    plain = SimilaritySession(database)
    reference, plain_latency = _run_workload(plain, queries)
    peak = plain.cache_info()["bytes"]
    assert peak > 0

    budget = max(peak // 3, 1)
    budgeted = SimilaritySession(database, memory_budget=budget)
    rankings, budgeted_latency = _run_workload(budgeted, queries)
    info = budgeted.cache_info()

    # The gates: a budget provably smaller than the unbudgeted peak is
    # honored byte-for-byte, and never changes a single ranking bit.
    assert budget < peak
    assert info["bytes"] <= budget
    assert info["spilled"] + info["streamed"] > 0
    _assert_same_rankings(rankings, reference)

    row = {
        "edges": bundle.info["num_edges"],
        "nodes": bundle.info["num_nodes"],
        "build_seconds": build_seconds,
        "plain_latency": plain_latency,
        "budgeted_latency": budgeted_latency,
        "peak_bytes": peak,
        "budget_bytes": budget,
        "spilled": info["spilled"],
        "streamed": info["streamed"],
        "rss_bytes": _rss_bytes(),
    }
    del plain, budgeted, reference, rankings, bundle, database
    gc.collect()
    return row


def test_scale_curves(benchmark, emit):
    tiers = _tiers()

    def run():
        return [_run_tier(num_edges) for num_edges in tiers]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    mib = 1024.0 * 1024.0
    emit(
        "scale_latency",
        format_table(
            ["edges", "nodes", "build s", "s/query", "s/query (budget)",
             "spilled", "streamed"],
            [
                [row["edges"], row["nodes"], row["build_seconds"],
                 row["plain_latency"], row["budgeted_latency"],
                 row["spilled"], row["streamed"]]
                for row in rows
            ],
            title="Scale - nodes vs per-query latency "
            "(RelSim count scoring, patterns {})".format(PATTERNS),
            float_format="{:.4f}",
        ),
    )
    emit(
        "scale_rss",
        format_table(
            ["edges", "nodes", "RSS MiB", "peak cache MiB", "budget MiB"],
            [
                [row["edges"], row["nodes"], row["rss_bytes"] / mib,
                 row["peak_bytes"] / mib, row["budget_bytes"] / mib]
                for row in rows
            ],
            title="Scale - nodes vs resident memory "
            "(budget = unbudgeted peak // 3)",
            float_format="{:.1f}",
        ),
    )

    # Latency must grow sanely: the top tier pays at most ~3 orders of
    # magnitude over the bottom one for 10-100x the data, never more.
    assert rows[-1]["plain_latency"] < rows[0]["plain_latency"] * 1e3 + 1.0

    ceiling = _rss_ceiling_bytes()
    if ceiling is not None:
        final = rows[-1]["rss_bytes"]
        assert final <= ceiling, (
            "RSS {} MiB over the {} MiB ceiling".format(
                int(final / mib), int(ceiling / mib)
            )
        )
