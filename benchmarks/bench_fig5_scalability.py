"""Figure 5 — RelSim (Algorithm 1) scalability over constraints and
pattern length.

The paper measures per-query time of simple-pattern RelSim on BioMed
while varying the number of randomly generated tgd constraints
(1, 5, 10, 20, 40 — premises of 2-5 atoms, coin-flip label selection)
and the input pattern length (4..10), averaging 5 runs.

Expected shape: time grows with both axes; the growth over constraints
is the dominant effect (the paper omits the 40-constraint/length-9 cell
"due to long running time" — we cap generation, see DESIGN.md).
"""

import random

from repro.constraints.tgd import Atom, Tgd
from repro.core import RelSim
from repro.datasets.schemas import BIOMED_SCHEMA
from repro.eval import format_table, time_queries
from repro.lang.ast import Label, Reverse, simple_pattern

CONSTRAINT_COUNTS = (1, 5, 10, 20)
PATTERN_LENGTHS = (4, 6, 8)
QUERIES_PER_CELL = 3


def random_constraints(count, seed=0):
    """Acyclic chain-premise tgds with coin-flip labels (Section 7.3)."""
    rng = random.Random(seed)
    labels = sorted(BIOMED_SCHEMA.labels)
    constraints = []
    for index in range(count):
        size = rng.randint(2, 5)
        atoms = []
        chain_labels = []
        for position in range(size):
            name = rng.choice(labels)
            chain_labels.append(name)
            pattern = Label(name)
            if rng.random() < 0.5:
                pattern = Reverse(pattern)
            atoms.append(
                Atom("v{}".format(position), pattern, "v{}".format(position + 1))
            )
        # Conclusion uses a premise label so Algorithm 2 has work to do.
        conclusion = Atom("v0", Label(rng.choice(chain_labels)),
                          "v{}".format(size))
        constraints.append(Tgd(atoms, [conclusion]))
    return constraints


def random_simple_pattern(length, seed=0):
    rng = random.Random(seed)
    labels = sorted(BIOMED_SCHEMA.labels)
    steps = [
        (rng.choice(labels), rng.random() < 0.5) for _ in range(length)
    ]
    return simple_pattern(steps)


def test_fig5_scalability(benchmark, emit, biomed_bundle):
    db = biomed_bundle.database
    queries = list(biomed_bundle.ground_truth)[:QUERIES_PER_CELL]

    def run():
        cells = {}
        for num_constraints in CONSTRAINT_COUNTS:
            constraints = random_constraints(num_constraints, seed=1)
            for length in PATTERN_LENGTHS:
                pattern = random_simple_pattern(length, seed=length)
                relsim = RelSim.from_simple_pattern(
                    db,
                    pattern,
                    constraints=constraints,
                    scoring="count",
                    max_patterns=32,
                )
                cells[(num_constraints, length)] = time_queries(
                    relsim, queries
                )
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["#constraints"] + [
        "len {}".format(length) for length in PATTERN_LENGTHS
    ]
    rows = [
        [str(n)] + [cells[(n, length)] for length in PATTERN_LENGTHS]
        for n in CONSTRAINT_COUNTS
    ]
    emit(
        "fig5",
        format_table(
            headers,
            rows,
            title="Figure 5 - RelSim (Algorithm 1) seconds/query vs "
            "#constraints x pattern length",
            float_format="{:.4f}",
        ),
    )

    # Shape: more constraints cannot be faster on average.
    def row_mean(n):
        return sum(cells[(n, length)] for length in PATTERN_LENGTHS) / len(
            PATTERN_LENGTHS
        )

    assert row_mean(CONSTRAINT_COUNTS[-1]) >= row_mean(CONSTRAINT_COUNTS[0]) * 0.5
