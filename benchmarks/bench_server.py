"""Network-serving gates: warm starts, coalescing, backpressure, apply.

Four gates behind ``repro serve`` (the HTTP front-end over
:class:`SimilarityService`):

1. **Warm start**: booting from a serving snapshot
   (:func:`~repro.server.snapshot.load_session`) to the first rankings
   must be **at least 3x faster** than the cold build (database JSON
   from disk, session, prepares, matrix materialization), and the warm
   rankings must be bitwise identical with **zero** engine cache
   misses — the snapshot replaces computation, it never re-does or
   alters it.

2. **Request coalescing**: 16 concurrent HTTP clients against a
   coalescing server (micro-batching window folding concurrent
   ``/query`` requests into single ``run_many`` calls) must achieve
   **at least 2x** the queries/s of serial per-request handling on the
   same single worker thread, with identical responses.

3. **Backpressure**: a saturated server (``max_inflight=1`` under 16
   concurrent clients) must answer every request — 200 or 503 with
   ``Retry-After``, never a hang or a dropped connection — and
   ``/healthz`` must keep answering throughout.

4. **Apply safety**: a failed ``/apply`` (e.g. removing an absent
   edge) must leave the served snapshot and version untouched,
   bit-for-bit; a subsequent good delta must land normally.

The dataset here is deliberately **not** shrunk by
``REPRO_BENCH_SCALE=smoke``: gates 1-2 compare fixed per-boot overhead
(file reads, JSON parses, plan compilation) against matrix
computation, a ratio a toy dataset distorts, and the full-scale run
costs only a few seconds end to end.
"""

import json
import threading
import time
import http.client

import pytest

from repro.api import SimilarityService, SimilaritySession
from repro.datasets import generate_dblp, sample_queries_by_degree
from repro.graph.io import load_json, save_json
from repro.server import BackgroundServer, load_session, save_snapshot

WARM_START_GATE = 3.0
COALESCE_GATE = 2.0
CLIENTS = 16
REQUESTS_PER_CLIENT = 12
PATTERN = "r-a-.p-in.p-in-.r-a"
MAX_EXPAND = 16
TOP_K = 10
NUM_PROBES = 10


@pytest.fixture(scope="module")
def server_bundle():
    return generate_dblp(
        num_areas=15, num_procs=120, num_papers=2000, num_authors=900, seed=0
    )


def _prepare_all(target):
    """The serving workload: three algorithms sharing one engine."""
    return [
        target.prepare(
            algorithm="relsim",
            pattern=PATTERN,
            expand={"max_patterns": MAX_EXPAND},
            top_k=TOP_K,
        ),
        target.prepare(algorithm="pathsim", pattern="p-in.p-in-", top_k=TOP_K),
        target.prepare(algorithm="pattern-rwr", pattern=PATTERN, top_k=TOP_K),
    ]


def _call(address, method, path, payload=None, timeout=60):
    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


def test_warm_start_speedup(emit, tmp_path, server_bundle):
    database_path = str(tmp_path / "serving_db.json")
    snapshot_path = str(tmp_path / "serving.npz")
    save_json(server_bundle.database, database_path)
    probes = sample_queries_by_degree(
        server_bundle.database, "proc", NUM_PROBES, seed=0
    )

    def cold_boot():
        start = time.perf_counter()
        session = SimilaritySession(load_json(database_path))
        prepared = _prepare_all(session)
        rankings = [
            list(handle.run(node).items())
            for handle in prepared
            for node in probes
        ]
        return time.perf_counter() - start, session, rankings

    def warm_boot():
        start = time.perf_counter()
        session, info = load_session(snapshot_path)
        prepared = _prepare_all(session)
        rankings = [
            list(handle.run(node).items())
            for handle in prepared
            for node in probes
        ]
        return time.perf_counter() - start, session, rankings

    cold_seconds, session, reference = cold_boot()
    stats = save_snapshot(snapshot_path, session)
    for _ in range(2):
        cold_seconds = min(cold_seconds, cold_boot()[0])
    warm_seconds, warm_session, warm_rankings = warm_boot()
    for _ in range(2):
        warm_seconds = min(warm_seconds, warm_boot()[0])

    assert warm_rankings == reference, "warm rankings differ from cold"
    misses = warm_session.cache_info()["misses"]
    speedup = cold_seconds / max(warm_seconds, 1e-9)
    emit(
        "server_warm_start",
        "\n".join(
            [
                "Warm start from serving snapshot vs cold build "
                "({} matrices, {:.1f} MB snapshot)".format(
                    stats["matrices"], stats["bytes"] / 1e6
                ),
                "  cold: disk JSON -> session -> 3 prepares -> "
                "first rankings: {:.1f} ms".format(1000.0 * cold_seconds),
                "  warm: snapshot -> preloaded session -> same: "
                "{:.1f} ms".format(1000.0 * warm_seconds),
                "  speedup: {:.1f}x (gate: >= {:.1f}x), cache misses "
                "after warm boot: {}".format(
                    speedup, WARM_START_GATE, misses
                ),
                "  rankings bitwise identical: yes",
            ]
        ),
    )
    assert misses == 0, "warm start recomputed {} matrices".format(misses)
    assert speedup >= WARM_START_GATE, (
        "warm start {:.2f}x over cold build; gate is {}x".format(
            speedup, WARM_START_GATE
        )
    )


def _drive_clients(address, per_client_nodes):
    """CLIENTS threads, each a keep-alive connection issuing its nodes."""
    results = [None] * len(per_client_nodes)

    def worker(index, nodes):
        connection = http.client.HTTPConnection(*address, timeout=60)
        answers = []
        try:
            for node in nodes:
                connection.request(
                    "POST", "/query", body=json.dumps({"node": node})
                )
                response = connection.getresponse()
                answers.append(
                    (
                        response.status,
                        json.loads(response.read().decode("utf-8")),
                    )
                )
        finally:
            connection.close()
        results[index] = answers

    threads = [
        threading.Thread(target=worker, args=(index, nodes))
        for index, nodes in enumerate(per_client_nodes)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, results


def test_coalescing_throughput(emit, server_bundle):
    service = SimilarityService(server_bundle.database)
    # HeteSim is the batch-amortizing serving workload: ``run_many``
    # answers B queries with one dense block product, several times
    # cheaper per query than B separate ``run`` calls, so a coalesced
    # window has real work to amortize (relsim's per-query sparse row
    # slice is already near the HTTP floor).
    prepared = service.prepare(algorithm="hetesim", pattern=PATTERN, top_k=TOP_K)
    nodes = sample_queries_by_degree(
        server_bundle.database, "proc", REQUESTS_PER_CLIENT, seed=1
    )
    # Each client replays its node list three times: a longer measured
    # window damps scheduler noise in the throughput ratio.
    workload = [list(nodes) * 3 for _ in range(CLIENTS)]
    total = CLIENTS * len(nodes) * 3
    reference = {
        node: [[n, s] for n, s in prepared.run(node).items()]
        for node in nodes
    }

    measured = {}
    batcher = {}
    # Same service, same single worker thread; the only difference is
    # whether concurrent requests coalesce into run_many batches.
    for label, coalesce in (("serial", False), ("coalesced", True)):
        with BackgroundServer(
            service,
            prepared,
            port=0,
            coalesce=coalesce,
            coalesce_window=0.001,
            # A full complement of in-flight clients flushes at once
            # instead of waiting out the window.
            max_batch=CLIENTS,
            threads=1,
        ) as background:
            _call(background.address, "POST", "/query", {"node": nodes[0]})
            elapsed = float("inf")
            for _ in range(3):
                seconds, results = _drive_clients(background.address, workload)
                elapsed = min(elapsed, seconds)
            status, stats = _call(background.address, "GET", "/statz")
            assert status == 200
            batcher[label] = stats.get("batcher")
        for answers, client_nodes in zip(results, workload):
            for (status, payload), node in zip(answers, client_nodes):
                assert status == 200, payload
                assert payload["ranking"] == reference[node], node
        measured[label] = total / max(elapsed, 1e-9)

    ratio = measured["coalesced"] / max(measured["serial"], 1e-9)
    coalesced_batches = batcher["coalesced"]["batches"]
    emit(
        "server_coalescing",
        "\n".join(
            [
                "Request coalescing over HTTP ({} clients x {} requests, "
                "1 worker thread)".format(CLIENTS, len(workload[0])),
                "  serial per-request: {:.0f} queries/s".format(
                    measured["serial"]
                ),
                "  coalesced:          {:.0f} queries/s ({:.1f}x, "
                "gate: >= {:.1f}x)".format(
                    measured["coalesced"], ratio, COALESCE_GATE
                ),
                "  {} requests folded into {} run_many batches "
                "(largest {})".format(
                    batcher["coalesced"]["requests"],
                    coalesced_batches,
                    batcher["coalesced"]["largest_batch"],
                ),
                "  responses identical across modes: yes",
            ]
        ),
    )
    assert coalesced_batches < total, "no coalescing happened"
    assert ratio >= COALESCE_GATE, (
        "coalesced serving {:.2f}x over serial; gate is {}x".format(
            ratio, COALESCE_GATE
        )
    )


def test_backpressure_and_apply_safety(emit, server_bundle):
    service = SimilarityService(server_bundle.database)
    prepared = service.prepare(
        algorithm="relsim",
        pattern=PATTERN,
        expand={"max_patterns": MAX_EXPAND},
        top_k=TOP_K,
    )
    nodes = sample_queries_by_degree(
        server_bundle.database, "proc", REQUESTS_PER_CLIENT, seed=2
    )
    workload = [list(nodes) for _ in range(CLIENTS)]

    with BackgroundServer(
        service,
        prepared,
        port=0,
        coalesce=False,
        threads=1,
        max_inflight=1,
    ) as background:
        address = background.address
        probe = nodes[0]
        status, before = _call(address, "POST", "/query", {"node": probe})
        assert status == 200

        # Saturate: every request must come back 200 or 503, nothing
        # may hang or be dropped, and health stays reachable.
        elapsed, results = _drive_clients(address, workload)
        health_status, health = _call(address, "GET", "/healthz")
        answered = [answer for client in results for answer in client]
        statuses = {status for status, _ in answered}

        # Failed apply: the served snapshot and version are untouched.
        version_before = service.version
        status, rejected = _call(
            address,
            "POST",
            "/apply",
            {"edges_removed": [["no-such", "p-in", "node"]]},
        )
        status_after, after = _call(
            address, "POST", "/query", {"node": probe}
        )
        # ...and a good delta still lands normally afterwards.
        good_status, applied = _call(
            address,
            "POST",
            "/apply",
            {"edges_added": [["paper:0", "p-in", "proc:1"]]},
        )

    total = CLIENTS * len(nodes)
    rejected_count = sum(1 for status, _ in answered if status == 503)
    emit(
        "server_backpressure",
        "\n".join(
            [
                "Saturation (max_inflight=1, {} clients x {} requests) "
                "and /apply safety".format(CLIENTS, len(nodes)),
                "  answered {} / {} requests in {:.2f}s "
                "({} served, {} shed as 503)".format(
                    len(answered),
                    total,
                    elapsed,
                    len(answered) - rejected_count,
                    rejected_count,
                ),
                "  /healthz under saturation: {} ({})".format(
                    health_status, health["status"]
                ),
                "  failed /apply: {} -> version {} (unchanged), "
                "rankings bitwise unchanged: {}".format(
                    status,
                    after["version"],
                    "yes" if after["ranking"] == before["ranking"] else "NO",
                ),
                "  subsequent good /apply: {} -> version {}".format(
                    good_status, applied.get("version")
                ),
            ]
        ),
    )
    assert len(answered) == total, "requests were dropped"
    assert statuses <= {200, 503}, statuses
    assert 503 in statuses, "saturation never triggered backpressure"
    assert 200 in statuses, "saturated server served nothing"
    assert health_status == 200 and health["status"] == "ok"
    assert status == 409, rejected
    assert status_after == 200
    assert after["version"] == version_before
    assert after["ranking"] == before["ranking"]
    assert good_status == 200 and applied["version"] == version_before + 1
