"""Standing-query gate: maintained top-k exactness and pruning payoff.

The subscription layer (``service.subscribe``) keeps a top-k ranking
current under live deltas through a three-rung maintenance ladder:
footprint pruning (O(1) label intersection), a targeted-rescore
certificate, and a full re-rank fallback.  Two claims are gated:

1. **Exactness** — after every applied delta, each live subscription's
   maintained ranking must be **bitwise identical** to a fresh
   ``prepared.run()`` on a session built from scratch, for every
   registered algorithm.  The ladder is an optimization of *when* to
   recompute, never of *what* the ranking is.
2. **Pruning payoff** — maintaining a subscription through a
   footprint-disjoint (irrelevant) single-edge delta must be at least
   **10x cheaper** than rescoring the subscription's query once.  This
   is the fan-out economics of standing queries: thousands of
   subscriptions can ride a delta stream when the irrelevant ones cost
   a frozenset intersection, not a re-rank.
"""

import time

import pytest

from repro.api import SimilarityService, SimilaritySession
from repro.datasets import generate_dblp, sample_queries_by_degree
from repro.streaming import DeltaReport

IRRELEVANT_CHEAPNESS_GATE = 10.0
TOP_K = 10
PARITY_EDGES = 3
PRUNE_ITERATIONS = 200

#: One prepared-query spec per registered algorithm (mirrors the
#: delta-parity suite, including RelSim's Algorithm-1 expansion
#: variant).
SPECS = [
    ("relsim", {"pattern": "r-a-.p-in.p-in-.r-a"}),
    (
        "relsim",
        {
            "pattern": "r-a-.p-in.p-in-.r-a",
            "expand": {"max_patterns": 8},
        },
    ),
    ("pathsim", {"pattern": "p-in.p-in-"}),
    ("hetesim", {"pattern": "p-in-.p-in", "answer_type": "proc"}),
    ("rwr", {}),
    ("simrank", {}),
    ("pattern-rwr", {"pattern": "p-in.p-in-"}),
    ("pattern-simrank", {"pattern": "p-in.p-in-"}),
    ("common-neighbors", {}),
    ("katz", {}),
]


@pytest.fixture(scope="module")
def parity_bundle():
    """Small DBLP: SimRank's dense solve keeps per-delta checks quick."""
    return generate_dblp(
        num_areas=3, num_procs=8, num_papers=80, num_authors=40, seed=0
    )


def _prepare_all(target):
    return [
        target.prepare(algorithm=name, top_k=TOP_K, **options)
        for name, options in SPECS
    ]


def test_maintained_topk_matches_fresh_run_for_every_algorithm(
    emit, parity_bundle
):
    database = parity_bundle.database
    service = SimilarityService(database)
    prepared = _prepare_all(service)
    node = sorted(database.nodes_of_type("proc"))[0]
    subscriptions = [
        service.subscribe(handle, node) for handle in prepared
    ]

    # Toggle existing p-in edges so every apply is a genuine
    # single-edge delta and the graph ends where it started.
    edges = sorted(database.edges("p-in"))[:PARITY_EDGES]
    assert len(edges) == PARITY_EDGES
    checks = 0
    for edge in edges:
        for delta in ({"edges_removed": [edge]}, {"edges_added": [edge]}):
            service.apply(incremental=True, **delta)
            fresh = SimilaritySession(service.database)
            for (name, options), subscription in zip(SPECS, subscriptions):
                reference = fresh.prepare(
                    algorithm=name, top_k=TOP_K, **options
                )
                assert (
                    subscription.items() == reference.run(node).items()
                ), (
                    "algorithm {!r}: maintained subscription diverged "
                    "from a fresh run after {!r}".format(name, delta)
                )
                checks += 1

    stats = service.subscription_stats
    ladder = stats["pruned"] + stats["rescored"] + stats["fallbacks"]
    assert ladder == len(SPECS) * 2 * PARITY_EDGES
    emit(
        "subscription_parity",
        "\n".join(
            [
                "Standing-query exactness ({} algorithms x {} single-"
                "edge deltas, top_k={})".format(
                    len(SPECS), 2 * PARITY_EDGES, TOP_K
                ),
                "  maintained top-k == fresh prepared.run(): {}/{} "
                "checks bitwise identical".format(checks, checks),
                "  maintenance ladder: {} pruned, {} rescore-certified, "
                "{} full fallbacks".format(
                    stats["pruned"], stats["rescored"], stats["fallbacks"]
                ),
            ]
        ),
    )


def test_irrelevant_delta_is_cheaper_than_one_rescore(
    emit, dblp_large_bundle
):
    database = dblp_large_bundle.database
    service = SimilarityService(database)
    prepared = service.prepare(
        algorithm="pathsim", pattern="p-in.p-in-", top_k=TOP_K
    )
    assert prepared.footprint() == (frozenset({"p-in"}), False)
    node = sample_queries_by_degree(database, "paper", 1, seed=0)[0]
    subscription = service.subscribe(prepared, node)

    # The author-writes label is disjoint from the pattern footprint:
    # exactly the delta shape standing queries must shrug off.
    irrelevant = DeltaReport(labels=frozenset({"w"}), grew=False)
    subscription.poll(irrelevant)  # warm
    prepared.run(node, top_k=TOP_K)  # warm

    start = time.perf_counter()
    for _ in range(PRUNE_ITERATIONS):
        subscription.poll(irrelevant)
    poll_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(PRUNE_ITERATIONS):
        prepared.run(node, top_k=TOP_K)
    rescore_seconds = time.perf_counter() - start

    assert subscription.stats()["pruned"] == PRUNE_ITERATIONS + 1
    assert subscription.stats()["fallbacks"] == 0

    # End to end: a real footprint-disjoint apply takes the same rung.
    author = sorted(database.nodes_of_type("author"))[0]
    paper = next(
        p
        for p in sorted(database.nodes_of_type("paper"))
        if not database.has_edge(author, "w", p)
    )
    service.apply(edges_added=[(author, "w", paper)], incremental=True)
    assert subscription.stats()["pruned"] == PRUNE_ITERATIONS + 2

    ratio = rescore_seconds / max(poll_seconds, 1e-12)
    emit(
        "subscription_pruning",
        "\n".join(
            [
                "Irrelevant-delta cost per subscription ({} iterations, "
                "pathsim top_k={})".format(PRUNE_ITERATIONS, TOP_K),
                "  rescore one query  : {:10.2f} us".format(
                    1e6 * rescore_seconds / PRUNE_ITERATIONS
                ),
                "  footprint pruning  : {:10.2f} us  ({:.0f}x cheaper)".format(
                    1e6 * poll_seconds / PRUNE_ITERATIONS, ratio
                ),
            ]
        ),
    )
    assert ratio >= IRRELEVANT_CHEAPNESS_GATE, (
        "pruned maintenance only {:.1f}x cheaper than a rescore; gate "
        "is {}x".format(ratio, IRRELEVANT_CHEAPNESS_GATE)
    )
