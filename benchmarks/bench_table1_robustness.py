"""Table 1 — structural robustness under information-preserving
transformations.

Paper rows: average normalized Kendall tau @5/@10 of RWR, SimRank and
PathSim (HeteSim on BioMed) across DBLP2SIGM, WSUC2ALCH and BioMedT.
RelSim's row is included explicitly: the paper omits it "because it
returns the same answers over all transformations" — here we *measure*
that it is exactly 0.

Expected shape: RelSim == 0 everywhere; every baseline well above 0.
"""

from repro.api import SimilaritySession
from repro.datasets import sample_queries_by_degree
from repro.eval import RobustnessExperiment, robustness_table
from repro.lang import parse_pattern
from repro.transform import (
    EXPERIMENT_PATTERNS,
    biomedt,
    dblp2sigm,
    map_pattern,
    wsuc2alch,
)


def _pattern_pair(mapping, spec):
    p_src = parse_pattern(spec["relsim_source"])
    return p_src, map_pattern(mapping, p_src)


def _symmetric_setup(bundle, mapping, spec_key, num_queries=50):
    spec = EXPERIMENT_PATTERNS[spec_key]
    db = bundle.database
    variant = mapping.apply(db)
    p_src, p_tgt = _pattern_pair(mapping, spec)
    queries = sample_queries_by_degree(
        db, spec["query_type"], num_queries, seed=0
    )
    # One session per side: RelSim and PathSim share every commuting
    # matrix they have in common instead of re-materializing it.
    algorithms = {
        "RelSim": (
            lambda s: s.algorithm("relsim", pattern=p_src),
            lambda s: s.algorithm("relsim", pattern=p_tgt),
        ),
        "PathSim": (
            lambda s: s.algorithm("pathsim", pattern=spec["pathsim_source"]),
            lambda s: s.algorithm("pathsim", pattern=spec["pathsim_target"]),
        ),
        "RWR": (
            lambda s: s.algorithm("rwr"),
            lambda s: s.algorithm("rwr"),
        ),
        "SimRank": (
            lambda s: s.algorithm("simrank"),
            lambda s: s.algorithm("simrank"),
        ),
    }
    return RobustnessExperiment(
        db,
        variant,
        algorithms,
        queries,
        sessions=(SimilaritySession(db), SimilaritySession(variant)),
        transformation_name=spec_key,
    )


def _biomed_setup(bundle, num_queries=30):
    mapping = biomedt()
    spec = EXPERIMENT_PATTERNS["BioMedT"]
    db = bundle.database
    variant = mapping.apply(db)
    p_src, p_tgt = _pattern_pair(mapping, spec)
    queries = list(bundle.ground_truth)[:num_queries]
    algorithms = {
        "RelSim": (
            lambda s: s.algorithm(
                "relsim", pattern=p_src, scoring="cosine", answer_type="drug"
            ),
            lambda s: s.algorithm(
                "relsim", pattern=p_tgt, scoring="cosine", answer_type="drug"
            ),
        ),
        # Disease->drug paths are asymmetric: the paper evaluates them
        # with HeteSim instead of PathSim.
        "PathSim/HeteSim": (
            lambda s: s.algorithm(
                "hetesim", pattern=spec["pathsim_source"], answer_type="drug"
            ),
            lambda s: s.algorithm(
                "hetesim", pattern=spec["pathsim_target"], answer_type="drug"
            ),
        ),
        "RWR": (
            lambda s: s.algorithm("rwr", answer_type="drug"),
            lambda s: s.algorithm("rwr", answer_type="drug"),
        ),
        "SimRank": (
            lambda s: s.algorithm("simrank", answer_type="drug"),
            lambda s: s.algorithm("simrank", answer_type="drug"),
        ),
    }
    return RobustnessExperiment(
        db,
        variant,
        algorithms,
        queries,
        sessions=(SimilaritySession(db), SimilaritySession(variant)),
        transformation_name="BioMedT",
    )


def test_table1_robustness(
    benchmark, emit, dblp_bundle, wsu_bundle, biomed_bundle
):
    experiments = [
        _symmetric_setup(dblp_bundle, dblp2sigm(), "DBLP2SIGM"),
        _symmetric_setup(wsu_bundle, wsuc2alch(), "WSUC2ALCH"),
        _biomed_setup(biomed_bundle),
    ]

    def run():
        return [experiment.run() for experiment in experiments]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table1",
        robustness_table(
            results,
            algorithms=["RWR", "SimRank", "PathSim", "PathSim/HeteSim", "RelSim"],
            title="Table 1 - average ranking difference (normalized "
            "Kendall tau), information-preserving transformations",
        ),
    )

    for result in results:
        assert result.tau("RelSim", 5) == 0.0
        assert result.tau("RelSim", 10) == 0.0
    # At least one baseline is visibly non-robust in every experiment.
    for result in results:
        baseline_taus = [
            taus[5]
            for name, taus in result.taus.items()
            if name != "RelSim"
        ]
        assert max(baseline_taus) > 0.05
