"""The paper's primary contribution: the RelSim algorithm."""

from repro.core.relsim import RelSim

__all__ = ["RelSim"]
