"""RelSim — the paper's structurally robust similarity search algorithm.

RelSim is PathSim's scoring formula (Equation 1) evaluated over **RRE**
patterns instead of plain meta-paths.  Because RRE is expressive enough
to carry any pattern across an invertible transformation with *equal
instance counts* (Theorem 2 via the skip/nested operators), RelSim
returns identical ranked lists over a database and all of its invertible
structural variations (Corollary 1).

Two scoring modes beyond PathSim's are provided for asymmetric
relationships (e.g. disease-to-drug queries, Section 7.2, where the
PathSim denominator is identically zero):

* ``"count"`` — the raw instance count ``|I^{u,v}(p)|``;
* ``"cosine"`` — counts normalized by the query row and candidate column
  norms of the commuting matrix (a HeteSim-flavored normalization).

All three are functions of the commuting matrix restricted to preserved
nodes, hence equally robust.
"""

import numpy as np

from repro.exceptions import EvaluationError
from repro.graph.matrices import dense_rows
from repro.lang.ast import Pattern
from repro.lang.matrix_semantics import (
    CommutingMatrixEngine,
    pathsim_columns,
    pathsim_rows,
)
from repro.lang.parser import parse_pattern
from repro.similarity.base import SimilarityAlgorithm

_SCORINGS = ("pathsim", "count", "cosine")


def _as_patterns(patterns):
    if isinstance(patterns, (str, Pattern)):
        patterns = [patterns]
    resolved = []
    for pattern in patterns:
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        if not isinstance(pattern, Pattern):
            raise TypeError(
                "pattern must be a string or Pattern AST, got {!r}".format(
                    pattern
                )
            )
        if pattern not in resolved:
            resolved.append(pattern)
    if not resolved:
        raise EvaluationError("RelSim needs at least one pattern")
    return resolved


class RelSim(SimilarityAlgorithm):
    """Similarity search over one or more RRE relationship patterns.

    With several patterns the per-pattern scores are summed — the
    aggregation used by the usability layer (Section 5), where the
    pattern set comes from Algorithm 1.

    Parameters
    ----------
    database:
        The graph database to search.
    patterns:
        One RRE (string/AST) or a list of them.
    scoring:
        ``"pathsim"`` (default, Equation 1), ``"count"`` or ``"cosine"``.
    engine:
        Optional shared :class:`CommutingMatrixEngine`.
    """

    name = "RelSim"

    pattern_local = True

    def __init__(
        self,
        database,
        patterns,
        scoring="pathsim",
        engine=None,
        answer_type=None,
    ):
        super().__init__(database, answer_type=answer_type)
        if scoring not in _SCORINGS:
            raise EvaluationError(
                "unknown scoring {!r}; choose one of {}".format(
                    scoring, _SCORINGS
                )
            )
        self.patterns = _as_patterns(patterns)
        self.scoring = scoring
        # pathsim/count scores are entry-local sparse arithmetic, stable
        # under node-set padding; cosine norms reduce over whole rows,
        # whose float result can shift with the vector length.
        self.delta_growth_sensitive = scoring == "cosine"
        self.engine = engine or CommutingMatrixEngine(database)
        self._view = self.engine.view

    # ------------------------------------------------------------------
    # Prepared scoring state
    # ------------------------------------------------------------------
    def prepare_scoring(self):
        """Pin per-pattern scoring state: matrices, diagonals, norms.

        After this, :meth:`score_rows` runs on immutable local state —
        no plan compilation, no engine cache probing, no per-call
        ``matrix.diagonal()`` extraction.  When the engine's LRU cap is
        smaller than the pattern set — or its byte ``memory_budget``
        smaller than the set's estimated resident size — pinning every
        matrix at once would defeat the limit, so only the compile pass
        runs and the per-call path is kept (same rule as
        :meth:`score_rows` warming).
        """
        if self._prepared_state is not None:
            return self
        if self.engine.warm_exceeds_limits(self.patterns):
            for pattern in self.patterns:
                self.engine.compile(pattern)
            return self
        matrices = self.engine.warm(
            self.patterns, norms=self.scoring == "cosine"
        )
        state = []
        for pattern, matrix in zip(self.patterns, matrices):
            matrix.sum_duplicates()  # dense_rows needs canonical CSR
            # Engine-cached: shared across algorithms and patched in
            # place by delta maintenance, so re-pinning after a live
            # update only recomputes what actually changed.
            diagonal = (
                self.engine.diagonal(pattern)
                if self.scoring == "pathsim"
                else None
            )
            norms = (
                self.engine.column_norms(pattern)
                if self.scoring == "cosine"
                else None
            )
            state.append((matrix, diagonal, norms))
        self._prepared_state = tuple(state)
        return self

    def delta_rescore(self, query_index, plan_deltas):
        """Targeted rescore of the candidates a delta touched (or None).

        Every cached plan delta names exactly which matrix entries (and,
        through its diagonal, which PathSim denominators) moved; a
        candidate column outside that set provably kept its score.  The
        touched columns are rescored from the pinned state with the
        same elementwise arithmetic as :meth:`score_rows`, accumulated
        in the same pattern order, so the returned scores are bitwise
        comparable with a full re-rank.  Unsupported cases — unpinned
        state, cosine's whole-row norms, a missing plan delta, or a
        delta to the query's own diagonal (every denominator moves) —
        return None.
        """
        state = self._prepared_state
        if state is None or self.scoring == "cosine":
            return None
        deltas = []
        for pattern in self.patterns:
            d = plan_deltas.get(self.engine.compile(pattern))
            if d is None:
                return None
            deltas.append(d)
        affected = set()
        for d in deltas:
            if d.nnz == 0:
                continue
            start, end = d.indptr[query_index], d.indptr[query_index + 1]
            affected.update(int(col) for col in d.indices[start:end])
            if self.scoring == "pathsim":
                diagonal_delta = d.diagonal()
                if diagonal_delta[query_index] != 0:
                    return None
                affected.update(
                    int(row) for row in np.flatnonzero(diagonal_delta)
                )
        if not affected:
            return np.empty(0, dtype=np.intp), np.zeros(0)
        columns = np.array(sorted(affected), dtype=np.intp)
        scores = np.zeros(len(columns))
        for matrix, diagonal, _norms in state:
            if self.scoring == "pathsim":
                pathsim_columns(matrix, query_index, diagonal, columns, scores)
                continue
            # count: the stored row values at the selected columns,
            # added in pattern order exactly like the dense_rows path.
            start, end = (
                matrix.indptr[query_index],
                matrix.indptr[query_index + 1],
            )
            cols = matrix.indices[start:end]
            positions = np.searchsorted(columns, cols)
            inside = positions < len(columns)
            selected = inside.copy()
            selected[inside] = columns[positions[inside]] == cols[inside]
            scores[positions[selected]] += matrix.data[start:end][selected]
        return columns, scores

    def _prepared_pattern_rows(self, entry, indices, out):
        """Score rows for one pattern from pinned state (no engine).

        PathSim scoring accumulates straight into ``out`` (sparse-row
        arithmetic, no per-pattern dense block); the other modes return
        a dense block for the caller to add.
        """
        matrix, diagonal, norms = entry
        if self.scoring == "pathsim":
            pathsim_rows(matrix, indices, diagonal, out=out)
            return None
        rows = dense_rows(matrix, indices)
        if self.scoring == "count":
            return rows
        # cosine
        row_norms = np.linalg.norm(rows, axis=1)
        scores = np.zeros_like(rows)
        defined = (row_norms[:, None] > 0) & (norms[None, :] > 0)
        denominator = row_norms[:, None] * norms[None, :]
        scores[defined] = rows[defined] / denominator[defined]
        return scores

    # ------------------------------------------------------------------
    def _pattern_rows(self, pattern, queries):
        """``(len(queries), n)`` score rows for one pattern.

        All three scoring modes reduce to one sparse row slice of the
        commuting matrix (``matrix[rows, :]``), so a batch of queries
        costs a single slice per pattern.  Column norms for the cosine
        mode live on the engine — every algorithm sharing the engine
        (e.g. through a :class:`~repro.api.SimilaritySession`) reuses
        them.
        """
        if self.scoring == "pathsim":
            return self.engine.pathsim_scores_from_many(pattern, queries)
        rows = self.engine.rows_dense(pattern, queries)
        if self.scoring == "count":
            return rows
        # cosine
        norms = self.engine.column_norms(pattern)
        row_norms = np.linalg.norm(rows, axis=1)
        scores = np.zeros_like(rows)
        defined = (row_norms[:, None] > 0) & (norms[None, :] > 0)
        denominator = row_norms[:, None] * norms[None, :]
        scores[defined] = rows[defined] / denominator[defined]
        return scores

    def score_rows(self, queries):
        """Batch score rows: one sparse row slice per pattern, summed.

        The whole pattern set is *compiled* first, so the plan compiler
        sees every pattern before any chain order is chosen and the
        shared prefixes/sub-chains of an Algorithm-1 expansion are
        multiplied once and reused (cross-pattern CSE).  When the set
        fits under the engine's limits (LRU cap and byte budget), the
        matrices are also warmed through ``matrices_many`` so the
        per-pattern scoring below is pure cache hits; with limits
        tighter than the set, warming would defeat them (pin every
        matrix at once) and be evicted before use, so only the compile
        pass runs.
        """
        queries = list(queries)
        indices = self.engine.query_indices(queries)
        state = self._prepared_state
        total = np.zeros((len(queries), len(self.engine.indexer)))
        if state is not None:
            # Prepared hot path: every matrix/diagonal/norm is pinned,
            # so a call is pure slicing and arithmetic.
            for entry in state:
                block = self._prepared_pattern_rows(entry, indices, total)
                if block is not None:
                    total += block
            return indices, total
        if self.engine.warm_exceeds_limits(self.patterns):
            for pattern in self.patterns:
                self.engine.compile(pattern)
        else:
            self.engine.matrices_many(self.patterns)
        for pattern in self.patterns:
            total += self._pattern_rows(pattern, queries)
        return indices, total

    # ------------------------------------------------------------------
    @classmethod
    def from_simple_pattern(
        cls,
        database,
        pattern,
        constraints=None,
        scoring="pathsim",
        engine=None,
        answer_type=None,
        use_filters=True,
        max_patterns=64,
    ):
        """The usability-layer constructor (Section 5).

        Runs Algorithm 1 on ``pattern`` against the schema's constraints
        (or an explicit ``constraints`` list) and aggregates over the
        generated RRE set.
        """
        from repro.patterns.generator import generate_patterns

        if constraints is None:
            constraints = database.schema.constraints
        generated = generate_patterns(
            pattern,
            constraints,
            use_filters=use_filters,
            max_patterns=max_patterns,
        )
        return cls(
            database,
            generated.patterns,
            scoring=scoring,
            engine=engine,
            answer_type=answer_type,
        )
