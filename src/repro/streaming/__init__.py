"""Standing queries over the delta stream (push-based top-k).

See :mod:`repro.streaming.subscription` for the maintenance ladder
(pruned / rescored / fallback) and the bitwise-identity contract.
"""

from repro.streaming.events import DeltaReport, RankingEvent, diff_rankings
from repro.streaming.subscription import Subscription, SubscriptionManager

__all__ = [
    "DeltaReport",
    "RankingEvent",
    "Subscription",
    "SubscriptionManager",
    "diff_rankings",
]
