"""Standing queries: push-based incremental top-k subscriptions.

A :class:`Subscription` pins one ``(prepared query, query node)`` pair
and keeps its top-k ranking current as
:class:`~repro.api.service.SimilarityService` publishes updates,
notifying a callback only when the ranking actually changes.  The
maintenance ladder, cheapest rung first:

1. **Pruned** — the delta's :class:`~repro.streaming.events.DeltaReport`
   does not touch the subscription's pattern-label footprint: the
   ranking provably kept every bit, at the cost of one frozenset
   intersection.
2. **Rescored** — the bound algorithm's ``delta_rescore`` names exactly
   which candidates the delta may have moved; if none of them is a
   current member and none can newly clear the k-th score threshold,
   the old ranking is *certified* unchanged without a full re-rank.
3. **Fallback** — anything the certificate cannot vouch for re-runs the
   prepared query in full.

The certificate is only ever used to prove "nothing changed": whenever
a ranking might have moved, the new ranking comes from a fresh
``prepared.run`` — so a subscription's maintained top-k is always
bitwise identical to re-running the query, by construction.

Callbacks are dispatched from a dedicated notifier thread, never while
any lock is held: a slow or re-entrant subscriber cannot stall the
service's publish path or deadlock against it.
"""

import queue
import threading

from repro.streaming.events import DeltaReport, RankingEvent, diff_rankings

_UNSET = object()

#: Sentinel telling the notifier thread to exit.
_SHUTDOWN = object()


class Subscription:
    """A standing top-k query over one node, maintained under deltas.

    Obtained from :meth:`SimilarityService.subscribe`; not constructed
    directly.  Thread-safe: readers (:meth:`items`, :meth:`stats`) take
    the manager's lock, the callback runs on the notifier thread.
    """

    __slots__ = (
        "_manager",
        "_prepared",
        "node",
        "_callback",
        "_top_k",
        "_footprint",
        "_items",
        "_version",
        "_active",
        "_notified",
        "_pruned",
        "_rescored",
        "_fallbacks",
    )

    def __init__(self, manager, prepared, node, callback, top_k, footprint):
        self._manager = manager
        self._prepared = prepared
        self.node = node
        self._callback = callback
        self._top_k = top_k
        self._footprint = footprint
        self._items = []
        self._version = None
        self._active = True
        self._notified = 0
        self._pruned = 0
        self._rescored = 0
        self._fallbacks = 0

    @property
    def prepared(self):
        """The prepared query this subscription ranks with."""
        return self._prepared

    @property
    def top_k(self):
        """The ranking size maintained (``None`` = unbounded)."""
        return self._top_k

    @property
    def active(self):
        """False once :meth:`cancel` has detached the subscription."""
        return self._active

    @property
    def version(self):
        """The service version the maintained ranking reflects."""
        with self._manager._lock:
            return self._version

    def items(self):
        """The maintained ``(node, score)`` ranking (a copy)."""
        with self._manager._lock:
            return list(self._items)

    def stats(self):
        """Per-subscription maintenance counters."""
        with self._manager._lock:
            return {
                "notified": self._notified,
                "pruned": self._pruned,
                "rescored": self._rescored,
                "fallbacks": self._fallbacks,
            }

    def cancel(self):
        """Detach: no further maintenance or notifications (idempotent)."""
        self._manager._cancel(self)

    def poll(self, report=None, version=_UNSET):
        """Run one maintenance step now, as if ``report`` was published.

        With ``report=None`` the update is treated as unknown (full
        fallback re-rank).  Primarily for tests and benchmarks — the
        service drives live subscriptions through its publish path.
        """
        if report is None:
            report = DeltaReport.unknown()
        with self._manager._lock:
            if not self._active:
                return
            new_version = self._version if version is _UNSET else version
            self._manager._maintain(self, new_version, report)


class SubscriptionManager:
    """Owns the subscription list and the notifier thread.

    ``on_publish`` is called by the service (under its mutation lock)
    after every successful publish; maintenance runs synchronously so a
    subscription is never behind the snapshot the service reports, but
    callbacks are only *enqueued* here and invoked later on the
    notifier thread with no lock held.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._notifier_lock = threading.Lock()
        self._subscriptions = []
        self._events = queue.Queue()
        self._notifier = None
        self._callback_errors = 0

    # ------------------------------------------------------------------
    # Subscription lifecycle
    # ------------------------------------------------------------------
    def subscribe(self, prepared, node, callback, top_k, version):
        """Create a live subscription and enqueue its snapshot event.

        The initial ranking is computed synchronously — an unknown
        ``node`` raises here, not on the notifier thread.  ``top_k`` is
        already resolved by the caller (the service applies the
        prepared query's default).
        """
        footprint = prepared.footprint()
        ranking = prepared.run(node, top_k=top_k)
        subscription = Subscription(
            self, prepared, node, callback, top_k, footprint
        )
        items = ranking.items()
        with self._lock:
            subscription._items = items
            subscription._version = version
            self._subscriptions.append(subscription)
        event = RankingEvent(
            "snapshot",
            version,
            items,
            entered=[node_ for node_, _ in items],
            left=[],
            reordered=[],
        )
        self._dispatch(subscription, event)
        return subscription

    def _cancel(self, subscription):
        with self._lock:
            subscription._active = False
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                pass

    def close(self):
        """Cancel everything and stop the notifier thread (if started)."""
        with self._lock:
            for subscription in self._subscriptions:
                subscription._active = False
            self._subscriptions = []
        with self._notifier_lock:
            notifier, self._notifier = self._notifier, None
        if notifier is not None:
            self._events.put(_SHUTDOWN)
            notifier.join(timeout=5)

    # ------------------------------------------------------------------
    # Publish-side maintenance
    # ------------------------------------------------------------------
    def on_publish(self, version, report):
        """Maintain every live subscription against one published update."""
        with self._lock:
            for subscription in list(self._subscriptions):
                self._maintain(subscription, version, report)

    def _maintain(self, subscription, version, report):
        # Caller holds self._lock.
        if not report.touches(subscription._footprint):
            subscription._pruned += 1
            subscription._version = version
            return
        if self._certified_unchanged(subscription, report):
            subscription._rescored += 1
            subscription._version = version
            return
        ranking = subscription._prepared.run(
            subscription.node, top_k=subscription._top_k
        )
        subscription._fallbacks += 1
        new_items = ranking.items()
        old_items = subscription._items
        subscription._version = version
        if new_items == old_items:
            return
        subscription._items = new_items
        subscription._notified += 1
        entered, left, reordered = diff_rankings(old_items, new_items)
        event = RankingEvent(
            "update", version, new_items, entered, left, reordered
        )
        self._dispatch(subscription, event)

    def _certified_unchanged(self, subscription, report):
        """True when a targeted rescore proves the ranking kept every bit.

        Sound, not complete: every ``False`` just means "fall back to a
        full re-rank", so the maintained ranking is always either the
        certified-unchanged old one or a fresh ``run`` result.
        """
        top_k = subscription._top_k
        if top_k is not None and top_k <= 0:
            return True  # the ranking is empty forever
        _session, algorithm = subscription._prepared.bound_snapshot()
        try:
            view = algorithm._view
            if view is None:
                return False
            query_index = int(view.query_indices([subscription.node])[0])
            rescored = algorithm.delta_rescore(
                query_index, report.plan_deltas
            )
            if rescored is None:
                return False
            columns, scores = rescored
            if len(columns) == 0:
                return True
            nodes, candidate_columns = algorithm._candidate_arrays(
                subscription.node
            )
        except Exception:
            return False
        node_of = dict(zip(candidate_columns.tolist(), nodes))
        items = subscription._items
        members = {node for node, _ in items}
        kth = items[-1][1] if items else None
        full = top_k is not None and len(items) >= top_k
        for column, score in zip(columns.tolist(), scores):
            if column == query_index:
                continue
            node = node_of.get(column)
            if node is None:
                continue  # not a candidate for this query
            if node in members:
                return False  # a member's score may have moved
            if full:
                # An outsider newly at/above the boundary can enter (a
                # tie at the k-th score can displace the str-order
                # fill), so only strictly-below scores are safe.
                if score >= kth:
                    return False
            elif score > 0:
                return False  # room in the ranking; a positive score enters
        return True

    # ------------------------------------------------------------------
    # Notifier thread
    # ------------------------------------------------------------------
    def _dispatch(self, subscription, event):
        if subscription._callback is None:
            return
        self._ensure_notifier()
        self._events.put((subscription, event))

    def _ensure_notifier(self):
        # A dedicated lock: _dispatch may run with or without
        # self._lock held, and threading.Lock is not reentrant.
        with self._notifier_lock:
            if self._notifier is None:
                thread = threading.Thread(
                    target=self._drain_events,
                    name="repro-subscription-notifier",
                    daemon=True,
                )
                self._notifier = thread
                thread.start()

    def _drain_events(self):
        while True:
            entry = self._events.get()
            try:
                if entry is _SHUTDOWN:
                    return
                subscription, event = entry
                if not subscription._active:
                    continue
                try:
                    subscription._callback(event)
                except Exception:
                    # A broken subscriber must not kill the notifier
                    # or starve other subscriptions.
                    with self._lock:
                        self._callback_errors += 1
            finally:
                self._events.task_done()

    def flush(self):
        """Block until every enqueued notification has been delivered."""
        self._events.join()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self):
        """Aggregate counters across live subscriptions."""
        with self._lock:
            totals = {
                "active": len(self._subscriptions),
                "notified": 0,
                "pruned": 0,
                "rescored": 0,
                "fallbacks": 0,
                "callback_errors": self._callback_errors,
            }
            for subscription in self._subscriptions:
                totals["notified"] += subscription._notified
                totals["pruned"] += subscription._pruned
                totals["rescored"] += subscription._rescored
                totals["fallbacks"] += subscription._fallbacks
        return totals
