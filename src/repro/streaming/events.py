"""Delta reports and ranking events for standing queries.

A :class:`DeltaReport` is the publication-side summary of one engine
update: which edge labels the delta touched, whether the node set grew,
and the per-plan sparse deltas the propagation pass produced.  The
subscription layer intersects it with each subscription's pattern
footprint to decide, in O(1), whether the update can possibly move that
subscription's ranking.

A :class:`RankingEvent` is what subscribers receive: the new top-k plus
a structured diff against the previous notification (which nodes
entered, which left, which survivors changed position).
"""


class DeltaReport:
    """What one published engine update did, for pruning decisions.

    Parameters
    ----------
    labels:
        Frozenset of edge labels the delta touched, or None when the
        update's effect is unknown (a full rebuild) — None matches every
        footprint.
    grew:
        True when the update added nodes.  Growth can shift
        floating-point results of shape-dependent reductions even for
        label-disjoint patterns, so growth-sensitive subscriptions treat
        a growing delta as relevant regardless of labels.
    plan_deltas:
        Mapping of plan node -> sparse delta matrix from the propagation
        pass (empty for full rebuilds).  Feeds targeted rescoring.
    """

    __slots__ = ("labels", "grew", "plan_deltas")

    def __init__(self, labels, grew, plan_deltas=None):
        self.labels = labels
        self.grew = grew
        self.plan_deltas = plan_deltas or {}

    @classmethod
    def unknown(cls):
        """A report that matches every footprint (full rebuild/swap)."""
        return cls(labels=None, grew=True)

    def touches(self, footprint):
        """True when this update may move a ranking with ``footprint``.

        ``footprint`` is ``(labels, growth_sensitive)`` from
        :meth:`PreparedQuery.footprint`, or None for algorithms that can
        read the whole graph (wildcard — everything touches them).
        """
        if footprint is None or self.labels is None:
            return True
        labels, growth_sensitive = footprint
        if self.grew and growth_sensitive:
            return True
        return not self.labels.isdisjoint(labels)


class RankingEvent:
    """One notification: the new top-k plus a diff against the last one.

    ``type`` is ``"snapshot"`` for the initial ranking delivered at
    subscribe time and ``"update"`` afterwards.  ``items`` is the full
    new ranking as ``(node, score)`` tuples; ``entered``/``left`` are
    node lists, and ``reordered`` lists surviving nodes whose position
    changed.
    """

    __slots__ = ("type", "version", "items", "entered", "left", "reordered")

    def __init__(self, type, version, items, entered, left, reordered):
        self.type = type
        self.version = version
        self.items = items
        self.entered = entered
        self.left = left
        self.reordered = reordered

    def to_dict(self):
        """JSON-ready payload (scores as floats, nodes as-is)."""
        return {
            "type": self.type,
            "version": self.version,
            "ranking": [[node, float(score)] for node, score in self.items],
            "entered": list(self.entered),
            "left": list(self.left),
            "reordered": list(self.reordered),
        }


def diff_rankings(old_items, new_items):
    """``(entered, left, reordered)`` between two ranked item lists.

    ``entered`` preserves new-ranking order, ``left`` old-ranking order,
    and ``reordered`` lists survivors (new-ranking order) whose position
    among survivors changed — so a node that merely slid down because a
    newcomer entered above it is not reported as reordered.
    """
    old_nodes = [node for node, _ in old_items]
    new_nodes = [node for node, _ in new_items]
    old_set = set(old_nodes)
    new_set = set(new_nodes)
    entered = [node for node in new_nodes if node not in old_set]
    left = [node for node in old_nodes if node not in new_set]
    old_survivors = [node for node in old_nodes if node in new_set]
    new_survivors = [node for node in new_nodes if node in old_set]
    reordered = [
        node
        for node, previous in zip(new_survivors, old_survivors)
        if node != previous
    ]
    return entered, left, reordered
