"""Command-line interface for the repro library.

Subcommands mirror the research workflow::

    repro generate --dataset dblp --out db.json          # synthesize data
    repro stats db.json                                  # describe it
    repro query db.json --pattern "r-a-.r-a" --node X    # similarity search
    repro query db.json --algorithm rwr --node X         # any registered algo
    repro query db.json --pattern "r-a-.r-a" --node X --expand   # Algorithm 1
    repro explain db.json --pattern "r-a-.r-a" --expand  # compiled plan
    repro check db.json --pattern "r-a-.r-a" --json      # static type check
    repro serve db.json --pattern "r-a-.r-a" --expand    # HTTP server
    repro serve --snapshot snap.npz                      # ... warm-started
    repro watch http://127.0.0.1:8321 --node "proc:0"    # standing query
    repro serve-bench db.json --pattern "r-a-.r-a" --expand      # serving
    repro stats db.json --live                           # cache/delta counters
    repro transform db.json --mapping dblp2sigm --out t.json
    repro patterns db.json --pattern "r-a-.r-a"          # Algorithm 1
    repro robustness --dataset dblp --mapping dblp2sigm  # mini Table 1

Queries go through one :class:`~repro.api.SimilaritySession` per
database, so every algorithm involved shares materialized matrices.

Entry points: ``python -m repro.cli ...`` or :func:`main` for tests.
"""

import argparse
import os
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.api import (
    SimilarityService,
    SimilaritySession,
    algorithm_parameters,
    available_algorithms,
)
from repro.datasets import (
    generate_biomed_small,
    generate_dblp,
    generate_dblp_scale,
    generate_dblp_small,
    generate_mas,
    generate_wsu,
    sample_queries_by_degree,
)
from repro.eval import RobustnessExperiment, robustness_table
from repro.exceptions import EvaluationError, ReproError
from repro.graph.io import load_json, save_json
from repro.graph.statistics import summarize
from repro.lang import parse_pattern
from repro.patterns import generate_patterns
from repro.server import (
    ReproServer,
    WorkerPool,
    load_service,
    load_session,
    save_snapshot,
)
from repro.transform import (
    EXPERIMENT_PATTERNS,
    biomedt,
    dblp2sigm,
    dblp2sigmx,
    map_pattern,
    wsuc2alch,
)

_DATASETS = {
    "dblp": generate_dblp,
    "dblp-small": generate_dblp_small,
    # Scale tiers of the power-law DBLP-like generator (~edge counts;
    # see repro.datasets.scale and benchmarks/bench_scale.py).
    "dblp-scale-1e5": lambda seed=0: generate_dblp_scale(10**5, seed=seed),
    "dblp-scale-1e6": lambda seed=0: generate_dblp_scale(10**6, seed=seed),
    "wsu": generate_wsu,
    "biomed": generate_biomed_small,
    "mas": generate_mas,
}

_MAPPINGS = {
    "dblp2sigm": dblp2sigm,
    "dblp2sigmx": dblp2sigmx,
    "wsuc2alch": wsuc2alch,
    "biomedt": biomedt,
}

_MAPPING_SPECS = {
    "dblp2sigm": "DBLP2SIGM",
    "dblp2sigmx": "DBLP2SIGM",
    "wsuc2alch": "WSUC2ALCH",
    "biomedt": "BioMedT",
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Structurally robust graph similarity search (RelSim).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize a dataset")
    generate.add_argument("--dataset", choices=sorted(_DATASETS), required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output JSON path")

    stats = sub.add_parser("stats", help="describe a database")
    stats.add_argument(
        "database", nargs="?", default=None, help="JSON database path"
    )
    stats.add_argument(
        "--snapshot",
        default=None,
        help="describe a serving snapshot file instead of a JSON database",
    )
    stats.add_argument(
        "--live",
        action="store_true",
        help="build a serving service and report engine cache_info and "
        "delta_stats counters",
    )
    _add_memory_budget_flag(stats)
    _add_delta_flags(stats)

    query = sub.add_parser("query", help="similarity search")
    query.add_argument("database")
    query.add_argument(
        "--pattern",
        default=None,
        help="RRE pattern (required for pattern-based algorithms)",
    )
    query.add_argument("--node", required=True, help="query node id")
    query.add_argument("--top", type=int, default=10)
    query.add_argument(
        "--algorithm",
        choices=available_algorithms(),
        default="relsim",
        help="registered algorithm to answer with",
    )
    query.add_argument(
        "--expand",
        action="store_true",
        help="run Algorithm 1 on the simple pattern first (RelSim)",
    )
    query.add_argument(
        "--max-expand",
        type=int,
        default=16,
        help="pattern budget for --expand",
    )
    query.add_argument(
        "--scoring", choices=("pathsim", "count", "cosine"), default="pathsim"
    )
    query.add_argument(
        "--answer-type", default=None, help="restrict answers to a node type"
    )

    serve = sub.add_parser(
        "serve",
        help="HTTP/JSON similarity server (coalescing, live updates, "
        "snapshots)",
    )
    serve.add_argument(
        "database",
        nargs="?",
        default=None,
        help="JSON database path (optional when --snapshot names an "
        "existing snapshot to warm-start from)",
    )
    _add_serving_flags(serve, threads=4)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321, help="0 picks a free port"
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        help="warm-start from this snapshot file when it exists, and "
        "checkpoint back to it after every successful /apply",
    )
    serve.add_argument(
        "--window",
        type=float,
        default=2.0,
        help="request-coalescing window in milliseconds",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="beyond this many in-flight requests the server answers 503",
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="serve each /query as its own run() call (the serial "
        "baseline)",
    )

    watch = sub.add_parser(
        "watch",
        help="follow a standing query's top-k over SSE (POST /subscribe)",
    )
    watch.add_argument(
        "url", help="server base URL, e.g. http://127.0.0.1:8321"
    )
    watch.add_argument("--node", required=True, help="query node to watch")
    watch.add_argument(
        "--top",
        type=int,
        default=None,
        help="ranking size (default: the server's prepared top_k)",
    )
    watch.add_argument(
        "--max-events",
        type=int,
        default=None,
        help="exit after this many events (default: until disconnect)",
    )
    watch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="socket timeout in seconds (default: wait forever)",
    )
    watch.add_argument(
        "--json",
        action="store_true",
        help="print one JSON object per event instead of text lines",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="prepared-query serving micro-benchmark (per-call vs "
        "prepared vs threaded)",
    )
    serve_bench.add_argument("database")
    serve_bench.add_argument("--queries", type=int, default=30)
    _add_serving_flags(serve_bench, threads=8)
    serve_bench.add_argument(
        "--node-type",
        default=None,
        help="query node type (default: the most common type)",
    )

    explain = sub.add_parser(
        "explain", help="show the compiled evaluation plan for patterns"
    )
    explain.add_argument("database")
    explain.add_argument(
        "--pattern",
        action="append",
        required=True,
        dest="patterns",
        help="RRE pattern (repeat for a set)",
    )
    explain.add_argument(
        "--expand",
        action="store_true",
        help="run Algorithm 1 on the (single) simple pattern first",
    )
    explain.add_argument(
        "--max-expand",
        type=int,
        default=16,
        help="pattern budget for --expand",
    )
    _add_delta_flags(explain)

    check = sub.add_parser(
        "check", help="static type-check patterns against a database schema"
    )
    check.add_argument("database")
    check.add_argument(
        "--pattern",
        action="append",
        required=True,
        dest="patterns",
        help="RRE pattern (repeat for a set)",
    )
    check.add_argument(
        "--expand",
        action="store_true",
        help="run Algorithm 1 on the (single) simple pattern first",
    )
    check.add_argument(
        "--max-expand",
        type=int,
        default=16,
        help="pattern budget for --expand",
    )
    check.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable diagnostics (one JSON object)",
    )
    check.add_argument(
        "--density-budget",
        type=float,
        default=0.25,
        help="warn when estimated result density exceeds this fraction",
    )

    transform = sub.add_parser("transform", help="apply a catalog mapping")
    transform.add_argument("database")
    transform.add_argument("--mapping", choices=sorted(_MAPPINGS), required=True)
    transform.add_argument("--out", required=True)

    patterns = sub.add_parser(
        "patterns", help="run Algorithm 1 on a simple pattern"
    )
    patterns.add_argument("database")
    patterns.add_argument("--pattern", required=True)
    patterns.add_argument("--max", type=int, default=16)
    patterns.add_argument(
        "--no-filters",
        action="store_true",
        help="disable the Section-6 optimizations",
    )

    robustness = sub.add_parser(
        "robustness", help="mini robustness experiment (Table-1 style)"
    )
    robustness.add_argument("--dataset", choices=sorted(_DATASETS), default="dblp-small")
    robustness.add_argument("--mapping", choices=sorted(_MAPPINGS), default="dblp2sigm")
    robustness.add_argument("--queries", type=int, default=20)
    robustness.add_argument("--seed", type=int, default=0)
    return parser


def _add_serving_flags(parser, threads):
    """The flags every serving command shares.

    ``serve`` and ``serve-bench`` answer the same prepared query —
    algorithm, pattern, Algorithm-1 expansion, scoring, cutoff, worker
    threads, and a pre-serve edge delta — so the flags live in one
    place and the two commands cannot drift apart.
    """
    parser.add_argument(
        "--pattern",
        default=None,
        help="RRE pattern (required for pattern-based algorithms)",
    )
    parser.add_argument(
        "--algorithm",
        choices=available_algorithms(),
        default="relsim",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--threads", type=int, default=threads)
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process workers serving over shared-memory snapshots "
        "(0 = in-process threads only)",
    )
    parser.add_argument(
        "--expand",
        action="store_true",
        help="run Algorithm 1 on the simple pattern (RelSim)",
    )
    parser.add_argument("--max-expand", type=int, default=16)
    parser.add_argument(
        "--scoring", choices=("pathsim", "count", "cosine"), default="pathsim"
    )
    _add_memory_budget_flag(parser)
    _add_delta_flags(parser)


def _add_memory_budget_flag(parser):
    parser.add_argument(
        "--memory-budget",
        default=None,
        metavar="BYTES[K|M|G]",
        help="byte budget for the engine's matrix cache (evict/spill/"
        "stream instead of growing unbounded); applies when building "
        "from a JSON database, e.g. 256M",
    )


def _parse_bytes(text):
    """``'512M'`` / ``'2G'`` / ``'65536'`` -> int bytes (None passes)."""
    if text is None:
        return None
    value = str(text).strip()
    suffixes = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    scale = 1
    if value and value[-1].lower() in suffixes:
        scale = suffixes[value[-1].lower()]
        value = value[:-1]
    try:
        amount = float(value)
    except ValueError:
        raise EvaluationError(
            "--memory-budget takes bytes with an optional K/M/G suffix "
            "(got {!r})".format(text)
        )
    result = int(amount * scale)
    if result < 1:
        raise EvaluationError(
            "--memory-budget must come to >= 1 byte (got {!r})".format(text)
        )
    return result


def _budget_options(args):
    """Session keywords from ``--memory-budget`` (absent flag = none)."""
    budget = _parse_bytes(getattr(args, "memory_budget", None))
    return {} if budget is None else {"memory_budget": budget}


def _add_delta_flags(parser):
    """``--add-edge``/``--remove-edge`` — serve from a post-delta snapshot."""
    parser.add_argument(
        "--add-edge",
        action="append",
        default=[],
        dest="add_edges",
        metavar="SRC,LABEL,TGT",
        help="apply this edge delta (incrementally) before serving; repeat "
        "for a batch",
    )
    parser.add_argument(
        "--remove-edge",
        action="append",
        default=[],
        dest="remove_edges",
        metavar="SRC,LABEL,TGT",
        help="remove this edge (incrementally) before serving; repeat for "
        "a batch",
    )


def _parse_edge_flag(text):
    parts = [part.strip() for part in text.split(",")]
    if len(parts) != 3 or not all(parts):
        raise EvaluationError(
            "edge flags take SRC,LABEL,TGT (got {!r})".format(text)
        )
    return tuple(parts)


def _apply_delta_args(database, args, out):
    """Route CLI edge deltas through a service's incremental apply.

    Returns the post-delta serving session (or a plain session when no
    delta flags were given) so every serving command runs on exactly
    what a live service would serve after ``apply()``.
    """
    added = [_parse_edge_flag(text) for text in args.add_edges]
    removed = [_parse_edge_flag(text) for text in args.remove_edges]
    options = _budget_options(args)
    if not added and not removed:
        return SimilaritySession(database, **options)
    service = SimilarityService(database, copy=False, **options)
    start = time.perf_counter()
    version = service.apply(edges_added=added, edges_removed=removed)
    elapsed = time.perf_counter() - start
    stats = service.delta_stats
    print(
        "applied delta (+{} / -{} edges) via {} path in {:.1f} ms "
        "(snapshot version {})".format(
            len(added),
            len(removed),
            stats["last_path"],
            1000.0 * elapsed,
            version,
        ),
        file=out,
    )
    return service.session


def _cmd_generate(args, out):
    bundle = _DATASETS[args.dataset](seed=args.seed)
    save_json(bundle.database, args.out)
    print(
        "wrote {} ({} nodes, {} edges)".format(
            args.out,
            bundle.database.num_nodes(),
            bundle.database.num_edges(),
        ),
        file=out,
    )
    return 0


def _cmd_stats(args, out):
    if args.database is None and args.snapshot is None:
        raise EvaluationError("stats needs a database path or --snapshot")
    added = [_parse_edge_flag(text) for text in args.add_edges]
    removed = [_parse_edge_flag(text) for text in args.remove_edges]
    if (added or removed) and not args.live:
        raise EvaluationError("edge delta flags require stats --live")
    if not args.live:
        if args.snapshot is not None:
            session, info = load_session(args.snapshot)
            _print_snapshot_info(args.snapshot, info, out)
            database, name = session.database, args.snapshot
        else:
            database, name = load_json(args.database), args.database
        print(summarize(database, name=name), file=out)
        return 0
    if args.snapshot is not None:
        service, info = load_service(args.snapshot)
        _print_snapshot_info(args.snapshot, info, out)
        name = args.snapshot
    else:
        service = SimilarityService(
            load_json(args.database), copy=False, **_budget_options(args)
        )
        name = args.database
    if added or removed:
        service.apply(edges_added=added, edges_removed=removed)
    print(summarize(service.database, name=name), file=out)
    print("serving (version {}):".format(service.version), file=out)
    print("  cache_info:", file=out)
    for key, value in sorted(service.session.cache_info().items()):
        print("    {:<14s} {}".format(key, value), file=out)
    print("  delta_stats:", file=out)
    for key, value in sorted(service.delta_stats.items()):
        print("    {:<14s} {}".format(key, value), file=out)
    last_error = service.last_error
    if last_error is not None:
        print("  last_error: {}".format(last_error["message"]), file=out)
    return 0


def _print_snapshot_info(path, info, out):
    print(
        "serving snapshot {}: {} matrices, {} diagonals, {} column norms "
        "preloaded ({} skipped)".format(
            path,
            info["matrices"],
            info["diagonals"],
            info["column_norms"],
            info["skipped"],
        ),
        file=out,
    )


def _algorithm_options(algorithm, pattern, scoring=None, answer_type=None):
    """Map CLI flags onto the constructor keywords ``algorithm`` takes."""
    parameters = algorithm_parameters(algorithm)
    takes_pattern = "pattern" in parameters or "patterns" in parameters
    if takes_pattern and pattern is None:
        raise EvaluationError(
            "algorithm {!r} needs --pattern".format(algorithm)
        )
    if not takes_pattern and pattern is not None:
        hint = "pattern-{}".format(algorithm)
        raise EvaluationError(
            "algorithm {!r} does not take --pattern{}".format(
                algorithm,
                " (did you mean --algorithm {}?)".format(hint)
                if hint in available_algorithms()
                else "",
            )
        )
    options = {}
    if takes_pattern:
        options["pattern"] = parse_pattern(pattern)
    if scoring is not None and "scoring" in parameters:
        options["scoring"] = scoring
    if answer_type is not None and "answer_type" in parameters:
        options["answer_type"] = answer_type
    return options


def _cmd_query(args, out):
    database = load_json(args.database)
    session = SimilaritySession(database)
    options = _algorithm_options(
        args.algorithm,
        args.pattern,
        scoring=args.scoring,
        answer_type=args.answer_type,
    )
    builder = session.query(args.node).using(args.algorithm, **options)
    if args.expand:
        builder.expand_patterns(max_patterns=args.max_expand)
    ranking = builder.rank(top_k=args.top)
    patterns_used = builder.patterns_used if args.expand else None
    if patterns_used:
        print(
            "{} over {} pattern{}:".format(
                args.algorithm,
                len(patterns_used),
                "" if len(patterns_used) == 1 else "s",
            ),
            file=out,
        )
        for pattern in patterns_used:
            print("  {}".format(pattern), file=out)
    for position, (node, score) in enumerate(ranking.items(), start=1):
        print("{:>3}. {:<30s} {:.6f}".format(position, node, score), file=out)
    if not len(ranking):
        print("(no similar nodes found)", file=out)
    return 0


def _cmd_explain(args, out):
    database = load_json(args.database)
    session = _apply_delta_args(database, args, out)
    patterns = [parse_pattern(text) for text in args.patterns]
    if args.expand:
        if len(patterns) != 1:
            raise EvaluationError(
                "--expand runs Algorithm 1 on one simple pattern; got "
                "{}".format(len(patterns))
            )
        generated = generate_patterns(
            patterns[0],
            database.schema.constraints,
            max_patterns=args.max_expand,
        )
        patterns = list(generated.patterns)
    print(session.explain(patterns), file=out)
    return 0


def _cmd_check(args, out):
    """``repro check``: static pattern diagnostics, exit 1 on errors.

    Runs the schema-aware type checker over the pattern set (after
    Algorithm-1 expansion when ``--expand`` is given) and prints every
    diagnostic with its source span — nothing is evaluated, so this is
    safe to run in CI against production pattern corpora.
    """
    import json as json_module

    from repro.analysis import PatternTypeChecker
    from repro.lang.matrix_semantics import ViewStats

    database = load_json(args.database)
    session = SimilaritySession(database)
    patterns = [parse_pattern(text) for text in args.patterns]
    if args.expand:
        if len(patterns) != 1:
            raise EvaluationError(
                "--expand runs Algorithm 1 on one simple pattern; got "
                "{}".format(len(patterns))
            )
        generated = generate_patterns(
            patterns[0],
            database.schema.constraints,
            max_patterns=args.max_expand,
        )
        patterns = list(generated.patterns)
    checker = PatternTypeChecker(
        database.schema,
        stats=ViewStats(session.view),
        density_budget=args.density_budget,
    )
    results = checker.check_many(patterns)
    errors = warnings = 0
    if args.as_json:
        report = []
        for pattern, diagnostics in results:
            errors += sum(d.is_error for d in diagnostics)
            warnings += sum(not d.is_error for d in diagnostics)
            report.append(
                {
                    "pattern": str(pattern),
                    "ok": not any(d.is_error for d in diagnostics),
                    "diagnostics": [d.to_dict() for d in diagnostics],
                }
            )
        print(
            json_module.dumps(
                {
                    "patterns": report,
                    "errors": errors,
                    "warnings": warnings,
                },
                indent=2,
            ),
            file=out,
        )
    else:
        for position, (pattern, diagnostics) in enumerate(results, start=1):
            pattern_errors = sum(d.is_error for d in diagnostics)
            errors += pattern_errors
            warnings += len(diagnostics) - pattern_errors
            if not diagnostics:
                endpoints = checker.endpoints(pattern)
                print(
                    "[{}] {}: ok (endpoints {})".format(
                        position, pattern, endpoints.describe()
                    ),
                    file=out,
                )
                continue
            print(
                "[{}] {}: {} error{}, {} warning{}".format(
                    position,
                    pattern,
                    pattern_errors,
                    "" if pattern_errors == 1 else "s",
                    len(diagnostics) - pattern_errors,
                    "" if len(diagnostics) - pattern_errors == 1 else "s",
                ),
                file=out,
            )
            for diagnostic in diagnostics:
                report = diagnostic.format(caret=True)
                for line in report.splitlines():
                    print("    {}".format(line), file=out)
        print(
            "checked {} pattern{}: {} error{}, {} warning{}".format(
                len(results),
                "" if len(results) == 1 else "s",
                errors,
                "" if errors == 1 else "s",
                warnings,
                "" if warnings == 1 else "s",
            ),
            file=out,
        )
    return 1 if errors else 0


def _serving_service(args, out):
    """The service ``repro serve`` will publish, warm when possible.

    An existing ``--snapshot`` file wins (warm start: the engine cache
    is preloaded from disk, preparation is pure hits); otherwise the
    positional database is loaded cold.  Edge delta flags are applied
    through the service's incremental path either way, so the first
    served snapshot is exactly what a live ``/apply`` would have
    produced.
    """
    if args.snapshot is not None and os.path.exists(args.snapshot):
        start = time.perf_counter()
        service, info = load_service(args.snapshot)
        print(
            "warm start from {} in {:.1f} ms ({} matrices, {} diagonals, "
            "{} skipped)".format(
                args.snapshot,
                1000.0 * (time.perf_counter() - start),
                info["matrices"],
                info["diagonals"],
                info["skipped"],
            ),
            file=out,
        )
    elif args.database is not None:
        service = SimilarityService(
            load_json(args.database), copy=False, **_budget_options(args)
        )
    else:
        raise EvaluationError(
            "serve needs a database path or an existing --snapshot file"
        )
    added = [_parse_edge_flag(text) for text in args.add_edges]
    removed = [_parse_edge_flag(text) for text in args.remove_edges]
    if added or removed:
        version = service.apply(edges_added=added, edges_removed=removed)
        print(
            "applied delta (+{} / -{} edges) via {} path (snapshot "
            "version {})".format(
                len(added),
                len(removed),
                service.delta_stats["last_path"],
                version,
            ),
            file=out,
        )
    return service


def _cmd_serve(args, out):
    service = _serving_service(args, out)
    options = _algorithm_options(
        args.algorithm, args.pattern, scoring=args.scoring
    )
    expand = {"max_patterns": args.max_expand} if args.expand else None
    prepared = service.prepare(
        algorithm=args.algorithm, top_k=args.top, expand=expand, **options
    )
    server = ReproServer(
        service,
        prepared,
        host=args.host,
        port=args.port,
        coalesce=not args.no_coalesce,
        coalesce_window=args.window / 1000.0,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        threads=args.threads,
        workers=args.workers,
        snapshot_path=args.snapshot,
    )
    if args.snapshot is not None and not os.path.exists(args.snapshot):
        stats = save_snapshot(args.snapshot, service)
        print(
            "wrote initial snapshot {} ({} matrices, {} bytes)".format(
                args.snapshot, stats["matrices"], stats["bytes"]
            ),
            file=out,
        )
    server.serve_forever()
    return 0


def _print_sse_event(name, data, as_json, out):
    import json

    if as_json:
        try:
            payload = json.loads(data) if data else None
        except ValueError:
            payload = data
        print(json.dumps({"event": name, "data": payload}), file=out, flush=True)
        return
    try:
        payload = json.loads(data)
    except ValueError:
        print("{}: {}".format(name, data), file=out, flush=True)
        return
    if name in ("snapshot", "update") and isinstance(payload, dict):
        ranking = " ".join(
            "{}={:.4f}".format(node, score)
            for node, score in payload.get("ranking", [])
        )
        changes = []
        for sign, key in (("+", "entered"), ("-", "left"), ("~", "reordered")):
            nodes = payload.get(key)
            if name == "update" and nodes:
                changes.append(sign + ",".join(nodes))
        suffix = " ({})".format(" ".join(changes)) if changes else ""
        print(
            "{} v{}{}: {}".format(
                name, payload.get("version"), suffix, ranking or "(empty)"
            ),
            file=out,
            flush=True,
        )
    else:
        print("{}: {}".format(name, data), file=out, flush=True)


def _cmd_watch(args, out):
    """Stream a standing query's events to stdout, one line per event."""
    import http.client
    import json
    from urllib.parse import urlsplit

    parts = urlsplit(args.url if "//" in args.url else "//" + args.url)
    if not parts.hostname:
        raise EvaluationError(
            "watch needs a server URL like http://127.0.0.1:8321, got "
            "{!r}".format(args.url)
        )
    body = {"node": args.node}
    if args.top is not None:
        body["top_k"] = args.top
    connection = http.client.HTTPConnection(
        parts.hostname, parts.port or 80, timeout=args.timeout
    )
    try:
        connection.request(
            "POST",
            "/subscribe",
            body=json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        if response.status != 200:
            detail = response.read().decode("utf-8", "replace")
            print(
                "error: server answered {}: {}".format(
                    response.status, detail
                ),
                file=sys.stderr,
            )
            return 2
        seen = 0
        name = None
        data = []
        while args.max_events is None or seen < args.max_events:
            try:
                raw = response.readline()
            except (TimeoutError, OSError):
                break
            if not raw:
                break  # server closed the stream
            line = raw.decode("utf-8", "replace").rstrip("\r\n")
            if line.startswith("event:"):
                name = line[len("event:"):].strip()
            elif line.startswith("data:"):
                data.append(line[len("data:"):].strip())
            elif not line and (name is not None or data):
                # Blank line terminates one SSE frame.
                _print_sse_event(name or "message", "".join(data), args.json, out)
                seen += 1
                name = None
                data = []
        return 0
    finally:
        connection.close()


def _cmd_serve_bench(args, out):
    database = load_json(args.database)
    session = _apply_delta_args(database, args, out)
    database = session.database
    node_type = args.node_type
    if node_type is None:
        histogram = {}
        for node in database.nodes():
            kind = database.node_type(node)
            if kind is not None:
                histogram[kind] = histogram.get(kind, 0) + 1
        if not histogram:
            raise EvaluationError(
                "database has no typed nodes; pass --node-type"
            )
        node_type = max(sorted(histogram), key=histogram.get)
    queries = sample_queries_by_degree(
        database, node_type, args.queries, seed=0
    )
    if not queries:
        raise EvaluationError(
            "no nodes of type {!r} to query".format(node_type)
        )
    options = _algorithm_options(
        args.algorithm, args.pattern, scoring=args.scoring
    )
    expand = {"max_patterns": args.max_expand} if args.expand else None

    def per_call(node):
        builder = session.query(node).using(args.algorithm, **options)
        if expand is not None:
            builder.expand_patterns(max_patterns=args.max_expand)
        return builder.top(args.top)

    per_call(queries[0])  # warm matrices so both paths start hot
    start = time.perf_counter()
    baseline = {node: per_call(node) for node in queries}
    per_call_seconds = time.perf_counter() - start

    prepared = session.prepare(
        algorithm=args.algorithm, top_k=args.top, expand=expand, **options
    )
    prepared.run(queries[0])
    start = time.perf_counter()
    served = {node: prepared.run(node) for node in queries}
    prepared_seconds = time.perf_counter() - start

    identical = all(
        served[node].items() == baseline[node].items() for node in queries
    )

    with ThreadPoolExecutor(max_workers=args.threads) as pool:
        start = time.perf_counter()
        threaded = dict(zip(queries, pool.map(prepared.run, queries)))
        threaded_seconds = time.perf_counter() - start
    identical = identical and all(
        threaded[node].items() == baseline[node].items() for node in queries
    )

    worker_seconds = None
    if args.workers > 0:
        worker_pool = WorkerPool(
            prepared.export_spec(), session, workers=args.workers
        )
        try:
            worker_pool.run(queries[0])  # warm the dispatch path
            with ThreadPoolExecutor(max_workers=args.workers) as dispatch:
                start = time.perf_counter()
                process_served = dict(
                    zip(queries, dispatch.map(worker_pool.run, queries))
                )
                worker_seconds = time.perf_counter() - start
            identical = identical and all(
                process_served[node].items() == baseline[node].items()
                for node in queries
            )
        finally:
            worker_pool.shutdown()

    count = len(queries)
    print(
        "serving benchmark: {} x {} queries of type {!r} (top {})".format(
            args.algorithm, count, node_type, args.top
        ),
        file=out,
    )
    print(
        "  per-call session.query : {:8.2f} ms/query".format(
             1000.0 * per_call_seconds / count
        ),
        file=out,
    )
    print(
        "  prepared.run           : {:8.2f} ms/query  ({:.1f}x)".format(
            1000.0 * prepared_seconds / count,
            per_call_seconds / max(prepared_seconds, 1e-9),
        ),
        file=out,
    )
    print(
        "  {} threads, prepared   : {:8.2f} ms/query wall "
        "({:.0f} queries/s)".format(
            args.threads,
            1000.0 * threaded_seconds / count,
            count / max(threaded_seconds, 1e-9),
        ),
        file=out,
    )
    if worker_seconds is not None:
        print(
            "  {} workers, processes  : {:8.2f} ms/query wall "
            "({:.0f} queries/s)".format(
                args.workers,
                1000.0 * worker_seconds / count,
                count / max(worker_seconds, 1e-9),
            ),
            file=out,
        )
    print(
        "  results identical      : {}".format("yes" if identical else "NO"),
        file=out,
    )
    return 0 if identical else 1


def _cmd_transform(args, out):
    database = load_json(args.database)
    mapping = _MAPPINGS[args.mapping]()
    transformed = mapping.apply(database)
    save_json(transformed, args.out)
    print(
        "applied {}: {} -> {} ({} nodes, {} edges)".format(
            mapping.name,
            args.database,
            args.out,
            transformed.num_nodes(),
            transformed.num_edges(),
        ),
        file=out,
    )
    return 0


def _cmd_patterns(args, out):
    database = load_json(args.database)
    result = generate_patterns(
        args.pattern,
        database.schema.constraints,
        use_filters=not args.no_filters,
        max_patterns=args.max,
    )
    print(
        "E_p ({} patterns, {} constraints used{}):".format(
            len(result),
            result.constraints_used,
            ", truncated" if result.truncated else "",
        ),
        file=out,
    )
    for pattern in result:
        print("  {}".format(pattern), file=out)
    return 0


def _cmd_robustness(args, out):
    bundle = _DATASETS[args.dataset](seed=args.seed)
    database = bundle.database
    mapping = _MAPPINGS[args.mapping]()
    spec = EXPERIMENT_PATTERNS[_MAPPING_SPECS[args.mapping]]
    variant = mapping.apply(database)
    p_src = parse_pattern(spec["relsim_source"])
    p_tgt = map_pattern(mapping, p_src)
    queries = sample_queries_by_degree(
        database, spec["query_type"], args.queries, seed=args.seed
    )
    # Asymmetric relationships (e.g. disease -> drug) need a scoring
    # whose denominator is not a round-trip count; see RelSim docs.
    asymmetric = spec["answer_type"] != spec["query_type"]
    scoring = "cosine" if asymmetric else "pathsim"
    answer_type = spec["answer_type"] if asymmetric else None
    # One session per variant: RelSim and PathSim on the same side share
    # every commuting matrix they touch.
    experiment = RobustnessExperiment(
        database,
        variant,
        {
            "RelSim": (
                lambda s: s.algorithm(
                    "relsim", pattern=p_src, scoring=scoring,
                    answer_type=answer_type,
                ),
                lambda s: s.algorithm(
                    "relsim", pattern=p_tgt, scoring=scoring,
                    answer_type=answer_type,
                ),
            ),
            "PathSim": (
                lambda s: s.algorithm(
                    "pathsim", pattern=spec["pathsim_source"],
                    answer_type=answer_type,
                ),
                lambda s: s.algorithm(
                    "pathsim", pattern=spec["pathsim_target"],
                    answer_type=answer_type,
                ),
            ),
            "RWR": (
                lambda s: s.algorithm("rwr", answer_type=answer_type),
                lambda s: s.algorithm("rwr", answer_type=answer_type),
            ),
        },
        queries=queries,
        sessions=(
            SimilaritySession(database),
            SimilaritySession(variant),
        ),
        transformation_name=mapping.name,
    )
    print(robustness_table([experiment.run()]), file=out)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "check": _cmd_check,
    "serve": _cmd_serve,
    "serve-bench": _cmd_serve_bench,
    "watch": _cmd_watch,
    "transform": _cmd_transform,
    "patterns": _cmd_patterns,
    "robustness": _cmd_robustness,
}


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
