"""Premise graphs of constraints (Section 5 of the paper).

The premise graph ``G_pre(gamma)`` of a constraint ``gamma`` is a directed
graph whose nodes are the premise variables and whose edges carry the RPQ
pattern between each pair of variables.  Composite atoms — whose pattern
is a concatenation — are first normalized apart with fresh variables, as
the paper prescribes.

Algorithm 2 traverses premise graphs, so this module also provides the
traversal primitives: acyclicity checking, path finding between two
variables, and the branch decomposition used to build nested patterns.
"""

from collections import defaultdict

from repro.exceptions import CyclicPremiseError
from repro.lang.ast import Concat, Label, Reverse, concat


def normalize_atoms(atoms):
    """Split concatenated atom patterns apart using fresh variables.

    ``(x, a.b, y)`` becomes ``(x, a, f0) & (f0, b, y)``.  Reverse of a
    concatenation is pushed inward first so that every resulting edge
    carries a single (possibly reversed) label or other atomic RPQ.
    """
    result = []
    counter = [0]

    def fresh():
        counter[0] += 1
        return "_f{}".format(counter[0])

    def split(source, pattern, target):
        if isinstance(pattern, Reverse) and isinstance(
            pattern.operand, Concat
        ):
            split(target, pattern.operand, source)
            return
        if isinstance(pattern, Concat):
            current = source
            parts = pattern.parts
            for i, part in enumerate(parts):
                nxt = target if i == len(parts) - 1 else fresh()
                split(current, part, nxt)
                current = nxt
            return
        result.append((source, pattern, target))

    for atom in atoms:
        split(atom.source, atom.pattern, atom.target)
    return result


class PremiseGraph:
    """The premise graph of a tgd, with traversal helpers.

    Edges are stored as ``(source_var, pattern, target_var)`` triples with
    a stable integer id so traversals can mark edges visited.
    """

    def __init__(self, tgd):
        self.tgd = tgd
        self._edges = []
        self._adjacent = defaultdict(list)  # var -> [(edge_id, other, fwd)]
        for source, pattern, target in normalize_atoms(tgd.premise):
            edge_id = len(self._edges)
            self._edges.append((source, pattern, target))
            self._adjacent[source].append((edge_id, target, True))
            self._adjacent[target].append((edge_id, source, False))

    @property
    def variables(self):
        return set(self._adjacent)

    @property
    def edges(self):
        return list(self._edges)

    def degree(self, variable):
        return len(self._adjacent[variable])

    def neighbors(self, variable):
        """``[(edge_id, other_variable, forward?)]`` around ``variable``."""
        return list(self._adjacent[variable])

    def edge_pattern(self, edge_id, forward):
        """The pattern of an edge when traversed in a given direction."""
        _, pattern, _ = self._edges[edge_id]
        return pattern if forward else pattern.reverse()

    # ------------------------------------------------------------------
    # Structure checks
    # ------------------------------------------------------------------
    def is_acyclic(self):
        """True when the underlying undirected graph has no cycle.

        Parallel edges between the same pair of variables count as a
        cycle, matching the paper's definition via the multigraph
        ``G_gamma``.
        """
        parent = {v: v for v in self._adjacent}

        def find(v):
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        for source, _, target in self._edges:
            if source == target:
                return False
            root_s, root_t = find(source), find(target)
            if root_s == root_t:
                return False
            parent[root_s] = root_t
        return True

    def require_acyclic(self):
        if not self.is_acyclic():
            raise CyclicPremiseError(self.tgd)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def find_path(self, start, goal):
        """The unique undirected path between two variables (acyclic graph).

        Returns a list of ``(edge_id, forward)`` steps, or ``None`` when
        the variables are disconnected.  ``start == goal`` yields ``[]``.
        """
        if start not in self._adjacent or goal not in self._adjacent:
            return None
        if start == goal:
            return []
        visited = {start}
        stack = [(start, [])]
        while stack:
            variable, path = stack.pop()
            for edge_id, other, forward in self._adjacent[variable]:
                if other in visited:
                    continue
                next_path = path + [(edge_id, forward)]
                if other == goal:
                    return next_path
                visited.add(other)
                stack.append((other, next_path))
        return None

    def path_pattern(self, steps):
        """Concatenate the step patterns of a traversal into one RRE."""
        return concat(*[self.edge_pattern(e, fwd) for e, fwd in steps])

    def match_simple_pattern(self, steps):
        """All ``(start_var, end_var)`` pairs whose premise-graph path
        spells exactly the given simple-pattern steps.

        Parameters
        ----------
        steps:
            ``[(label, reversed), ...]`` as produced by
            :func:`repro.lang.ast.simple_steps`.

        Only single-label premise edges participate; an edge traversed
        forward matches ``(label, False)`` and backward ``(label, True)``
        (and symmetrically for premise edges that are reversed labels).
        """
        matches = []
        for variable in self._adjacent:
            for end, _path in self.walk_matches(variable, steps):
                matches.append((variable, end))
        return matches

    def walk_matches(self, start, steps):
        """DFS yielding ``(end_var, [(edge_id, fwd)])`` spelling ``steps``."""
        results = []

        def step_matches(edge_id, forward, wanted_label, wanted_reversed):
            pattern = self.edge_pattern(edge_id, forward)
            if isinstance(pattern, Label):
                return pattern.name == wanted_label and not wanted_reversed
            if isinstance(pattern, Reverse) and isinstance(
                pattern.operand, Label
            ):
                return (
                    pattern.operand.name == wanted_label and wanted_reversed
                )
            return False

        def walk(variable, index, used, path):
            if index == len(steps):
                results.append((variable, list(path)))
                return
            wanted_label, wanted_reversed = steps[index]
            for edge_id, other, forward in self._adjacent[variable]:
                if edge_id in used:
                    continue
                if step_matches(edge_id, forward, wanted_label, wanted_reversed):
                    used.add(edge_id)
                    path.append((edge_id, forward))
                    walk(other, index + 1, used, path)
                    path.pop()
                    used.discard(edge_id)

        walk(start, 0, set(), [])
        return results

    def __repr__(self):
        return "PremiseGraph(variables={}, edges={})".format(
            len(self._adjacent), len(self._edges)
        )
