"""Evaluating RPQs, conjunctive RPQs, and constraint satisfaction.

The paper evaluates premises of tgds — conjunctive RPQs — over a graph
database.  Two layers:

* :func:`rpq_pairs` — the binary relation ``[[p]]_D`` for a single RPQ
  (boolean reachability; Kleene star handled by transitive-closure
  fixpoint, which always terminates, unlike counting semantics).
* :func:`match_conjunctive` — all premise matches of a set of atoms, via
  hash joins over the atom relations, optionally seeded with an initial
  partial binding.

On top of those, :func:`satisfies` checks ``D |= tgd`` (and egds).
"""

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConstraintError
from repro.graph.matrices import MatrixView, boolean
from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Reverse,
    Skip,
    Star,
    Union,
)


def rpq_boolean_matrix(view, pattern):
    """The 0/1 reachability matrix of ``pattern`` over a matrix view.

    Works for the full RRE syntax: skip is already boolean, nested
    projects onto the diagonal, and star is a transitive-closure fixpoint
    (terminates on any graph because the matrices are boolean).
    """
    if isinstance(pattern, Epsilon):
        return view.identity()
    if isinstance(pattern, Label):
        return boolean(view.adjacency(pattern.name))
    if isinstance(pattern, Reverse):
        return rpq_boolean_matrix(view, pattern.operand).T.tocsr()
    if isinstance(pattern, Concat):
        product = rpq_boolean_matrix(view, pattern.parts[0])
        for part in pattern.parts[1:]:
            product = boolean(product @ rpq_boolean_matrix(view, part))
        return product
    if isinstance(pattern, Union):
        total = rpq_boolean_matrix(view, pattern.parts[0])
        for part in pattern.parts[1:]:
            total = boolean(total + rpq_boolean_matrix(view, part))
        return total
    if isinstance(pattern, Skip):
        return rpq_boolean_matrix(view, pattern.operand)
    if isinstance(pattern, Nested):
        inner = rpq_boolean_matrix(view, pattern.operand).tocsr()
        # A row has an outgoing match iff its CSR indptr range is
        # nonempty; every producer above runs through boolean() (which
        # eliminates explicit zeros), so stored-nonzero == nonzero.
        # Builds the diagonal with one nonzero per supported row instead
        # of densifying an n-vector via max(axis=1).toarray().
        support = np.flatnonzero(np.diff(inner.indptr))
        return sp.csr_matrix(
            (np.ones(support.size), (support, support)),
            shape=inner.shape,
        )
    if isinstance(pattern, Conj):
        product = rpq_boolean_matrix(view, pattern.parts[0])
        for part in pattern.parts[1:]:
            product = product.multiply(rpq_boolean_matrix(view, part))
        return boolean(product)
    if isinstance(pattern, Star):
        base = rpq_boolean_matrix(view, pattern.operand)
        closure = boolean(view.identity() + base)
        while True:
            squared = boolean(closure @ closure)
            if squared.nnz == closure.nnz and (squared != closure).nnz == 0:
                return closure
            closure = squared
    raise TypeError("unhandled pattern node {!r}".format(pattern))


def rpq_pairs(database_or_view, pattern):
    """``[[pattern]]_D`` as a set of ``(u, v)`` node-id pairs."""
    view = _as_view(database_or_view)
    matrix = rpq_boolean_matrix(view, pattern).tocoo()
    indexer = view.indexer
    return {
        (indexer.node_at(i), indexer.node_at(j))
        for i, j in zip(matrix.row, matrix.col)
    }


def _as_view(database_or_view):
    if isinstance(database_or_view, MatrixView):
        return database_or_view
    return MatrixView(database_or_view)


def match_conjunctive(database_or_view, atoms, initial=None):
    """All variable bindings satisfying every atom simultaneously.

    Parameters
    ----------
    atoms:
        Iterable of :class:`repro.constraints.tgd.Atom`.
    initial:
        Optional partial binding ``{variable: node_id}`` that every
        returned binding must extend.  Used to check tgd conclusions for a
        given premise match without textual variable renaming.

    Returns
    -------
    list of dict
        Each dict maps every atom variable (plus the ``initial`` keys) to
        a node id.  When ``atoms`` is empty the result is ``[initial]``.
    """
    view = _as_view(database_or_view)
    atoms = list(atoms)
    seed = dict(initial or {})
    if not atoms:
        return [seed]

    relations = [rpq_pairs(view, atom.pattern) for atom in atoms]

    # Greedy join order: start with the smallest relation among atoms that
    # touch already-bound variables (or the globally smallest when nothing
    # is bound yet), to keep intermediate results small.
    remaining = list(range(len(atoms)))
    bound = set(seed)
    order = []
    while remaining:
        connected = [i for i in remaining if atoms[i].variables() & bound]
        pool = connected or remaining
        chosen = min(pool, key=lambda i: len(relations[i]))
        remaining.remove(chosen)
        order.append(chosen)
        bound |= atoms[chosen].variables()

    bindings = [seed]
    for index in order:
        bindings = _join_atom(bindings, atoms[index], relations[index])
        if not bindings:
            return []
    return bindings


def _join_atom(bindings, atom, pairs):
    """Extend each binding with matches of one atom (hash join)."""
    by_source = {}
    by_target = {}
    for u, v in pairs:
        by_source.setdefault(u, []).append(v)
        by_target.setdefault(v, []).append(u)

    result = []
    for binding in bindings:
        source_bound = atom.source in binding
        target_bound = atom.target in binding
        if source_bound and target_bound:
            if (binding[atom.source], binding[atom.target]) in pairs:
                result.append(binding)
        elif source_bound:
            for v in by_source.get(binding[atom.source], ()):
                if atom.source == atom.target and v != binding[atom.source]:
                    continue
                extended = dict(binding)
                extended[atom.target] = v
                result.append(extended)
        elif target_bound:
            for u in by_target.get(binding[atom.target], ()):
                extended = dict(binding)
                extended[atom.source] = u
                result.append(extended)
        else:
            for u, v in pairs:
                if atom.source == atom.target and u != v:
                    continue
                extended = dict(binding)
                extended[atom.source] = u
                extended[atom.target] = v
                result.append(extended)
    return result


def satisfies(database_or_view, constraint):
    """``D |= constraint`` for a :class:`Tgd` or :class:`Egd`.

    For a tgd: every premise match must extend to a conclusion match
    (existential conclusion variables may bind to any node).  For an egd:
    every premise match must bind its two equated variables to the same
    node.
    """
    from repro.constraints.tgd import Egd, Tgd

    if not isinstance(constraint, (Tgd, Egd)):
        raise ConstraintError(
            "cannot check satisfaction of {!r}".format(constraint)
        )
    view = _as_view(database_or_view)
    matches = match_conjunctive(view, constraint.premise)
    if isinstance(constraint, Egd):
        return all(
            binding[constraint.left] == binding[constraint.right]
            for binding in matches
        )
    shared = constraint.premise_variables() & constraint.conclusion_variables()
    for binding in matches:
        seed = {v: binding[v] for v in shared}
        if not match_conjunctive(view, constraint.conclusion, initial=seed):
            return False
    return True


def violating_matches(database_or_view, tgd, limit=None):
    """Premise matches of a tgd whose conclusion fails (for diagnostics)."""
    view = _as_view(database_or_view)
    shared = tgd.premise_variables() & tgd.conclusion_variables()
    violations = []
    for binding in match_conjunctive(view, tgd.premise):
        seed = {v: binding[v] for v in shared}
        if not match_conjunctive(view, tgd.conclusion, initial=seed):
            violations.append(binding)
            if limit is not None and len(violations) >= limit:
                break
    return violations
