"""Tuple- and equality-generating dependencies over graph schemas.

A tgd (Section 2) has the form ``forall x. phi(x) -> exists y. psi(x, y)``
where ``phi`` and ``psi`` are conjunctive RPQs — conjunctions of *atoms*
``(z_i, p_i, z_i')`` with ``p_i`` an RPQ and ``z`` variables.  A *full*
tgd has no existential variable in the conclusion.

Concrete syntax (used by :func:`parse_tgd` and ``str()``)::

    (x1, area, x3) & (x3, pub-in, x4) & (x2, pub-in, x4) -> (x1, area, x2)

Variables are identifiers; anything not bound in the premise is implicitly
existential in the conclusion.  An egd's conclusion is an equality
``x1 = x2`` instead of an atom.
"""

import re

from repro.exceptions import ConstraintError
from repro.lang.ast import Pattern
from repro.lang.parser import parse_pattern


class Atom:
    """A CRPQ atom ``(source_var, pattern, target_var)``."""

    __slots__ = ("source", "pattern", "target")

    def __init__(self, source, pattern, target):
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        if not isinstance(pattern, Pattern):
            raise ConstraintError(
                "atom pattern must be a Pattern or string, got {!r}".format(
                    pattern
                )
            )
        self.source = source
        self.pattern = pattern
        self.target = target

    def variables(self):
        return {self.source, self.target}

    def labels(self):
        return self.pattern.labels()

    def rename(self, mapping):
        """A copy with variables substituted via ``mapping`` (partial ok)."""
        return Atom(
            mapping.get(self.source, self.source),
            self.pattern,
            mapping.get(self.target, self.target),
        )

    def __eq__(self, other):
        if not isinstance(other, Atom):
            return NotImplemented
        return (
            self.source == other.source
            and self.pattern == other.pattern
            and self.target == other.target
        )

    def __hash__(self):
        return hash((self.source, self.pattern, self.target))

    def __str__(self):
        return "({}, {}, {})".format(self.source, self.pattern, self.target)

    def __repr__(self):
        return "Atom({!r}, {!r}, {!r})".format(
            self.source, str(self.pattern), self.target
        )


class Tgd:
    """A tuple-generating dependency ``premise -> conclusion``.

    Parameters
    ----------
    premise:
        Iterable of :class:`Atom`.
    conclusion:
        Iterable of :class:`Atom` (usually a single atom for the
        constraints induced by invertible transformations; see
        Section 3.2.2).
    """

    def __init__(self, premise, conclusion):
        self.premise = tuple(premise)
        self.conclusion = tuple(conclusion)
        if not self.premise:
            raise ConstraintError("tgd premise must not be empty")
        if not self.conclusion:
            raise ConstraintError("tgd conclusion must not be empty")

    # -- vocabulary ----------------------------------------------------
    def premise_variables(self):
        variables = set()
        for atom in self.premise:
            variables |= atom.variables()
        return variables

    def conclusion_variables(self):
        variables = set()
        for atom in self.conclusion:
            variables |= atom.variables()
        return variables

    def existential_variables(self):
        """Conclusion variables not bound by the premise."""
        return self.conclusion_variables() - self.premise_variables()

    def is_full(self):
        """Full tgds have no existential conclusion variables."""
        return not self.existential_variables()

    def labels(self):
        found = set()
        for atom in self.premise + self.conclusion:
            found |= atom.labels()
        return found

    def premise_labels(self):
        found = set()
        for atom in self.premise:
            found |= atom.labels()
        return found

    def conclusion_labels(self):
        found = set()
        for atom in self.conclusion:
            found |= atom.labels()
        return found

    # -- analysis --------------------------------------------------------
    def is_trivial(self):
        """Trivial constraints restrict nothing (Section 6.1).

        We use the syntactic criterion: every conclusion atom already
        appears in the premise (so premise logically implies conclusion for
        free).  This covers ``phi -> phi`` and copy rules like
        ``(x, a, y) -> (x, a, y)``.
        """
        premise_atoms = set(self.premise)
        return all(atom in premise_atoms for atom in self.conclusion)

    def __eq__(self, other):
        if not isinstance(other, Tgd):
            return NotImplemented
        return (
            self.premise == other.premise
            and self.conclusion == other.conclusion
        )

    def __hash__(self):
        return hash((self.premise, self.conclusion))

    def __str__(self):
        return "{} -> {}".format(
            " & ".join(str(atom) for atom in self.premise),
            " & ".join(str(atom) for atom in self.conclusion),
        )

    def __repr__(self):
        return "Tgd({!r})".format(str(self))


class Egd:
    """An equality-generating dependency ``premise -> x1 = x2``.

    Egds are part of the formal framework (Section 2) but the paper's
    algorithms only consume tgds; we support parsing/printing/satisfaction
    so constraint sets can be stored faithfully.
    """

    def __init__(self, premise, left, right):
        self.premise = tuple(premise)
        self.left = left
        self.right = right
        if not self.premise:
            raise ConstraintError("egd premise must not be empty")
        variables = set()
        for atom in self.premise:
            variables |= atom.variables()
        if left not in variables or right not in variables:
            raise ConstraintError(
                "egd equality variables must appear in the premise"
            )

    def labels(self):
        found = set()
        for atom in self.premise:
            found |= atom.labels()
        return found

    def is_trivial(self):
        return self.left == self.right

    def __eq__(self, other):
        if not isinstance(other, Egd):
            return NotImplemented
        return (
            self.premise == other.premise
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash((self.premise, self.left, self.right))

    def __str__(self):
        return "{} -> {} = {}".format(
            " & ".join(str(atom) for atom in self.premise),
            self.left,
            self.right,
        )

    def __repr__(self):
        return "Egd({!r})".format(str(self))


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_ATOM_RE = re.compile(
    r"\(\s*(?P<source>[A-Za-z_][A-Za-z0-9_]*)\s*,"
    r"\s*(?P<pattern>[^,]+?)\s*,"
    r"\s*(?P<target>[A-Za-z_][A-Za-z0-9_]*)\s*\)"
)
_EQUALITY_RE = re.compile(
    r"^\s*(?P<left>[A-Za-z_][A-Za-z0-9_]*)\s*=\s*"
    r"(?P<right>[A-Za-z_][A-Za-z0-9_]*)\s*$"
)


def _parse_atoms(text):
    atoms = []
    remainder = text
    for chunk in text.split("&"):
        chunk = chunk.strip()
        match = _ATOM_RE.fullmatch(chunk)
        if not match:
            raise ConstraintError(
                "cannot parse atom {!r} in {!r}".format(chunk, remainder)
            )
        atoms.append(
            Atom(
                match.group("source"),
                parse_pattern(match.group("pattern")),
                match.group("target"),
            )
        )
    return atoms


def parse_tgd(text):
    """Parse ``"(x, a, y) & ... -> (x, b, z)"`` into a :class:`Tgd`.

    If the right-hand side is an equality ``x = y`` an :class:`Egd` is
    returned instead.
    """
    if "->" not in text:
        raise ConstraintError("constraint must contain '->': {!r}".format(text))
    left, _, right = text.partition("->")
    premise = _parse_atoms(left)
    equality = _EQUALITY_RE.match(right)
    if equality:
        return Egd(premise, equality.group("left"), equality.group("right"))
    conclusion = _parse_atoms(right)
    return Tgd(premise, conclusion)
