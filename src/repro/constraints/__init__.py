"""Database constraints: tgds/egds, premise graphs, and satisfaction."""

from repro.constraints.evaluation import (
    match_conjunctive,
    rpq_boolean_matrix,
    rpq_pairs,
    satisfies,
    violating_matches,
)
from repro.constraints.premise_graph import PremiseGraph, normalize_atoms
from repro.constraints.tgd import Atom, Egd, Tgd, parse_tgd

__all__ = [
    "Atom",
    "Egd",
    "PremiseGraph",
    "Tgd",
    "match_conjunctive",
    "normalize_atoms",
    "parse_tgd",
    "rpq_boolean_matrix",
    "rpq_pairs",
    "satisfies",
    "violating_matches",
]
