"""Algebraic simplification of RRE patterns.

Algorithm 1 and the Theorem-2 mapping can emit patterns with redundant
structure (double reversals, skips of single steps, nested epsilons).
This module rewrites a pattern into a smaller equivalent one — where
*equivalent* means equal commuting matrices over every database, so
simplification never changes a RelSim score.

Rules (each justified by the Section-4.3 matrix identities):

* ``(p-)-            -> p``            (transpose is an involution)
* ``(p1.p2)-         -> p2-.p1-``      (push reversal inward)
* ``(p1+p2)-         -> p1- + p2-``
* ``<<a>> / <<a->>   -> a / a-``       (Prop 3(2): skip of one step)
* ``<<<<p>>>>        -> <<p>>``        (booleanizing twice)
* ``<<eps>>          -> eps``
* ``[eps]            -> eps``          (one instance per node either way)
* ``eps.p / p.eps    -> p``
* ``p+p              -> p``            (duplicate disjuncts)
* ``(p*)*            -> p*``
* ``eps*             -> eps``
* nested/skip/star/concat/union simplify recursively.

Deliberately *not* rewritten: ``<<p1.p2>>`` to anything (the skip of a
composite genuinely changes counts), ``[p]`` to ``p.<<p->>`` (equal
counts by Prop 3(5) but larger), and union flattening beyond dedup.
"""

from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Pattern,
    Reverse,
    Skip,
    Star,
    Union,
    concat,
)


def simplify(pattern):
    """Return an equivalent, usually smaller pattern (idempotent)."""
    if not isinstance(pattern, Pattern):
        raise TypeError("pattern must be a Pattern AST, got {!r}".format(pattern))
    previous = None
    current = pattern
    # Iterate to a fixpoint; each pass strictly shrinks or stabilizes.
    while current != previous:
        previous = current
        current = _simplify_once(current)
    return current


def _simplify_once(pattern):
    if isinstance(pattern, (Epsilon, Label)):
        return pattern

    if isinstance(pattern, Reverse):
        inner = _simplify_once(pattern.operand)
        if isinstance(inner, Reverse):
            return inner.operand
        if isinstance(inner, Epsilon):
            return inner
        if isinstance(inner, Concat):
            return Concat(
                [Reverse(part) if not isinstance(part, Reverse) else part.operand
                 for part in reversed(inner.parts)]
            )
        if isinstance(inner, Union):
            return Union([part.reverse() for part in inner.parts])
        if isinstance(inner, Nested):
            return inner  # [p] is diagonal; reversal is identity
        return Reverse(inner)

    if isinstance(pattern, Star):
        inner = _simplify_once(pattern.operand)
        if isinstance(inner, Star):
            return inner
        if isinstance(inner, Epsilon):
            return inner
        return Star(inner)

    if isinstance(pattern, Skip):
        inner = _simplify_once(pattern.operand)
        if isinstance(inner, Skip):
            return Skip(inner.operand)
        if isinstance(inner, Epsilon):
            return inner
        if isinstance(inner, Label):
            return inner  # Prop 3(2)
        if isinstance(inner, Reverse) and isinstance(inner.operand, Label):
            return inner
        if isinstance(inner, Nested):
            # [p] has 0/1-free counts? No: counts can exceed 1, but the
            # *support* is diagonal; skip makes it exactly 0/1 diagonal.
            return Skip(inner)
        return Skip(inner)

    if isinstance(pattern, Nested):
        inner = _simplify_once(pattern.operand)
        if isinstance(inner, Epsilon):
            return inner
        return Nested(inner)

    if isinstance(pattern, Concat):
        parts = [_simplify_once(part) for part in pattern.parts]
        parts = [part for part in parts if not isinstance(part, Epsilon)]
        return concat(*parts)

    if isinstance(pattern, Union):
        parts = []
        for part in pattern.parts:
            simplified = _simplify_once(part)
            if isinstance(simplified, Union):
                candidates = simplified.parts
            else:
                candidates = (simplified,)
            for candidate in candidates:
                if candidate not in parts:
                    parts.append(candidate)
        if len(parts) == 1:
            return parts[0]
        return Union(parts)

    if isinstance(pattern, Conj):
        # p & p has squared counts, so only *syntactically equal* parts
        # after simplification may be merged when idempotent is safe:
        # they are NOT (counts multiply), so keep all parts as-is.
        parts = [_simplify_once(part) for part in pattern.parts]
        return Conj(parts)

    raise TypeError("unhandled pattern node {!r}".format(pattern))


def size(pattern):
    """Total node count of the AST (a simplification progress metric)."""
    return 1 + sum(size(child) for child in pattern.children())
