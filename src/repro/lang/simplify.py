"""Algebraic simplification of RRE patterns.

Algorithm 1 and the Theorem-2 mapping can emit patterns with redundant
structure (double reversals, skips of single steps, nested epsilons).
This module rewrites a pattern into a smaller equivalent one — where
*equivalent* means equal commuting matrices over every database, so
simplification never changes a RelSim score.

Rules (each justified by the Section-4.3 matrix identities):

* ``(p-)-            -> p``            (transpose is an involution)
* ``(p1.p2)-         -> p2-.p1-``      (push reversal inward)
* ``(p1+p2)-         -> p1- + p2-``
* ``<<a>> / <<a->>   -> a / a-``       (Prop 3(2): skip of one step)
* ``<<<<p>>>>        -> <<p>>``        (booleanizing twice)
* ``<<eps>>          -> eps``
* ``[eps]            -> eps``          (one instance per node either way)
* ``eps.p / p.eps    -> p``
* ``p+p              -> p``            (duplicate disjuncts)
* ``(p*)*            -> p*``
* ``eps*             -> eps``
* nested/skip/star/concat/union simplify recursively.

Deliberately *not* rewritten: ``<<p1.p2>>`` to anything (the skip of a
composite genuinely changes counts), ``[p]`` to ``p.<<p->>`` (equal
counts by Prop 3(5) but larger), and union flattening beyond dedup.
"""

from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Pattern,
    Reverse,
    Skip,
    Star,
    Union,
    concat,
)


def simplify(pattern):
    """Return an equivalent, usually smaller pattern (idempotent)."""
    if not isinstance(pattern, Pattern):
        raise TypeError("pattern must be a Pattern AST, got {!r}".format(pattern))
    previous = None
    current = pattern
    # Iterate to a fixpoint; each pass strictly shrinks or stabilizes.
    while current != previous:
        previous = current
        current = _simplify_once(current)
    return current


def _simplify_once(pattern):
    if isinstance(pattern, (Epsilon, Label)):
        return pattern

    if isinstance(pattern, Reverse):
        inner = _simplify_once(pattern.operand)
        if isinstance(inner, Reverse):
            return inner.operand
        if isinstance(inner, Epsilon):
            return inner
        if isinstance(inner, Concat):
            return Concat(
                [Reverse(part) if not isinstance(part, Reverse) else part.operand
                 for part in reversed(inner.parts)]
            )
        if isinstance(inner, Union):
            return Union([part.reverse() for part in inner.parts])
        if isinstance(inner, Nested):
            return inner  # [p] is diagonal; reversal is identity
        return Reverse(inner)

    if isinstance(pattern, Star):
        inner = _simplify_once(pattern.operand)
        if isinstance(inner, Star):
            return inner
        if isinstance(inner, Epsilon):
            return inner
        return Star(inner)

    if isinstance(pattern, Skip):
        inner = _simplify_once(pattern.operand)
        if isinstance(inner, Skip):
            return Skip(inner.operand)
        if isinstance(inner, Epsilon):
            return inner
        if isinstance(inner, Label):
            return inner  # Prop 3(2)
        if isinstance(inner, Reverse) and isinstance(inner.operand, Label):
            return inner
        if isinstance(inner, Nested):
            # [p] has 0/1-free counts? No: counts can exceed 1, but the
            # *support* is diagonal; skip makes it exactly 0/1 diagonal.
            return Skip(inner)
        return Skip(inner)

    if isinstance(pattern, Nested):
        inner = _simplify_once(pattern.operand)
        if isinstance(inner, Epsilon):
            return inner
        return Nested(inner)

    if isinstance(pattern, Concat):
        parts = [_simplify_once(part) for part in pattern.parts]
        parts = [part for part in parts if not isinstance(part, Epsilon)]
        return concat(*parts)

    if isinstance(pattern, Union):
        parts = []
        for part in pattern.parts:
            simplified = _simplify_once(part)
            if isinstance(simplified, Union):
                candidates = simplified.parts
            else:
                candidates = (simplified,)
            for candidate in candidates:
                if candidate not in parts:
                    parts.append(candidate)
        if len(parts) == 1:
            return parts[0]
        return Union(parts)

    if isinstance(pattern, Conj):
        # p & p has squared counts, so only *syntactically equal* parts
        # after simplification may be merged when idempotent is safe:
        # they are NOT (counts multiply), so keep all parts as-is.
        parts = [_simplify_once(part) for part in pattern.parts]
        return Conj(parts)

    raise TypeError("unhandled pattern node {!r}".format(pattern))


def size(pattern):
    """Total node count of the AST (a simplification progress metric)."""
    return 1 + sum(size(child) for child in pattern.children())


# ----------------------------------------------------------------------
# Canonicalization (the plan compiler's normal form)
# ----------------------------------------------------------------------
def canonicalize(pattern):
    """Rewrite ``pattern`` into the plan compiler's canonical form.

    Unlike :func:`simplify`, every rule here preserves the commuting
    matrix *exactly* on every database — including multigraphs with
    parallel same-label edges, where e.g. ``<<a>> -> a`` (a
    :func:`simplify` rule) would change counts.  The canonical form is
    what makes equivalent spellings share one engine cache entry:

    * ``Reverse`` is pushed to the leaves through every operator
      (``(p1.p2)- -> p2-.p1-``, ``(p*)- -> (p-)*``, ``[p]- -> [p]``, ...),
      so only labels stay reversed;
    * ``Concat`` is flat with epsilons dropped;
    * ``Union`` disjuncts are deduplicated with a seen-set over the
      *raw* disjuncts (the paper sums syntactically distinct disjuncts
      only, so ``a+a`` collapses but ``a--+a`` stays a sum of two) and
      sorted — matrix addition commutes, so ``a+b`` and ``b+a`` are the
      same plan;
    * ``Conj`` conjuncts are sorted (Hadamard products commute) but
      duplicates are kept (``p & p`` squares counts);
    * ``<<<<p>>>> -> <<p>>``, ``<<eps>> -> eps`` and ``[eps] -> eps``
      (booleanizing twice, and both sides are exactly the identity).

    Idempotent; the result is structurally equal for every pattern with
    the same commuting-matrix semantics up to these identities.
    """
    if not isinstance(pattern, Pattern):
        raise TypeError(
            "pattern must be a Pattern AST, got {!r}".format(pattern)
        )
    return _canonicalize(pattern, False)


def _canonicalize(pattern, reversed_):
    if isinstance(pattern, Epsilon):
        return pattern
    if isinstance(pattern, Label):
        return Reverse(pattern) if reversed_ else pattern
    if isinstance(pattern, Reverse):
        return _canonicalize(pattern.operand, not reversed_)
    if isinstance(pattern, Concat):
        parts = pattern.parts[::-1] if reversed_ else pattern.parts
        canonical = [_canonicalize(part, reversed_) for part in parts]
        canonical = [
            part for part in canonical if not isinstance(part, Epsilon)
        ]
        return concat(*canonical)
    if isinstance(pattern, Union):
        # Dedupe with a seen-set over the *raw* disjuncts — exactly the
        # engine's M_{p+p} = M_p rule.  Disjuncts that are raw-distinct
        # but canonically equal (a-- vs a) are deliberately KEPT as
        # duplicates: the recursive semantics sums them (syntactic
        # inequality is what the paper's rule tests), so merging them
        # would change counts.
        unique = []
        for part in pattern.parts:
            if part not in unique:
                unique.append(part)
        parts = []
        for part in unique:
            canonical = _canonicalize(part, reversed_)
            if isinstance(canonical, Union):
                parts.extend(canonical.parts)
            else:
                parts.append(canonical)
        parts.sort(key=str)
        if len(parts) == 1:
            return parts[0]
        return Union(parts)
    if isinstance(pattern, Conj):
        parts = sorted(
            (_canonicalize(part, reversed_) for part in pattern.parts),
            key=str,
        )
        return Conj(parts)
    if isinstance(pattern, Star):
        return Star(_canonicalize(pattern.operand, reversed_))
    if isinstance(pattern, Skip):
        inner = _canonicalize(pattern.operand, reversed_)
        while isinstance(inner, Skip):
            inner = inner.operand
        if isinstance(inner, Epsilon):
            return inner
        return Skip(inner)
    if isinstance(pattern, Nested):
        # [p] is diagonal, so its reverse is itself; the operand is
        # canonicalized unreversed.
        inner = _canonicalize(pattern.operand, False)
        if isinstance(inner, Epsilon):
            return inner
        return Nested(inner)
    raise TypeError("unhandled pattern node {!r}".format(pattern))
