"""Tokenizer and recursive-descent parser for the RRE concrete syntax.

Grammar (lowest to highest precedence)::

    conj    := union ("&" union)*
    union   := concat ("+" concat)*
    concat  := postfix (("." | "·") postfix)*
    postfix := primary ("*" | "-")*
    primary := "(" union ")"
             | "[" union "]"            (nested)
             | "<<" union ">>"          (skip)
             | "eps"                    (empty pattern)
             | LABEL

Labels may contain hyphens (``published-in``), so the tokenizer resolves
the ambiguity with the reverse operator by a one-character lookahead: a
``-`` immediately followed by a label character continues the label, while
a ``-`` at the end of a label token (or standing alone after ``)``, ``]``,
``>>`` or ``*``) is the reverse operator.  This matches how the paper
writes ``published-in-`` for the reverse of ``published-in``.
"""

import string

from repro.exceptions import PatternSyntaxError
from repro.lang.ast import (
    EPSILON,
    Label,
    Nested,
    Reverse,
    Skip,
    Star,
    concat,
    conj,
    union,
)

_LABEL_START = set(string.ascii_letters + "_")
_LABEL_BODY = set(string.ascii_letters + string.digits + "_")

# Token kinds
_LBRACKET = "["
_RBRACKET = "]"
_LPAREN = "("
_RPAREN = ")"
_LSKIP = "<<"
_RSKIP = ">>"
_DOT = "."
_PLUS = "+"
_AMP = "&"
_STAR = "*"
_MINUS = "-"
_LABEL = "LABEL"
_EOF = "EOF"


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self):
        return "Token({}, {!r}, {})".format(self.kind, self.value, self.position)


def tokenize(text):
    """Produce the token list for ``text``; raises on bad characters."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _LABEL_START:
            start = i
            i += 1
            while i < n:
                if text[i] in _LABEL_BODY:
                    i += 1
                elif (
                    text[i] == "-"
                    and i + 1 < n
                    and text[i + 1] in _LABEL_BODY
                ):
                    # hyphen inside a label like "published-in"
                    i += 2
                else:
                    break
            tokens.append(_Token(_LABEL, text[start:i], start))
            continue
        if ch == "<" and text[i : i + 2] == "<<":
            tokens.append(_Token(_LSKIP, "<<", i))
            i += 2
            continue
        if ch == ">" and text[i : i + 2] == ">>":
            tokens.append(_Token(_RSKIP, ">>", i))
            i += 2
            continue
        if ch in "()[]+*-&":
            kind = {
                "(": _LPAREN,
                ")": _RPAREN,
                "[": _LBRACKET,
                "]": _RBRACKET,
                "+": _PLUS,
                "*": _STAR,
                "-": _MINUS,
                "&": _AMP,
            }[ch]
            tokens.append(_Token(kind, ch, i))
            i += 1
            continue
        if ch == "." or ch == "·":
            tokens.append(_Token(_DOT, ch, i))
            i += 1
            continue
        raise PatternSyntaxError(
            "unexpected character {!r}".format(ch), position=i, text=text
        )
    tokens.append(_Token(_EOF, "", n))
    return tokens


class _Parser:
    def __init__(self, text):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    def peek(self):
        return self.tokens[self.position]

    def advance(self):
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind):
        token = self.peek()
        if token.kind != kind:
            raise PatternSyntaxError(
                "expected {} but found {!r}".format(kind, token.value or "end"),
                position=token.position,
                text=self.text,
            )
        return self.advance()

    # -- grammar ------------------------------------------------------
    def parse(self):
        pattern = self.conjunction()
        token = self.peek()
        if token.kind != _EOF:
            raise PatternSyntaxError(
                "trailing input {!r}".format(token.value),
                position=token.position,
                text=self.text,
            )
        return pattern

    def conjunction(self):
        parts = [self.union()]
        while self.peek().kind == _AMP:
            self.advance()
            parts.append(self.union())
        if len(parts) == 1:
            return parts[0]
        return conj(*parts)

    def union(self):
        parts = [self.concat()]
        while self.peek().kind == _PLUS:
            self.advance()
            parts.append(self.concat())
        if len(parts) == 1:
            return parts[0]
        return union(*parts)

    def concat(self):
        parts = [self.postfix()]
        while self.peek().kind == _DOT:
            self.advance()
            parts.append(self.postfix())
        if len(parts) == 1:
            return parts[0]
        return concat(*parts)

    def postfix(self):
        pattern = self.primary()
        while True:
            kind = self.peek().kind
            if kind == _STAR:
                self.advance()
                pattern = Star(pattern)
            elif kind == _MINUS:
                self.advance()
                pattern = Reverse(pattern)
            else:
                return pattern

    def primary(self):
        token = self.peek()
        if token.kind == _LPAREN:
            self.advance()
            inner = self.conjunction()
            self.expect(_RPAREN)
            return inner
        if token.kind == _LBRACKET:
            self.advance()
            inner = self.conjunction()
            self.expect(_RBRACKET)
            return Nested(inner)
        if token.kind == _LSKIP:
            self.advance()
            inner = self.conjunction()
            self.expect(_RSKIP)
            return Skip(inner)
        if token.kind == _LABEL:
            self.advance()
            if token.value == "eps":
                return EPSILON
            return Label(token.value)
        raise PatternSyntaxError(
            "expected a pattern but found {!r}".format(token.value or "end"),
            position=token.position,
            text=self.text,
        )


def parse_pattern(text):
    """Parse concrete RRE syntax into an AST.

    >>> str(parse_pattern("field.[published-in-].field-"))
    'field.[published-in-].field-'
    """
    if not isinstance(text, str):
        raise PatternSyntaxError("pattern must be a string, got {!r}".format(text))
    if not text.strip():
        raise PatternSyntaxError("empty pattern string")
    return _Parser(text).parse()
