"""Enumeration semantics for RREs: the paper's instance sets ``I_D(p)``.

An *instance* of an RRE ``p`` in database ``D`` is a triple ``(u, v, s)``
where ``s`` records the actual traversal (Section 4.2).  We represent the
recorded sequence as a tuple of entries:

* ``("n", node_id)`` — a visited node;
* ``("s", text)`` — a traversal step: an edge label, a reversed edge label
  (``text`` ends with ``-``), or the flattened string of a skip pattern.

Reversal of a step toggles a trailing ``-`` (an involution, as the paper's
abstract ``s-`` requires).  Equality of instances is entry-wise equality.

This module is the *reference* implementation: it is exponential in path
multiplicity and only suitable for small graphs.  The commuting-matrix
engine (:mod:`repro.lang.matrix_semantics`) computes the same **counts**
in polynomial time; the test suite cross-checks the two (Proposition 3).
"""

from repro.exceptions import StarDivergenceError
from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Pattern,
    Reverse,
    Skip,
    Star,
    Union,
    strip_skips,
)


def _node(node_id):
    return ("n", node_id)


def _step(text):
    return ("s", text)


def reverse_step(text):
    """The involutive step reversal: toggle a trailing ``-``."""
    if text.endswith("-"):
        return text[:-1]
    return text + "-"


def reverse_sequence(sequence):
    """The paper's ``s-bar``: reversed order, steps individually reversed.

    Conjunction entries ``("and", s1, s2, ...)`` reverse component-wise.
    """
    reversed_entries = []
    for entry in reversed(sequence):
        kind = entry[0]
        if kind == "n":
            reversed_entries.append(entry)
        elif kind == "and":
            reversed_entries.append(
                ("and",) + tuple(reverse_sequence(s) for s in entry[1:])
            )
        else:
            reversed_entries.append((kind, reverse_step(entry[1])))
    return tuple(reversed_entries)


def join_sequences(first, second):
    """The paper's ``s • t``: defined only when first ends where second starts."""
    if first[-1] != second[0]:
        raise ValueError("sequences do not share an endpoint")
    return first + second[1:]


class InstanceSet:
    """The set ``I_D(p)`` with convenience accessors.

    Internally a dict ``(u, v) -> set of sequences`` so that per-pair
    counts — the quantity every theorem in the paper is about — are O(1).
    """

    def __init__(self):
        self._by_pair = {}

    @classmethod
    def from_triples(cls, triples):
        result = cls()
        for u, v, sequence in triples:
            result.add(u, v, sequence)
        return result

    def add(self, u, v, sequence):
        self._by_pair.setdefault((u, v), set()).add(sequence)

    def pairs(self):
        """All ``(u, v)`` with at least one instance."""
        return set(self._by_pair)

    def sequences(self, u, v):
        """The recorded sequences between ``u`` and ``v`` (maybe empty)."""
        return set(self._by_pair.get((u, v), ()))

    def count(self, u, v):
        """``|I^{u,v}_D(p)|``."""
        return len(self._by_pair.get((u, v), ()))

    def total(self):
        return sum(len(s) for s in self._by_pair.values())

    def triples(self):
        for (u, v), sequences in self._by_pair.items():
            for sequence in sequences:
                yield (u, v, sequence)

    def __eq__(self, other):
        if not isinstance(other, InstanceSet):
            return NotImplemented
        return self._by_pair == other._by_pair

    def __len__(self):
        return self.total()

    def __repr__(self):
        return "InstanceSet(pairs={}, total={})".format(
            len(self._by_pair), self.total()
        )


def enumerate_instances(database, pattern, max_star_depth=None):
    """Compute ``I_D(pattern)`` by direct structural recursion.

    Parameters
    ----------
    database:
        A :class:`repro.graph.database.GraphDatabase`.
    pattern:
        A :class:`repro.lang.ast.Pattern`.
    max_star_depth:
        Bound on Kleene-star expansion; defaults to the node count (walks
        in an acyclic graph cannot be longer).  If the expansion is still
        producing new instances at the bound, :class:`StarDivergenceError`
        is raised — under counting semantics a matching cycle makes the
        count infinite.
    """
    if not isinstance(pattern, Pattern):
        raise TypeError("pattern must be a Pattern AST, got {!r}".format(pattern))
    if max_star_depth is None:
        max_star_depth = max(database.num_nodes(), 1)
    return _enumerate(database, pattern, max_star_depth)


def _enumerate(database, pattern, max_star_depth):
    if isinstance(pattern, Epsilon):
        result = InstanceSet()
        for node in database.nodes():
            result.add(node, node, (_node(node),))
        return result

    if isinstance(pattern, Label):
        database.schema.require_label(pattern.name)
        result = InstanceSet()
        for source, _, target in database.edges(pattern.name):
            result.add(
                source,
                target,
                (_node(source), _step(pattern.name), _node(target)),
            )
        return result

    if isinstance(pattern, Reverse):
        inner = _enumerate(database, pattern.operand, max_star_depth)
        result = InstanceSet()
        for u, v, sequence in inner.triples():
            result.add(v, u, reverse_sequence(sequence))
        return result

    if isinstance(pattern, Concat):
        current = _enumerate(database, pattern.parts[0], max_star_depth)
        for part in pattern.parts[1:]:
            nxt = _enumerate(database, part, max_star_depth)
            current = _join(current, nxt)
        return current

    if isinstance(pattern, Union):
        result = InstanceSet()
        for part in pattern.parts:
            for u, v, sequence in _enumerate(
                database, part, max_star_depth
            ).triples():
                result.add(u, v, sequence)
        return result

    if isinstance(pattern, Star):
        return _star(database, pattern, max_star_depth)

    if isinstance(pattern, Skip):
        inner = _enumerate(database, pattern.operand, max_star_depth)
        text = str(strip_skips(pattern.operand))
        result = InstanceSet()
        for u, v in inner.pairs():
            result.add(u, v, (_node(u), _step(text), _node(v)))
        return result

    if isinstance(pattern, Nested):
        inner = _enumerate(database, pattern.operand, max_star_depth)
        result = InstanceSet()
        for u, v, sequence in inner.triples():
            result.add(u, u, sequence + (_node(u),))
        return result

    if isinstance(pattern, Conj):
        # Conjunctive RRE extension: an instance between (u, v) is one
        # sub-instance per conjunct; the recorded sequence nests them so
        # distinct combinations stay distinct (counts multiply, matching
        # the Hadamard-product commuting matrix).
        inner_sets = [
            _enumerate(database, part, max_star_depth)
            for part in pattern.parts
        ]
        result = InstanceSet()
        shared = inner_sets[0].pairs()
        for inner in inner_sets[1:]:
            shared &= inner.pairs()
        for u, v in shared:
            combos = [()]
            for inner in inner_sets:
                combos = [
                    existing + (sequence,)
                    for existing in combos
                    for sequence in inner.sequences(u, v)
                ]
            for combo in combos:
                result.add(
                    u, v, (_node(u), ("and",) + combo, _node(v))
                )
        return result

    raise TypeError("unhandled pattern node {!r}".format(pattern))


def _join(left, right):
    """All ``s1 • s2`` joins between two instance sets."""
    result = InstanceSet()
    by_start = {}
    for u, v, sequence in right.triples():
        by_start.setdefault(u, []).append((v, sequence))
    for u, w, first in left.triples():
        for v, second in by_start.get(w, ()):
            result.add(u, v, join_sequences(first, second))
    return result


def _star(database, pattern, max_star_depth):
    base = _enumerate(database, pattern.operand, max_star_depth)
    result = _enumerate(database, Epsilon(), max_star_depth)
    level = base
    depth = 1
    while level.total() > 0:
        if depth > max_star_depth:
            raise StarDivergenceError(pattern, max_star_depth)
        for u, v, sequence in level.triples():
            result.add(u, v, sequence)
        level = _join(level, base)
        depth += 1
    return result


def count_matrix_dict(database, pattern, max_star_depth=None):
    """Per-pair counts as a dict ``(u, v) -> count`` (for test cross-checks)."""
    instances = enumerate_instances(database, pattern, max_star_depth)
    return {pair: instances.count(*pair) for pair in instances.pairs()}
