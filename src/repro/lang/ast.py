"""Abstract syntax trees for RPQ / NRE / RRE patterns.

The paper's rich-relationship-expression (RRE) grammar (Section 4.2)::

    p := eps | a | p- | p* | p . p | p + p | [p] | <<p>>

where ``a`` is an edge label, ``-`` reverse traversal, ``.`` concatenation
(the paper's middle dot), ``+`` disjunction, ``*`` Kleene star, ``[p]`` the
*nested* operator and ``<<p>>`` the *skip* operator (the paper's double
ceiling/floor brackets, rendered in ASCII).

Plain RPQs are the subset without ``[ ]`` / ``<< >>``; NREs add ``[ ]``.

AST nodes are immutable, hashable and compare structurally, so they can be
used as cache keys by the commuting-matrix engine.  ``str()`` produces the
concrete syntax back (minimal parentheses), and the parser round-trips it.
"""


class Pattern:
    """Base class for all pattern AST nodes."""

    #: Precedence for the pretty printer; higher binds tighter.
    precedence = 0

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError

    def __str__(self):
        raise NotImplementedError

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, str(self))

    def _child_str(self, child):
        """Render ``child``, parenthesizing when its precedence is lower."""
        text = str(child)
        if child.precedence < self.precedence:
            return "({})".format(text)
        return text

    # ------------------------------------------------------------------
    # Structural queries shared by all nodes
    # ------------------------------------------------------------------
    def labels(self):
        """The set of edge labels mentioned anywhere in the pattern."""
        found = set()
        self._collect_labels(found)
        return found

    def _collect_labels(self, found):
        for child in self.children():
            child._collect_labels(found)

    def children(self):
        """Direct sub-patterns (empty for leaves)."""
        return ()

    def is_simple(self):
        """True for *simple patterns*: concatenations of (reversed) labels.

        Simple patterns are PathSim meta-paths, the only thing the
        usability layer (Section 5) asks of users.
        """
        return False

    def reverse(self):
        """The pattern ``p-`` with double reversals collapsed."""
        return Reverse(self)

    def num_operations(self):
        """Count of operator nodes; used in complexity accounting."""
        return 1 + sum(child.num_operations() for child in self.children())


class Epsilon(Pattern):
    """The empty pattern ``eps``: relates every node to itself."""

    precedence = 100

    def _key(self):
        return ()

    def __str__(self):
        return "eps"

    def is_simple(self):
        return True

    def reverse(self):
        return self


class Label(Pattern):
    """A single edge label ``a``."""

    precedence = 100

    def __init__(self, name):
        if not name or not isinstance(name, str):
            raise ValueError("label name must be a non-empty string")
        self.name = name

    def _key(self):
        return (self.name,)

    def __str__(self):
        return self.name

    def _collect_labels(self, found):
        found.add(self.name)

    def is_simple(self):
        return True


class Reverse(Pattern):
    """Reverse traversal ``p-`` (highest operator priority in the paper)."""

    precedence = 90

    def __init__(self, operand):
        self.operand = operand

    def _key(self):
        return (self.operand,)

    def children(self):
        return (self.operand,)

    def __str__(self):
        return self._child_str(self.operand) + "-"

    def is_simple(self):
        return isinstance(self.operand, Label)

    def reverse(self):
        return self.operand


class Star(Pattern):
    """Kleene star ``p*``."""

    precedence = 80

    def __init__(self, operand):
        self.operand = operand

    def _key(self):
        return (self.operand,)

    def children(self):
        return (self.operand,)

    def __str__(self):
        return self._child_str(self.operand) + "*"

    def reverse(self):
        return Star(self.operand.reverse())


class Concat(Pattern):
    """Concatenation ``p1 . p2 . ... . pk`` (flattened, k >= 2)."""

    precedence = 50

    def __init__(self, parts):
        flattened = []
        for part in parts:
            if isinstance(part, Concat):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise ValueError("Concat needs at least two parts; use concat()")
        self.parts = tuple(flattened)

    def _key(self):
        return self.parts

    def children(self):
        return self.parts

    def __str__(self):
        return ".".join(self._child_str(part) for part in self.parts)

    def is_simple(self):
        return all(part.is_simple() for part in self.parts)

    def reverse(self):
        return Concat([part.reverse() for part in reversed(self.parts)])


class Union(Pattern):
    """Disjunction ``p1 + p2 + ... + pk`` (flattened, k >= 2)."""

    precedence = 10

    def __init__(self, parts):
        flattened = []
        for part in parts:
            if isinstance(part, Union):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise ValueError("Union needs at least two parts; use union()")
        self.parts = tuple(flattened)

    def _key(self):
        return self.parts

    def children(self):
        return self.parts

    def __str__(self):
        return "+".join(self._child_str(part) for part in self.parts)

    def reverse(self):
        return Union([part.reverse() for part in self.parts])


class Nested(Pattern):
    """The nested operator ``[p]``.

    ``(u, [p], u)`` holds whenever some ``v`` with ``(u, p, v)`` exists; the
    *count* of instances at ``u`` is the total number of ``p``-instances
    leaving ``u`` (Proposition 3(5)).  Nested patterns record side branches
    of a relationship without moving the traversal position.
    """

    precedence = 100  # self-delimiting brackets

    def __init__(self, operand):
        self.operand = operand

    def _key(self):
        return (self.operand,)

    def children(self):
        return (self.operand,)

    def __str__(self):
        return "[{}]".format(self.operand)

    def reverse(self):
        # [p] relates u to itself, so its reverse is itself.
        return self


class Skip(Pattern):
    """The skip operator ``<<p>>``.

    Collapses *all* ``p``-paths between two endpoints into a single
    instance: ``|I(<<p>>)(u, v)|`` is 1 if any ``p``-path exists, else 0
    (Proposition 3(1)).  This is what makes patterns transportable across
    variations that change path multiplicities.
    """

    precedence = 100  # self-delimiting brackets

    def __init__(self, operand):
        self.operand = operand

    def _key(self):
        return (self.operand,)

    def children(self):
        return (self.operand,)

    def __str__(self):
        return "<<{}>>".format(self.operand)

    def reverse(self):
        return Skip(self.operand.reverse())


class Conj(Pattern):
    """Conjunction ``p1 & p2 & ... & pk`` (flattened, k >= 2).

    The *conjunctive RRE* extension the paper sketches at the end of
    Section 4.2: both relationships must hold between the same pair of
    endpoints.  An instance is a *pair* of sub-instances, so the
    commuting matrix is the elementwise (Hadamard) product — which is
    what lets Theorem 2 extend to constraints with cyclic premises.
    """

    precedence = 5  # binds loosest of all binary operators

    def __init__(self, parts):
        flattened = []
        for part in parts:
            if isinstance(part, Conj):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise ValueError("Conj needs at least two parts; use conj()")
        self.parts = tuple(flattened)

    def _key(self):
        return self.parts

    def children(self):
        return self.parts

    def __str__(self):
        return "&".join(self._child_str(part) for part in self.parts)

    def reverse(self):
        return Conj([part.reverse() for part in self.parts])


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
EPSILON = Epsilon()


def label(name):
    """Shorthand for :class:`Label`."""
    return Label(name)


def concat(*parts):
    """N-ary concatenation that tolerates 0/1 arguments."""
    parts = [p for p in parts if not isinstance(p, Epsilon)]
    if not parts:
        return EPSILON
    if len(parts) == 1:
        return parts[0]
    return Concat(parts)


def conj(*parts):
    """N-ary conjunction that tolerates one argument.

    Unlike :func:`union`, duplicates are KEPT: ``p & p`` counts *pairs*
    of instances (its matrix is ``M_p`` squared entrywise), so collapsing
    it would change scores.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("conj() needs at least one pattern")
    if len(parts) == 1:
        return parts[0]
    return Conj(parts)


def union(*parts):
    """N-ary disjunction that deduplicates and tolerates one argument."""
    unique = []
    for part in parts:
        if part not in unique:
            unique.append(part)
    if not unique:
        raise ValueError("union() needs at least one pattern")
    if len(unique) == 1:
        return unique[0]
    return Union(unique)


def reverse(pattern):
    """``p-`` with double reversal collapsed."""
    return pattern.reverse()


def nested(pattern):
    return Nested(pattern)


def skip(pattern):
    return Skip(pattern)


def star(pattern):
    return Star(pattern)


def simple_pattern(labels_and_directions):
    """Build a simple pattern from ``[("a", False), ("b", True), ...]``.

    The boolean marks reverse traversal.  Plain strings are also accepted
    and mean forward traversal; a trailing ``"-"`` on a string means
    reverse (mirroring concrete syntax).
    """
    steps = []
    for item in labels_and_directions:
        if isinstance(item, str):
            if item.endswith("-"):
                steps.append(Reverse(Label(item[:-1])))
            else:
                steps.append(Label(item))
        else:
            name, reversed_ = item
            step = Label(name)
            steps.append(Reverse(step) if reversed_ else step)
    return concat(*steps)


def simple_steps(pattern):
    """Decompose a simple pattern into ``[(label, reversed), ...]``.

    Raises ``ValueError`` when the pattern is not simple.
    """
    parts = pattern.parts if isinstance(pattern, Concat) else (pattern,)
    steps = []
    for part in parts:
        if isinstance(part, Label):
            steps.append((part.name, False))
        elif isinstance(part, Reverse) and isinstance(part.operand, Label):
            steps.append((part.operand.name, True))
        elif isinstance(part, Epsilon):
            continue
        else:
            raise ValueError(
                "pattern {} is not simple (found {})".format(pattern, part)
            )
    return steps


def strip_skips(pattern):
    """The paper's ``p~``: ``p`` with every skip operator removed.

    Used when recording a skip step inside an instance sequence.
    """
    if isinstance(pattern, Skip):
        return strip_skips(pattern.operand)
    if isinstance(pattern, (Label, Epsilon)):
        return pattern
    if isinstance(pattern, Reverse):
        return Reverse(strip_skips(pattern.operand))
    if isinstance(pattern, Star):
        return Star(strip_skips(pattern.operand))
    if isinstance(pattern, Nested):
        return Nested(strip_skips(pattern.operand))
    if isinstance(pattern, Concat):
        return Concat([strip_skips(part) for part in pattern.parts])
    if isinstance(pattern, Union):
        return Union([strip_skips(part) for part in pattern.parts])
    if isinstance(pattern, Conj):
        return Conj([strip_skips(part) for part in pattern.parts])
    raise TypeError("not a pattern: {!r}".format(pattern))
