"""Commuting matrices for RREs (Section 4.3 of the paper).

For a pattern ``p`` over database ``D``, the commuting matrix ``M_p`` has
``M_p[u, v] = |I^{u,v}_D(p)|`` — the number of instances of ``p`` from
``u`` to ``v``.  The paper's recursive rules::

    M_a        = A_a                          (per-label adjacency)
    M_{p-}     = M_p^T
    M_{p1.p2}  = M_{p1} M_{p2}
    M_{p1+p2}  = M_{p1} + M_{p2}   if p1 != p2, else M_{p1}
    M_<<p>>    = M_p > 0                      (boolean / skip)
    M_[p]      = diag{ M_p (M_p^T > 0) }      (nested)
    M_{p*}     = I + M_p + M_p^2 + ...        (bounded; see below)

The engine memoizes per-pattern matrices, supports the paper's
"materialize all meta-paths up to length 3" setting, and exposes the
PathSim scoring helper used by both PathSim and RelSim.
"""

import itertools
from collections import OrderedDict

import numpy as np

from repro.exceptions import EvaluationError, StarDivergenceError
from repro.graph.matrices import MatrixView, boolean, diagonal_of
from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Pattern,
    Reverse,
    Skip,
    Star,
    Union,
    simple_pattern,
)


class CommutingMatrixEngine:
    """Computes and caches commuting matrices over one database snapshot.

    Parameters
    ----------
    database_or_view:
        Either a :class:`GraphDatabase` (a fresh :class:`MatrixView` is
        built) or an existing view — pass a view built on a *shared*
        :class:`NodeIndexer` when comparing scores across structural
        variants of the same database.
    max_star_depth:
        Expansion bound for Kleene star counting; default is the node
        count.  Divergence raises :class:`StarDivergenceError`.
    max_cached_matrices:
        When set, bound the number of memoized commuting matrices (and
        their derived column norms) with LRU eviction.  ``None`` (the
        default) keeps every matrix, matching the paper's
        "materialize and pre-load" setting; a session serving many
        ad-hoc patterns caps memory with this knob.
    """

    def __init__(
        self, database_or_view, max_star_depth=None, max_cached_matrices=None
    ):
        if isinstance(database_or_view, MatrixView):
            self._view = database_or_view
        else:
            self._view = MatrixView(database_or_view)
        if max_star_depth is None:
            max_star_depth = max(self._view.num_nodes(), 1)
        if max_cached_matrices is not None and max_cached_matrices < 1:
            raise ValueError(
                "max_cached_matrices must be >= 1 or None, got {}".format(
                    max_cached_matrices
                )
            )
        self._max_star_depth = max_star_depth
        self._max_cached = max_cached_matrices
        self._cache = OrderedDict()
        self._column_norms = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def view(self):
        return self._view

    @property
    def indexer(self):
        return self._view.indexer

    def matrix(self, pattern):
        """The commuting matrix ``M_pattern`` (CSR, cached)."""
        if not isinstance(pattern, Pattern):
            raise TypeError(
                "pattern must be a Pattern AST, got {!r}".format(pattern)
            )
        cached = self._cache.get(pattern)
        if cached is None:
            self._misses += 1
            cached = self._compute(pattern)
            self._cache[pattern] = cached
            self._evict()
        else:
            self._hits += 1
            self._cache.move_to_end(pattern)
        return cached

    def _evict(self):
        if self._max_cached is None:
            return
        while len(self._cache) > self._max_cached:
            evicted, _ = self._cache.popitem(last=False)
            self._column_norms.pop(evicted, None)
        while len(self._column_norms) > self._max_cached:
            self._column_norms.popitem(last=False)

    def column_norms(self, pattern):
        """Euclidean norm of each column of ``M_pattern`` (cached).

        Shared denominator of the cosine scoring mode; caching it here
        (instead of per algorithm instance) lets every algorithm built on
        the same engine — e.g. through one ``SimilaritySession`` — reuse
        the vector.
        """
        norms = self._column_norms.get(pattern)
        if norms is None:
            matrix = self.matrix(pattern)
            squared = matrix.multiply(matrix).sum(axis=0)
            norms = np.sqrt(np.asarray(squared).ravel())
            self._column_norms[pattern] = norms
            self._evict()
        else:
            self._column_norms.move_to_end(pattern)
            # A norms hit is a use of the pattern's matrix too: refresh
            # its LRU slot so a hot pattern's matrix is not evicted out
            # from under its surviving norms.
            if pattern in self._cache:
                self._cache.move_to_end(pattern)
        return norms

    def _compute(self, pattern):
        if isinstance(pattern, Epsilon):
            return self._view.identity()
        if isinstance(pattern, Label):
            return self._view.adjacency(pattern.name)
        if isinstance(pattern, Reverse):
            return self.matrix(pattern.operand).T.tocsr()
        if isinstance(pattern, Concat):
            product = self.matrix(pattern.parts[0])
            for part in pattern.parts[1:]:
                product = product @ self.matrix(part)
            return product.tocsr()
        if isinstance(pattern, Union):
            # The paper sums distinct disjuncts only (M_{p+p} = M_p).
            unique = []
            for part in pattern.parts:
                if part not in unique:
                    unique.append(part)
            total = self.matrix(unique[0])
            for part in unique[1:]:
                total = total + self.matrix(part)
            return total.tocsr()
        if isinstance(pattern, Skip):
            return boolean(self.matrix(pattern.operand))
        if isinstance(pattern, Nested):
            inner = self.matrix(pattern.operand)
            return diagonal_of(inner @ boolean(inner.T)).tocsr()
        if isinstance(pattern, Star):
            return self._star(pattern)
        if isinstance(pattern, Conj):
            # Conjunctive RRE: an instance is one sub-instance per
            # conjunct with shared endpoints, so counts multiply
            # entrywise (Hadamard product).
            product = self.matrix(pattern.parts[0])
            for part in pattern.parts[1:]:
                product = product.multiply(self.matrix(part))
            return product.tocsr()
        raise TypeError("unhandled pattern node {!r}".format(pattern))

    def _star(self, pattern):
        base = self.matrix(pattern.operand)
        total = self._view.identity()
        power = base.copy()
        depth = 1
        while power.nnz > 0:
            if depth > self._max_star_depth:
                raise StarDivergenceError(pattern, self._max_star_depth)
            total = total + power
            power = (power @ base).tocsr()
            depth += 1
        return total.tocsr()

    # ------------------------------------------------------------------
    # Materialization (the paper pre-loads meta-paths up to length 3)
    # ------------------------------------------------------------------
    def materialize_simple_patterns(self, max_length=3, labels=None):
        """Precompute commuting matrices for all meta-paths up to a length.

        Mirrors the experimental setting of Section 7.3: "commuting
        matrices of all meta-paths up to size 3 are materialized and
        pre-loaded".  Returns the number of matrices now cached.

        Raises :class:`~repro.exceptions.EvaluationError` when the
        requested pattern set does not fit under
        ``max_cached_matrices`` — materialization under a too-small cap
        would evict each matrix as the next is built.
        """
        if labels is None:
            labels = sorted(self._view.database.used_labels())
        steps = [(name, False) for name in labels]
        steps += [(name, True) for name in labels]
        if self._max_cached is not None:
            total = sum(
                len(steps) ** length for length in range(1, max_length + 1)
            )
            if total > self._max_cached:
                # Materializing past the cap would silently thrash the
                # LRU (each new matrix evicting the last) and return a
                # capped, misleading count.
                raise EvaluationError(
                    "materializing {} simple patterns (labels={}, "
                    "max_length={}) exceeds max_cached_matrices={}; raise "
                    "the cap or materialize fewer patterns".format(
                        total, sorted(labels), max_length, self._max_cached
                    )
                )
        for length in range(1, max_length + 1):
            for combo in itertools.product(steps, repeat=length):
                self.matrix(simple_pattern(list(combo)))
        return len(self._cache)

    def cache_size(self):
        return len(self._cache)

    def cache_info(self):
        """``{"matrices", "column_norms", "hits", "misses", "max_cached"}``."""
        return {
            "matrices": len(self._cache),
            "column_norms": len(self._column_norms),
            "hits": self._hits,
            "misses": self._misses,
            "max_cached": self._max_cached,
        }

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------
    def count(self, pattern, u, v):
        """``|I^{u,v}(pattern)|`` as a float (exact for realistic sizes)."""
        matrix = self.matrix(pattern)
        return float(
            matrix[self.indexer.index_of(u), self.indexer.index_of(v)]
        )

    def pathsim_score(self, pattern, u, v):
        """Equation 1: ``2 M(u,v) / (M(u,u) + M(v,v))`` (0 when undefined)."""
        matrix = self.matrix(pattern)
        iu = self.indexer.index_of(u)
        iv = self.indexer.index_of(v)
        denominator = matrix[iu, iu] + matrix[iv, iv]
        if denominator == 0:
            return 0.0
        return float(2.0 * matrix[iu, iv] / denominator)

    def pathsim_scores_from(self, pattern, u):
        """PathSim scores from ``u`` to every node, as a dense vector.

        Vectorized version of :meth:`pathsim_score` used by the ranking
        algorithms: one sparse row extraction plus the diagonal.
        """
        return self.pathsim_scores_from_many(pattern, [u])[0]

    def rows_dense(self, pattern, nodes):
        """``M_pattern[rows, :]`` as a dense ``(len(nodes), n)`` array.

        The batch-query primitive: one sparse row slice replaces
        per-query row extraction, so a workload of ``q`` queries costs a
        single ``matrix[rows, :]`` per pattern.
        """
        matrix = self.matrix(pattern)
        indices = [self.indexer.index_of(node) for node in nodes]
        return np.asarray(matrix[indices, :].todense())

    def pathsim_scores_from_many(self, pattern, nodes):
        """PathSim score rows for several queries at once.

        Returns a dense ``(len(nodes), n)`` array whose row ``i`` equals
        :meth:`pathsim_scores_from` for ``nodes[i]`` — computed from one
        sparse row slice plus the diagonal instead of per-query
        extraction.
        """
        matrix = self.matrix(pattern)
        indices = [self.indexer.index_of(node) for node in nodes]
        rows = np.asarray(matrix[indices, :].todense())
        diagonal = matrix.diagonal()
        # denominator[i, v] = M(u_i, u_i) + M(v, v)
        denominator = diagonal[indices][:, None] + diagonal[None, :]
        scores = np.zeros_like(rows)
        positive = denominator > 0
        scores[positive] = 2.0 * rows[positive] / denominator[positive]
        return scores
