"""Commuting matrices for RREs (Section 4.3 of the paper).

For a pattern ``p`` over database ``D``, the commuting matrix ``M_p`` has
``M_p[u, v] = |I^{u,v}_D(p)|`` — the number of instances of ``p`` from
``u`` to ``v``.  The paper's recursive rules::

    M_a        = A_a                          (per-label adjacency)
    M_{p-}     = M_p^T
    M_{p1.p2}  = M_{p1} M_{p2}
    M_{p1+p2}  = M_{p1} + M_{p2}   if p1 != p2, else M_{p1}
    M_<<p>>    = M_p > 0                      (boolean / skip)
    M_[p]      = diag{ M_p (M_p^T > 0) }      (nested)
    M_{p*}     = I + M_p + M_p^2 + ...        (bounded; see below)

The engine **compiles before it executes**: every pattern goes through
the plan compiler (:mod:`repro.lang.plan`), which canonicalizes it
(reverse pushed to leaves, unions deduplicated and sorted, ...) and
interns the result into a plan DAG.  The memo cache is keyed on
canonical plan nodes, so associativity-equivalent and
reverse-normalized spellings of the same pattern share one cache entry,
shared sub-plans across a pattern set are evaluated exactly once
(cross-pattern CSE), and concatenation chains are multiplied in a
cost-chosen order (sparse matrix-chain ordering over nnz estimates).
``matrices_many`` is the batch entry point that lets the compiler see a
whole pattern set — e.g. Algorithm 1's expansion — before any chain
order is fixed.

The engine also supports the paper's "materialize all meta-paths up to
length 3" setting and exposes the PathSim scoring helper used by both
PathSim and RelSim.  The seed's direct AST recursion is kept as
:func:`naive_matrix` — the reference oracle the plan path is tested and
benchmarked against.
"""

import itertools
import threading
from collections import Counter, OrderedDict

import numpy as np
import scipy.sparse as sp

from repro.analysis import PatternTypeChecker, has_errors
from repro.exceptions import (
    ConfigurationError,
    EvaluationError,
    ReproError,
    StarDivergenceError,
)
from repro.graph.matrices import (
    MatrixView,
    boolean,
    dense_rows,
    diagonal_of,
    identity_patch,
    resized,
)
from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Pattern,
    Reverse,
    Skip,
    Star,
    Union,
    simple_pattern,
)
from repro.lang.plan import (
    PlanCompiler,
    embeds_identity,
    estimate_bytes,
    estimate_nnz,
    leaf_labels,
    order_chain,
    product_nnz,
    render_order,
)

#: Sentinel for a cache entry the delta pass cannot maintain cheaply —
#: it is dropped (lazily recomputed on next use) instead of patched.
_INVALID = object()


class ViewStats:
    """Adapter feeding graph statistics to the pattern type checker.

    The checker only needs node and per-label edge counts; routing them
    through the view reuses the adjacency cache the engine needs for
    evaluation anyway, so density warnings cost one ``nnz`` lookup per
    leaf.
    """

    __slots__ = ("_view",)

    def __init__(self, view):
        self._view = view

    def num_nodes(self):
        return self._view.num_nodes()

    def label_nnz(self, label):
        return self._view.adjacency(label).nnz


def _star_sum(identity, base, max_depth, origin):
    """``I + M + M^2 + ...`` with the divergence bound (shared helper)."""
    total = identity
    power = base.copy()
    depth = 1
    while power.nnz > 0:
        if depth > max_depth:
            raise StarDivergenceError(origin, max_depth)
        total = total + power
        power = (power @ base).tocsr()
        depth += 1
    return total.tocsr()


def pathsim_rows(matrix, indices, diagonal=None, out=None):
    """PathSim score rows for the given indexer ``indices``.

    ``scores[i, v] = 2 M[indices[i], v] / (M[indices[i], indices[i]] +
    M[v, v])`` with 0 where the denominator vanishes — Equation 1 over
    one sparse row slice.  A score can only be nonzero where the row
    itself is, so the arithmetic touches each row's stored entries
    instead of all ``n`` columns (the serving hot path runs this per
    pattern per request).  Pass a precomputed ``diagonal`` to skip
    re-extracting it on every call; ``matrix`` must be canonical CSR.

    With ``out`` (a ``(len(indices), n)`` float array), scores are
    *added* into it and ``out`` is returned — the accumulator form
    RelSim uses to sum a 16-pattern expansion without allocating a
    dense block per pattern.
    """
    if diagonal is None:
        diagonal = matrix.diagonal()
    scores = out
    if scores is None:
        scores = np.zeros((len(indices), matrix.shape[1]))
    indptr, columns, data = matrix.indptr, matrix.indices, matrix.data
    for i, row in enumerate(indices):
        start, end = indptr[row], indptr[row + 1]
        cols = columns[start:end]
        denominator = diagonal[row] + diagonal[cols]
        positive = denominator > 0
        if not positive.all():
            cols = cols[positive]
            denominator = denominator[positive]
            values = data[start:end][positive]
        else:
            values = data[start:end]
        scores[i, cols] += 2.0 * values / denominator
    return scores


def pathsim_columns(matrix, row, diagonal, columns, out):
    """Add one row's PathSim contributions at selected ``columns`` only.

    The column-restricted form of :func:`pathsim_rows`, used by
    standing-query maintenance to rescore just the candidates a delta
    touched.  ``columns`` must be a sorted index array and ``out`` a
    parallel accumulator.  Every arithmetic step is the same elementwise
    operation :func:`pathsim_rows` performs on the full stored row
    (``2.0 * value / (diag[row] + diag[col])`` over stored entries with
    a positive denominator), so the accumulated scores are bitwise
    identical to the corresponding slots of a full scoring pass.
    """
    start, end = matrix.indptr[row], matrix.indptr[row + 1]
    cols = matrix.indices[start:end]
    positions = np.searchsorted(columns, cols)
    inside = positions < len(columns)
    selected = inside.copy()
    selected[inside] = columns[positions[inside]] == cols[inside]
    if not selected.any():
        return out
    cols = cols[selected]
    values = matrix.data[start:end][selected]
    positions = positions[selected]
    denominator = diagonal[row] + diagonal[cols]
    positive = denominator > 0
    if not positive.all():
        positions = positions[positive]
        values = values[positive]
        denominator = denominator[positive]
    out[positions] += 2.0 * values / denominator
    return out


def naive_matrix(view, pattern, max_star_depth=None, cache=None):
    """Seed-style recursive evaluation of one pattern AST (the oracle).

    Walks the AST directly — no canonicalization, no plan DAG, chains
    multiplied left-to-right — memoizing per AST node in ``cache``
    (fresh per call unless provided).  This is exactly the pre-plan
    engine semantics; the plan compiler's property tests and the
    plan-vs-naive benchmark compare against it, and "per-pattern cold
    evaluation" in the benchmark means one fresh ``cache`` per pattern.
    """
    if max_star_depth is None:
        max_star_depth = max(view.num_nodes(), 1)
    if cache is None:
        cache = {}

    def recurse(node):
        cached = cache.get(node)
        if cached is not None:
            return cached
        if isinstance(node, Epsilon):
            result = view.identity()
        elif isinstance(node, Label):
            result = view.adjacency(node.name)
        elif isinstance(node, Reverse):
            result = recurse(node.operand).T.tocsr()
        elif isinstance(node, Concat):
            result = recurse(node.parts[0])
            for part in node.parts[1:]:
                result = result @ recurse(part)
            result = result.tocsr()
        elif isinstance(node, Union):
            # The paper sums distinct disjuncts only (M_{p+p} = M_p).
            unique = []
            for part in node.parts:
                if part not in unique:
                    unique.append(part)
            result = recurse(unique[0])
            for part in unique[1:]:
                result = result + recurse(part)
            result = result.tocsr()
        elif isinstance(node, Skip):
            result = boolean(recurse(node.operand))
        elif isinstance(node, Nested):
            inner = recurse(node.operand)
            result = diagonal_of(inner @ boolean(inner.T)).tocsr()
        elif isinstance(node, Star):
            result = _star_sum(
                view.identity(), recurse(node.operand), max_star_depth, node
            )
        elif isinstance(node, Conj):
            result = recurse(node.parts[0])
            for part in node.parts[1:]:
                result = result.multiply(recurse(part))
            result = result.tocsr()
        else:
            raise TypeError("unhandled pattern node {!r}".format(node))
        cache[node] = result
        return result

    if not isinstance(pattern, Pattern):
        raise TypeError(
            "pattern must be a Pattern AST, got {!r}".format(pattern)
        )
    return recurse(pattern)


class CommutingMatrixEngine:
    """Computes and caches commuting matrices over one database snapshot.

    Parameters
    ----------
    database_or_view:
        Either a :class:`GraphDatabase` (a fresh :class:`MatrixView` is
        built) or an existing view — pass a view built on a *shared*
        :class:`NodeIndexer` when comparing scores across structural
        variants of the same database.
    max_star_depth:
        Expansion bound for Kleene star counting; default is the node
        count.  Divergence raises :class:`StarDivergenceError`.
    max_cached_matrices:
        When set, bound the number of memoized commuting matrices (and
        their derived column norms) with LRU eviction.  ``None`` (the
        default) keeps every matrix, matching the paper's
        "materialize and pre-load" setting; a session serving many
        ad-hoc patterns caps memory with this knob.  ``cache_info()``
        reports the cached total nnz and approximate bytes, so the cap
        can be tuned by measured size rather than guessed count.
    memory_budget:
        When set, a *byte* bound on the cache (CSR buffers plus derived
        norm/diagonal vectors).  A count cap alone cannot prevent OOM —
        a handful of dense-ish plan products can dwarf a thousand
        sparse ones — so the budget evicts LRU-first by measured bytes
        at every publish.  A single product larger than the whole
        budget is still *computed and returned* to its caller, just
        never retained (it "spills": the next use recomputes), so
        queries complete with bitwise-identical results instead of
        dying.  The budget also arms the streaming chain executor: an
        oversized uncached chain intermediate is evaluated in row
        blocks under the budget instead of materialized whole.
        ``cache_info()`` reports ``memory_budget`` / ``budget_used`` /
        ``spilled`` / ``streamed``.

    The cache is keyed on canonical *plan nodes*, not raw ASTs: any two
    patterns with the same canonical form — ``(a.b)-`` and ``b-.a-``,
    ``a+b`` and ``b+a``, re-parenthesized concatenations — share one
    entry, and intermediate chain products live in the same LRU, so a
    sub-chain shared across patterns is computed once.  (Plan nodes and
    the pattern->plan memo are retained for the engine's lifetime; they
    are a few hundred bytes each, negligible next to one matrix.)

    The engine is thread-safe: the matrix and column-norm LRUs are
    lock-guarded with double-checked access — products are computed
    *outside* the lock and published under it, so N serving threads
    share one engine without serializing on sparse multiplications (a
    concurrent duplicate computation loses the publish race and adopts
    the winner's matrix).  The plan compiler carries its own lock for
    the interning tables and chain-ordering decisions.
    """

    def __init__(
        self,
        database_or_view,
        max_star_depth=None,
        max_cached_matrices=None,
        memory_budget=None,
        delta_rebuild_threshold=0.25,
    ):
        if isinstance(database_or_view, MatrixView):
            self._view = database_or_view
        else:
            self._view = MatrixView(database_or_view)
        self._default_star_depth = max_star_depth is None
        if max_star_depth is None:
            max_star_depth = max(self._view.num_nodes(), 1)
        if max_cached_matrices is not None and max_cached_matrices < 1:
            raise ConfigurationError(
                "max_cached_matrices must be >= 1 or None, got {}".format(
                    max_cached_matrices
                )
            )
        if memory_budget is not None and memory_budget < 1:
            raise ConfigurationError(
                "memory_budget must be >= 1 byte or None, got {}".format(
                    memory_budget
                )
            )
        self._max_star_depth = max_star_depth
        self._max_cached = max_cached_matrices
        self._memory_budget = (
            None if memory_budget is None else int(memory_budget)
        )
        self._rebuild_threshold = float(delta_rebuild_threshold)
        # Every new pattern is statically type-checked against the
        # database schema before it compiles: ill-typed patterns raise
        # PatternTypeError here instead of evaluating to an empty or
        # nonsensical ranking.  Untyped schemas (no node_types) only
        # ever reject unknown labels.
        self._checker = PatternTypeChecker(
            self._view.database.schema, stats=ViewStats(self._view)
        )
        self._compiler = PlanCompiler(checker=self._checker)
        self._lock = threading.RLock()
        self._cache = OrderedDict()
        self._column_norms = OrderedDict()
        self._diagonals = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._spilled = 0
        self._streamed = 0
        # Bumped by apply_delta: a computation started against the old
        # snapshot must not publish into the patched cache.
        self._generation = 0
        self._patched = 0
        self._invalidated = 0
        self._delta_applies = 0

    @property
    def view(self):
        return self._view

    @property
    def indexer(self):
        return self._view.indexer

    @property
    def compiler(self):
        """The engine's plan compiler (one interner per snapshot)."""
        return self._compiler

    @property
    def max_cached_matrices(self):
        """The LRU cap (``None`` = keep everything)."""
        return self._max_cached

    @property
    def memory_budget(self):
        """The cache byte budget (``None`` = unbounded)."""
        return self._memory_budget

    def warm_exceeds_limits(self, patterns):
        """True when pinning the whole pattern set would defeat the cache.

        The serving layers ask this before *warming* a pattern set (and
        holding strong references to every matrix at once): a set larger
        than ``max_cached_matrices``, or whose estimated resident bytes
        exceed ``memory_budget``, would thrash the LRU during the warm
        and then bypass the limit through the pinned references.  Such
        callers fall back to the per-call compute path — same results,
        bounded memory.
        """
        plans = [self.compile(pattern) for pattern in patterns]
        if self._max_cached is not None and len(plans) > self._max_cached:
            return True
        if self._memory_budget is not None:
            n = self._view.num_nodes()
            estimated = sum(
                estimate_bytes(plan, self._leaf_nnz, n)
                for plan in dict.fromkeys(plans)
            )
            if estimated > self._memory_budget:
                return True
        return False

    # ------------------------------------------------------------------
    # Compile and execute
    # ------------------------------------------------------------------
    def compile(self, pattern):
        """The canonical :class:`~repro.lang.plan.PlanNode` for a pattern."""
        if not isinstance(pattern, Pattern):
            raise TypeError(
                "pattern must be a Pattern AST, got {!r}".format(pattern)
            )
        return self._compiler.compile(pattern)

    def check(self, patterns):
        """Static diagnostics for a pattern set, without compiling it.

        Returns ``[(pattern, [Diagnostic, ...]), ...]`` in input order —
        errors *and* warnings, nothing raised.  This is the inspection
        entry (``repro check``, ``/check`` over HTTP); the enforcement
        path is :meth:`compile`, which raises
        :class:`~repro.exceptions.PatternTypeError` on errors.
        """
        return self._checker.check_many(patterns)

    def matrix(self, pattern):
        """The commuting matrix ``M_pattern`` (CSR, cached)."""
        return self._plan_matrix(self.compile(pattern))

    def matrices_many(self, patterns):
        """Commuting matrices for a whole pattern set (list, input order).

        The batch entry point: every pattern is *compiled* before any is
        *executed*, so the chain-ordering step sees complete sub-chain
        sharing statistics and each shared prefix/sub-chain of the set
        is evaluated exactly once.  This is how RelSim evaluates an
        Algorithm-1 expansion.
        """
        plans = [self.compile(pattern) for pattern in patterns]
        return [self._plan_matrix(plan) for plan in plans]

    def warm(self, patterns, norms=False):
        """Materialize a pattern set now (the serving warm-set entry).

        Runs the whole set through :meth:`matrices_many` (batch compile,
        then execute with full sharing statistics) and, when ``norms``
        is True, also computes the cosine column norms for each pattern.
        Returns the matrices in input order.  Prepared queries call this
        so their hot path starts from pure cache hits.
        """
        patterns = list(patterns)
        matrices = self.matrices_many(patterns)
        if norms:
            for pattern in patterns:
                self.column_norms(pattern)
        return matrices

    # ------------------------------------------------------------------
    # Incremental delta maintenance
    # ------------------------------------------------------------------
    def fork(self, database):
        """A new engine over ``database`` inheriting this engine's caches.

        The incremental-serving idiom: fork the serving engine onto a
        private copy of its database, :meth:`apply_delta` on the fork,
        and publish the fork as the new snapshot — the original engine
        (and every matrix it handed out) keeps serving the old snapshot
        untouched, because cached matrices are shared but never mutated,
        only replaced in the fork's own cache.

        The plan compiler is shared (canonical plan nodes keep keying
        both engines' caches — that sharing is what lets the fork patch
        the parent's materialized products), as are the LRU cap, star
        bound, rebuild threshold, and hit/miss counters.
        """
        clone = CommutingMatrixEngine.__new__(CommutingMatrixEngine)
        clone._view = self._view.fork(database)
        clone._default_star_depth = self._default_star_depth
        clone._max_star_depth = self._max_star_depth
        clone._max_cached = self._max_cached
        clone._memory_budget = self._memory_budget
        clone._rebuild_threshold = self._rebuild_threshold
        # Shared with the compiler: a delta never changes the schema, so
        # the parent's checker stays exact for the fork (its density
        # *estimates* read the parent view — a warning-tier approximation).
        clone._checker = self._checker
        clone._compiler = self._compiler
        clone._lock = threading.RLock()
        with self._lock:
            clone._cache = OrderedDict(self._cache)
            clone._column_norms = OrderedDict(self._column_norms)
            clone._diagonals = OrderedDict(self._diagonals)
            clone._hits = self._hits
            clone._misses = self._misses
            clone._spilled = self._spilled
            clone._streamed = self._streamed
            clone._generation = self._generation
            clone._patched = self._patched
            clone._invalidated = self._invalidated
            clone._delta_applies = self._delta_applies
        return clone

    def apply_delta(self, edges_added=(), edges_removed=(), nodes_added=()):
        """Apply an edge/node delta and maintain every cached matrix, in place.

        The delta is validated and applied to the database and the
        matrix view (:meth:`MatrixView.apply_delta` — a failing delta
        raises with everything untouched), then the per-label adjacency
        patches ``ΔA`` are propagated through the cached plan-DAG
        products using

            ``Δ(AB) = ΔA·B + A·ΔB + ΔA·ΔB``,

        evaluated as ``ΔA·B_new + A_new·ΔB − ΔA·ΔB`` over the
        already-updated inputs.  Resolution is memoized per plan node,
        so a sub-chain shared by any number of cached patterns is
        updated **exactly once**; entries whose labels the delta does
        not touch are kept as-is without being examined (beyond a
        memoized label-set check).  An entry whose input delta is denser
        than ``delta_rebuild_threshold`` x the input's nnz — or whose
        cheap-update inputs are missing (LRU-evicted children, a
        changed Kleene-star base) — is **invalidated**: dropped from
        the cache and lazily recomputed on next use, never silently
        served stale.

        All patch arithmetic is exact: commuting matrices hold integer
        instance counts (float64 is exact below ``2**53``), so a patched
        matrix — and the rankings computed from it — is bitwise
        identical to a full rebuild.  The cached PathSim diagonals are
        patched in place (``old + Δ.diagonal()``); cosine column norms
        of changed matrices are dropped and recomputed on demand.

        Readers racing an in-place ``apply_delta`` are generation-fenced
        (a compute begun on the old snapshot never publishes into the
        patched cache); for strict snapshot isolation, run this on a
        :meth:`fork` and swap, as :class:`~repro.api.service.SimilarityService`
        does.

        Returns a stats dict: ``patched`` / ``kept`` / ``invalidated``
        cache-entry counts, ``entries`` (cache size after), ``labels``
        (touched labels) and ``nodes_added``.
        """
        with self._lock:
            # The view is patched *inside* the engine lock and the
            # generation bumped in the same critical section: cache
            # lookups are blocked until the patched cache is published,
            # and any compute that began against the old snapshot (or
            # read mid-patch adjacencies) fails the generation fence at
            # publish time and retries — a stale or mixed matrix can
            # never enter the patched cache, and propagation can never
            # mistake a post-delta publish for a pre-delta entry.
            self._generation += 1
            delta = self._view.apply_delta(
                edges_added=edges_added,
                edges_removed=edges_removed,
                nodes_added=nodes_added,
            )
            self._delta_applies += 1
            if self._default_star_depth:
                self._max_star_depth = max(delta.num_nodes, 1)
            return self._propagate_delta_locked(delta)

    @staticmethod
    def _fast_csr(data, indices, indptr, n):
        """A canonical CSR from trusted buffers, skipping validation.

        SciPy's constructor re-derives index dtypes and checks formats —
        an O(nnz) scan per call that dominates small-delta propagation.
        Callers guarantee sorted, deduplicated, zero-free buffers.
        """
        matrix = sp.csr_matrix((n, n), dtype=np.float64)
        matrix.data = data
        matrix.indices = indices
        matrix.indptr = indptr
        matrix.has_canonical_format = True
        return matrix

    @classmethod
    def _tiny_matmul(cls, delta, matrix, n):
        """``delta @ matrix`` for a delta with very few entries.

        Each delta entry ``(i, j, v)`` contributes ``v * matrix[j, :]``
        to result row ``i``, so the product is a handful of scaled CSR
        row slices — O(delta nnz x row length) with no full-matrix
        symbolic pass.  SciPy's matmul would scan the large operand's
        index arrays per call, which dominates single-edge delta
        propagation.
        """
        coo = delta.tocoo()
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        rows, cols, vals = [], [], []
        for i, j, v in zip(coo.row, coo.col, coo.data):
            start, end = indptr[j], indptr[j + 1]
            if start == end:
                continue
            rows.append(np.full(end - start, i, dtype=np.intp))
            cols.append(indices[start:end])
            vals.append(v * data[start:end])
        if not rows:
            return sp.csr_matrix((n, n), dtype=np.float64)
        rows = np.concatenate(rows)
        cols = np.concatenate(cols)
        vals = np.concatenate(vals)
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        # Collapse duplicate (row, col) positions, drop exact cancels.
        fresh = np.empty(len(rows), dtype=bool)
        fresh[:1] = True
        np.logical_or(
            rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=fresh[1:]
        )
        starts = np.flatnonzero(fresh)
        sums = np.add.reduceat(vals, starts)
        rows, cols = rows[starts], cols[starts]
        keep = sums != 0
        rows, cols, sums = rows[keep], cols[keep], sums[keep]
        counts = np.bincount(rows, minlength=n)
        result_indptr = np.zeros(n + 1, dtype=indptr.dtype)
        np.cumsum(counts, out=result_indptr[1:])
        return cls._fast_csr(
            sums, cols.astype(indices.dtype), result_indptr, n
        )

    @classmethod
    def _apply_patch(cls, old, d, n):
        """``old + d`` as a canonical no-explicit-zeros CSR.

        For a delta touching a handful of rows, the untouched row spans
        of ``old`` are spliced through by slicing and only the touched
        rows are merge-sorted, summed, and zero-pruned.  Wider deltas
        fall back to SciPy's C merge, skipping its canonical re-check
        (both operands are canonical, so the sum is) and pruning
        explicit zeros only when the delta can cancel entries.  ``old``
        must already be at shape ``(n, n)``; both operands canonical.
        """
        od, oi, op = old.data, old.indices, old.indptr
        dd, di, dp = d.data, d.indices, d.indptr
        touched = np.flatnonzero(np.diff(dp))
        if len(touched) > 8:
            new = old + d
            new.has_canonical_format = True
            if dd.min() < 0:
                new.eliminate_zeros()
            return new
        counts = np.diff(op).copy()
        data_parts, index_parts = [], []
        previous = 0
        for row in touched:
            data_parts.append(od[op[previous]:op[row]])
            index_parts.append(oi[op[previous]:op[row]])
            cols = np.concatenate(
                [oi[op[row]:op[row + 1]], di[dp[row]:dp[row + 1]]]
            )
            vals = np.concatenate(
                [od[op[row]:op[row + 1]], dd[dp[row]:dp[row + 1]]]
            )
            order = np.argsort(cols, kind="stable")
            cols, vals = cols[order], vals[order]
            fresh = np.empty(len(cols), dtype=bool)
            fresh[:1] = True
            np.not_equal(cols[1:], cols[:-1], out=fresh[1:])
            starts = np.flatnonzero(fresh)
            sums = np.add.reduceat(vals, starts)
            cols = cols[starts]
            keep = sums != 0
            cols, sums = cols[keep], sums[keep]
            data_parts.append(sums)
            index_parts.append(cols)
            counts[row] = len(cols)
            previous = row + 1
        data_parts.append(od[op[previous]:])
        index_parts.append(oi[op[previous]:])
        indptr = np.zeros(n + 1, dtype=op.dtype)
        np.cumsum(counts, out=indptr[1:])
        return cls._fast_csr(
            np.concatenate(data_parts),
            np.concatenate(index_parts).astype(oi.dtype),
            indptr,
            n,
        )

    @classmethod
    def _entries_csr(cls, rows, cols, vals, n, index_dtype):
        """A CSR from row-major-sorted, unique, nonzero entry arrays."""
        counts = np.bincount(rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=index_dtype)
        np.cumsum(counts, out=indptr[1:])
        return cls._fast_csr(
            np.asarray(vals, dtype=np.float64),
            np.asarray(cols, dtype=index_dtype),
            indptr,
            n,
        )

    @staticmethod
    def _values_at(matrix, rows, cols):
        """``matrix[rows[k], cols[k]]`` for parallel position arrays.

        Binary search within each row of a canonical CSR — O(k log
        degree), no row materialization.  The probe under the bool-node
        delta rule (a boolean entry can only flip where the underlying
        count changed).
        """
        out = np.zeros(len(rows), dtype=np.float64)
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        for k in range(len(rows)):
            start, end = indptr[rows[k]], indptr[rows[k] + 1]
            position = start + np.searchsorted(indices[start:end], cols[k])
            if position < end and indices[position] == cols[k]:
                out[k] = data[position]
        return out

    def _propagate_delta_locked(self, delta):
        n = delta.num_nodes
        grew = delta.grew
        patches = delta.patches
        touched = frozenset(patches)
        threshold = self._rebuild_threshold
        old_cache = self._cache
        zero = sp.csr_matrix((n, n), dtype=np.float64)
        ipatch = (
            identity_patch(range(delta.old_num_nodes, n), n) if grew else None
        )
        memo = {}
        canonical = self._canonicalize
        tiny_matmul = self._tiny_matmul
        apply_patch = self._apply_patch
        #: Use the scaled-row-slice kernel below this many delta
        #: entries; larger deltas amortize SciPy's matmul overhead.
        tiny_cap = 64

        def is_zero(d):
            return d is not None and d.nnz == 0

        def product(a, b):
            if a.nnz <= tiny_cap:
                return tiny_matmul(a, b, n)
            return canonical(a @ b)

        def resolve(node):
            # (new, delta, old) triples for nodes the pass can maintain
            # cheaply — ``old`` is the pre-delta matrix at the *new*
            # shape (None when unavailable), ``delta`` None means "new
            # at hand, delta unknown".  _INVALID = nothing cheap.
            # Memoized: each shared sub-plan of the DAG is resolved
            # exactly once per delta.
            result = memo.get(node)
            if result is None:
                memo[node] = result = compute(node)
            return result

        def unchanged(old):
            matrix = resized(old, n) if grew else old
            return (matrix, zero, matrix)

        def compute(node):
            old = old_cache.get(node)
            # Fast path: the delta cannot touch this plan's matrix
            # (disjoint labels, and no embedded identity when the node
            # set grew) — keep the entry, at most resized.
            if (
                old is not None
                and not (leaf_labels(node) & touched)
                and (not grew or not embeds_identity(node))
            ):
                return unchanged(old)
            kind = node.kind
            if kind == "eps":
                identity = self._view.identity()
                if not grew:
                    return (identity, zero, identity)
                return (identity, ipatch, resized(old, n) if old is not None else None)
            if kind == "leaf":
                new = self._view.adjacency(node.payload)
                patch = patches.get(node.payload)
                if patch is None:
                    return (new, zero, new)
                return (
                    new,
                    patch,
                    resized(old, n) if old is not None else None,
                )
            if kind == "transpose":
                # Canonical transposes sit on leaves: always cheap.
                child_new, child_delta, child_old = resolve(node.children[0])
                if old is not None and is_zero(child_delta):
                    return unchanged(old)
                return (
                    canonical(child_new.T),
                    None
                    if child_delta is None
                    else canonical(child_delta.T),
                    resized(old, n)
                    if old is not None
                    else (
                        None if child_old is None else canonical(child_old.T)
                    ),
                )
            if kind == "chain":
                if old is None:
                    return _INVALID
                self._ensure_ordered(node)
                left = resolve(node.left)
                right = resolve(node.right)
                if left is _INVALID or right is _INVALID:
                    return _INVALID
                (l_new, dl, l_old) = left
                (r_new, dr, r_old) = right
                if dl is None or dr is None:
                    return _INVALID
                if dl.nnz == 0 and dr.nnz == 0:
                    return unchanged(old)
                if dl.nnz > threshold * max(l_new.nnz, 1) or (
                    dr.nnz > threshold * max(r_new.nnz, 1)
                ):
                    return _INVALID
                # Δ(LR) = ΔL·R_old + L_old·ΔR + ΔL·ΔR, folded into two
                # products over available operands:
                #   ΔL·R_new + L_old·ΔR  ==  ΔL·(R_old+ΔR) + L_old·ΔR.
                if l_old is None:
                    l_old = canonical(l_new - dl)
                d = zero
                if dl.nnz:
                    d = d + product(dl, r_new)
                if dr.nnz:
                    d = d + l_old @ dr
                d = canonical(d)
                old = resized(old, n)
                return (apply_patch(old, d, n), d, old)
            if kind == "add":
                parts = [resolve(child) for child in node.children]
                if any(part is _INVALID for part in parts):
                    return _INVALID
                if any(part[1] is None for part in parts) or old is None:
                    # No usable delta, but every summand's new matrix is
                    # at hand — summation is O(nnz), same as execution.
                    total = parts[0][0]
                    for part in parts[1:]:
                        total = total + part[0]
                    total = canonical(total)
                    if all(is_zero(part[1]) for part in parts):
                        return (total, zero, total)
                    return (
                        total,
                        None,
                        resized(old, n) if old is not None else None,
                    )
                if all(part[1].nnz == 0 for part in parts):
                    return unchanged(old)
                d = zero
                for part in parts:
                    if part[1].nnz:
                        d = d + part[1]
                d = canonical(d)
                old = resized(old, n)
                return (apply_patch(old, d, n), d, old)
            if kind == "hadamard":
                parts = [resolve(child) for child in node.children]
                if any(part is _INVALID for part in parts):
                    return _INVALID
                if old is not None and all(is_zero(part[1]) for part in parts):
                    return unchanged(old)
                new = parts[0][0]
                for part in parts[1:]:
                    new = new.multiply(part[0])
                new = canonical(new)
                if old is None:
                    return (new, None, None)
                old = resized(old, n)
                return (new, canonical(new - old), old)
            if kind == "bool":
                child = resolve(node.children[0])
                if child is _INVALID:
                    return _INVALID
                child_new, child_delta, _ = child
                if old is not None and is_zero(child_delta):
                    return unchanged(old)
                if child_delta is None or old is None or (
                    # The probe below is a per-entry binary search; for
                    # wide deltas the vectorized full re-threshold and
                    # diff is cheaper (same cutoff shape as the chain
                    # threshold, plus an absolute cap on loop length).
                    child_delta.nnz > 2048
                    or child_delta.nnz > threshold * max(child_new.nnz, 1)
                ):
                    new = boolean(child_new)
                    if old is None:
                        return (new, None, None)
                    old = resized(old, n)
                    return (new, canonical(new - old), old)
                # A boolean entry can only flip where the count changed:
                # probe the new counts on ΔM's support instead of
                # re-thresholding the whole matrix.
                coo = child_delta.tocoo()
                new_vals = self._values_at(child_new, coo.row, coo.col)
                flips = (new_vals > 0).astype(np.float64) - (
                    (new_vals - coo.data) > 0
                )
                mask = flips != 0
                old = resized(old, n)
                if not mask.any():
                    return (old, zero, old)
                d = self._entries_csr(
                    coo.row[mask],
                    coo.col[mask],
                    flips[mask],
                    n,
                    old.indices.dtype,
                )
                return (apply_patch(old, d, n), d, old)
            if kind == "nested":
                child = resolve(node.children[0])
                if child is _INVALID or old is None:
                    return _INVALID
                inner_delta = child[1]
                if is_zero(inner_delta):
                    return unchanged(old)
                if inner_delta is None:
                    return _INVALID
                # Over nonnegative count matrices, diag{M (M^T > 0)}[i]
                # is sum_j M[i, j] — the row sums — so the nested delta
                # is just ΔM's row sums on the diagonal.  No products.
                row_sums = np.asarray(inner_delta.sum(axis=1)).ravel()
                rows = np.flatnonzero(row_sums)
                old = resized(old, n)
                if not len(rows):
                    return (old, zero, old)
                d = self._entries_csr(
                    rows, rows, row_sums[rows], n, old.indices.dtype
                )
                return (apply_patch(old, d, n), d, old)
            if kind == "star":
                child = resolve(node.children[0])
                if child is _INVALID or old is None:
                    return _INVALID
                child_delta = child[1]
                if is_zero(child_delta):
                    if not grew:
                        return (old, zero, old)
                    # New nodes only: the bounded power sum gains
                    # exactly the identity's new diagonal ones.
                    old = resized(old, n)
                    return (apply_patch(old, ipatch, n), ipatch, old)
                # A changed star base reshapes every power — rebuild.
                return _INVALID
            raise TypeError("unhandled plan node kind {!r}".format(node.kind))

        patched = kept = invalidated = 0
        new_cache = OrderedDict()
        plan_deltas = {}
        pad = np.zeros(n - delta.old_num_nodes, dtype=np.float64)
        for plan in list(old_cache):
            result = resolve(plan)
            if result is _INVALID:
                invalidated += 1
                self._column_norms.pop(plan, None)
                self._diagonals.pop(plan, None)
                continue
            new, d, _ = result
            new_cache[plan] = new
            if d is not None:
                # Per-plan sparse deltas (zero for kept entries) feed
                # the subscription layer's targeted rescoring; a plan
                # absent from this map (invalidated, or maintained
                # without a delta) means "changed in an unknown way".
                plan_deltas[plan] = d
            if d is not None and d.nnz == 0:
                kept += 1
                if grew:
                    # Unchanged values, larger shape: pad the derived
                    # vectors (new columns are empty — zero norm/diag).
                    diag = self._diagonals.get(plan)
                    if diag is not None:
                        self._diagonals[plan] = np.concatenate([diag, pad])
                    norms = self._column_norms.get(plan)
                    if norms is not None:
                        self._column_norms[plan] = np.concatenate(
                            [norms, pad]
                        )
                continue
            patched += 1
            diag = self._diagonals.get(plan)
            if diag is not None:
                if d is None:
                    self._diagonals[plan] = new.diagonal()
                else:
                    if grew:
                        diag = np.concatenate([diag, pad])
                    self._diagonals[plan] = diag + d.diagonal()
            self._column_norms.pop(plan, None)
        # Sweep derived vectors whose matrix is gone (invalidated above,
        # or orphaned by an eviction race): a vector with no cached
        # matrix cannot be patched and must never be served stale.
        for store in (self._column_norms, self._diagonals):
            for plan in [key for key in store if key not in new_cache]:
                del store[plan]
        self._cache = new_cache
        self._patched += patched
        self._invalidated += invalidated
        # Patched entries can be larger than what they replaced (a
        # delta that densifies a product); re-assert the cache limits
        # so the byte budget holds across live updates too.
        self._evict()
        return {
            "patched": patched,
            "kept": kept,
            "invalidated": invalidated,
            "entries": len(new_cache),
            "labels": sorted(patches),
            "nodes_added": len(delta.added_nodes),
            "plan_deltas": plan_deltas,
        }

    def _plan_matrix(self, node):
        # Double-checked LRU access: look up under the lock, compute
        # outside it (sparse products can take seconds; holding the lock
        # would serialize every serving thread), publish under it.  Two
        # threads racing on a cold entry may both compute; the loser
        # adopts the published matrix, so callers always share one
        # object per plan node.  A generation bump (apply_delta landed
        # mid-compute) discards the now-stale result and recomputes
        # against the patched snapshot.
        while True:
            with self._lock:
                cached = self._cache.get(node)
                if cached is not None:
                    self._hits += 1
                    self._cache.move_to_end(node)
                    return cached
                generation = self._generation
            computed = self._execute(node)
            with self._lock:
                cached = self._cache.get(node)
                if cached is not None:
                    self._hits += 1
                    self._cache.move_to_end(node)
                    return cached
                if self._generation != generation:
                    continue
                self._misses += 1
                self._cache[node] = computed
                self._evict()
            return computed

    @staticmethod
    def _canonicalize(matrix):
        # Published matrices are canonical CSR with no explicit zeros:
        # dense_rows/pathsim_rows need sorted deduplicated buffers, and
        # delta maintenance relies on a patched entry being structurally
        # identical to a fresh rebuild (sparse matmul emits unsorted
        # indices, so products must be normalized before caching).
        # Canonicalizing at publish time also means no later caller ever
        # sorts a cached matrix in place — buffers shared across forked
        # engines stay frozen.
        matrix = matrix.tocsr()
        matrix.sum_duplicates()
        matrix.eliminate_zeros()
        return matrix

    def _execute(self, node):
        kind = node.kind
        if kind == "eps":
            result = self._view.identity()
        elif kind == "leaf":
            result = self._view.adjacency(node.payload)
        elif kind == "transpose":
            result = self._plan_matrix(node.children[0]).T.tocsr()
        elif kind == "chain":
            self._ensure_ordered(node)
            if self._should_stream(node):
                result = self._streamed_chain(node)
            else:
                left = self._plan_matrix(node.left)
                right = self._plan_matrix(node.right)
                result = (left @ right).tocsr()
        elif kind == "add":
            result = self._plan_matrix(node.children[0])
            for child in node.children[1:]:
                result = result + self._plan_matrix(child)
            result = result.tocsr()
        elif kind == "hadamard":
            result = self._plan_matrix(node.children[0])
            for child in node.children[1:]:
                result = result.multiply(self._plan_matrix(child))
            result = result.tocsr()
        elif kind == "bool":
            result = boolean(self._plan_matrix(node.children[0]))
        elif kind == "nested":
            inner = self._plan_matrix(node.children[0])
            result = diagonal_of(inner @ boolean(inner.T)).tocsr()
        elif kind == "star":
            result = _star_sum(
                self._view.identity(),
                self._plan_matrix(node.children[0]),
                self._max_star_depth,
                node,
            )
        else:
            raise TypeError("unhandled plan node kind {!r}".format(kind))
        return self._canonicalize(result)

    def _leaf_nnz(self, label):
        return self._view.adjacency(label).nnz

    def _ensure_ordered(self, node):
        if node.split_at is None:
            order_chain(
                node, self._leaf_nnz, self._view.num_nodes(), self._compiler
            )

    def _chunk_budget(self):
        # At most a quarter of the budget for any one in-flight chain
        # intermediate: leaves headroom for the factors, the assembled
        # result, and whatever else the cache holds.  Floored at 1 MiB
        # so a tiny budget still computes in sane block sizes.
        return max(self._memory_budget // 4, 1 << 20)

    def _should_stream(self, node):
        """True when the planned order would materialize an oversized
        *uncached* intermediate sub-product under a memory budget.

        Walks the planned binary tree: a cached sub-chain costs nothing
        (it is already resident), and the root product must be
        materialized whole regardless, so only uncached interior chain
        nodes count.  Streaming those (row-blocked left-to-right over
        the flat factor list) trades their peak bytes for extra flops.
        """
        if self._memory_budget is None:
            return False
        threshold = self._chunk_budget()
        n = self._view.num_nodes()
        stack = [node.left, node.right]
        while stack:
            sub = stack.pop()
            if sub.kind != "chain":
                continue
            with self._lock:
                if sub in self._cache:
                    continue
            if estimate_bytes(sub, self._leaf_nnz, n) > threshold:
                return True
            self._ensure_ordered(sub)
            stack.append(sub.left)
            stack.append(sub.right)
        return False

    def _streamed_chain(self, node):
        """Evaluate a chain in row blocks, never materializing interiors.

        The flat factor list is multiplied left-to-right, one block of
        rows of the first factor at a time, each block pushed through
        every remaining factor before the next block starts — so the
        peak in-flight intermediate is one row block, sized by the
        uniform-sparsity estimate of the *widest* prefix product to fit
        the chunk budget.  Matrix entries are instance counts (integers
        exact in float64 far past anything a pattern produces), so the
        re-association and the row partition are value-exact: after
        canonicalization the result is bitwise-identical to the planned
        whole-product path — see
        tests/test_memory_budget.py::test_streamed_chain_parity.
        """
        factors = [self._plan_matrix(child) for child in node.children]
        n = factors[0].shape[0]
        widest = running = float(factors[0].nnz)
        for factor in factors[1:]:
            running = product_nnz(running, float(factor.nnz), n)
            widest = max(widest, running)
        per_row_bytes = 16.0 * widest / max(n, 1) + 8.0
        rows_per_block = max(
            1, min(n, int(self._chunk_budget() / per_row_bytes))
        )
        blocks = []
        for start in range(0, n, rows_per_block):
            block = factors[0][start : start + rows_per_block, :]
            for factor in factors[1:]:
                block = block @ factor
            blocks.append(block.tocsr())
        with self._lock:
            self._streamed += 1
        if len(blocks) == 1:
            return blocks[0]
        return sp.vstack(blocks, format="csr")

    @staticmethod
    def _matrix_bytes(matrix):
        return (
            matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        )

    def _cached_bytes_locked(self):
        """Resident cache bytes: CSR buffers plus derived vectors."""
        total = 0
        for matrix in self._cache.values():
            total += self._matrix_bytes(matrix)
        for store in (self._column_norms, self._diagonals):
            for vector in store.values():
                total += vector.nbytes
        return total

    def _drop_lru_locked(self):
        """Evict the least-recently-used matrix *with* its derived state.

        A norm/diagonal vector is only meaningful alongside the matrix
        it was reduced from — an orphaned vector can never be patched by
        delta maintenance and must never be served — so eviction drops
        the three stores as one unit, keyed by the evicted plan.
        Returns the bytes freed.
        """
        plan, matrix = self._cache.popitem(last=False)
        freed = self._matrix_bytes(matrix)
        for store in (self._column_norms, self._diagonals):
            vector = store.pop(plan, None)
            if vector is not None:
                freed += vector.nbytes
        return freed

    def _evict(self):
        if self._max_cached is not None:
            while len(self._cache) > self._max_cached:
                self._drop_lru_locked()
        if self._memory_budget is not None:
            used = self._cached_bytes_locked()
            while used > self._memory_budget and self._cache:
                used -= self._drop_lru_locked()
                # Includes the just-published entry when it alone busts
                # the budget: the caller keeps the returned matrix, the
                # cache does not — the next use recomputes ("spill").
                self._spilled += 1
        # Coherence sweep: the publish paths only store a derived vector
        # alongside its cached matrix, so the stores can never outgrow
        # the matrix cache — unless an orphan slipped in through an
        # older snapshot or a bug.  Historically this trimmed the
        # derived stores by their *own* LRU order, which could pop a
        # live matrix's vectors while keeping the orphan; drop exactly
        # the keys with no cached matrix instead.
        if len(self._column_norms) > len(self._cache) or len(
            self._diagonals
        ) > len(self._cache):
            for store in (self._column_norms, self._diagonals):
                for plan in [key for key in store if key not in self._cache]:
                    del store[plan]

    def column_norms(self, pattern):
        """Euclidean norm of each column of ``M_pattern`` (cached).

        Shared denominator of the cosine scoring mode; caching it here
        (instead of per algorithm instance) lets every algorithm built on
        the same engine — e.g. through one ``SimilaritySession`` — reuse
        the vector.  Keyed on the canonical plan node, like the matrix
        cache.  Delta maintenance drops the entry when the pattern's
        matrix changes, so a stale norm vector is never served.
        """
        plan = self.compile(pattern)
        while True:
            with self._lock:
                norms = self._column_norms.get(plan)
                if norms is not None:
                    self._refresh_derived_locked(plan, self._column_norms)
                    return norms
                generation = self._generation
            matrix = self._plan_matrix(plan)
            squared = matrix.multiply(matrix).sum(axis=0)
            computed = np.sqrt(np.asarray(squared).ravel())
            with self._lock:
                norms = self._column_norms.get(plan)
                if norms is not None:
                    self._refresh_derived_locked(plan, self._column_norms)
                    return norms
                if self._generation != generation:
                    continue
                if plan in self._cache:
                    # Only store alongside a cached matrix: a vector
                    # published after a concurrent eviction would be
                    # orphaned, and delta maintenance (which walks the
                    # matrix cache) could then never patch or drop it.
                    self._column_norms[plan] = computed
                    self._evict()
            return computed

    def diagonal(self, pattern):
        """The main diagonal of ``M_pattern`` as a dense vector (cached).

        The PathSim denominator terms (Equation 1).  Keyed on the
        canonical plan node like the matrix cache, so every algorithm on
        the engine shares one extraction per pattern, and prepared
        queries re-pin it for free after a live update: delta
        maintenance *patches* the vector (old + Δ.diagonal(), exact in
        integer float64) instead of invalidating it.
        """
        plan = self.compile(pattern)
        while True:
            with self._lock:
                diag = self._diagonals.get(plan)
                if diag is not None:
                    self._refresh_derived_locked(plan, self._diagonals)
                    return diag
                generation = self._generation
            computed = self._plan_matrix(plan).diagonal()
            with self._lock:
                diag = self._diagonals.get(plan)
                if diag is not None:
                    self._refresh_derived_locked(plan, self._diagonals)
                    return diag
                if self._generation != generation:
                    continue
                if plan in self._cache:
                    # Same orphan guard as column_norms: derived
                    # vectors only live alongside their cached matrix.
                    self._diagonals[plan] = computed
                    self._evict()
            return computed

    def _refresh_derived_locked(self, plan, store):
        store.move_to_end(plan)
        # A derived-vector hit is a use of the pattern's matrix too:
        # refresh its LRU slot so a hot pattern's matrix is not evicted
        # out from under its surviving norms/diagonal.
        if plan in self._cache:
            self._cache.move_to_end(plan)

    # ------------------------------------------------------------------
    # Materialization (the paper pre-loads meta-paths up to length 3)
    # ------------------------------------------------------------------
    def materialize_simple_patterns(self, max_length=3, labels=None):
        """Precompute commuting matrices for all meta-paths up to a length.

        Mirrors the experimental setting of Section 7.3: "commuting
        matrices of all meta-paths up to size 3 are materialized and
        pre-loaded".  Returns the number of matrices now cached.

        Runs through :meth:`matrices_many`, so longer meta-paths are
        built from the already-materialized shorter ones (a length-3
        chain is one sparse product on top of a cached length-2 chain)
        instead of being recomputed from the leaves.  Under a typed
        schema, label combinations the type checker rejects (provably
        empty chains like ``p-in.p-in``) are pruned up front.

        Raises :class:`~repro.exceptions.EvaluationError` when the
        requested pattern set does not fit under
        ``max_cached_matrices`` — materialization under a too-small cap
        would evict each matrix as the next is built.
        """
        if labels is None:
            labels = sorted(self._view.database.used_labels())
        steps = [(name, False) for name in labels]
        steps += [(name, True) for name in labels]
        patterns = [
            simple_pattern(list(combo))
            for length in range(1, max_length + 1)
            for combo in itertools.product(steps, repeat=length)
        ]
        # Under a typed schema most label combinations are ill-typed
        # (``p-in.p-in`` composes a proc into a paper-source label) and
        # provably empty; "all meta-paths" sensibly means the
        # type-conforming ones, and compiling the rest would fail fast.
        patterns = [
            pattern
            for pattern in patterns
            if not has_errors(self._checker.check(pattern))
        ]
        if self._max_cached is not None and len(patterns) > self._max_cached:
            # Materializing past the cap would silently thrash the
            # LRU (each new matrix evicting the last) and return a
            # capped, misleading count.
            raise EvaluationError(
                "materializing {} simple patterns (labels={}, "
                "max_length={}) exceeds max_cached_matrices={}; raise "
                "the cap or materialize fewer patterns".format(
                    len(patterns), sorted(labels), max_length,
                    self._max_cached
                )
            )
        if self._memory_budget is not None:
            # Same rule for the byte budget, by nnz estimate: "pre-load
            # everything" and "stay under B bytes" are contradictory
            # requests when the set cannot fit.
            n = self._view.num_nodes()
            estimated = sum(
                estimate_bytes(self.compile(pattern), self._leaf_nnz, n)
                for pattern in patterns
            )
            if estimated > self._memory_budget:
                raise EvaluationError(
                    "materializing {} simple patterns (~{:.0f} estimated "
                    "bytes) exceeds memory_budget={}; raise the budget "
                    "or materialize fewer patterns".format(
                        len(patterns), estimated, self._memory_budget
                    )
                )
        self.matrices_many(patterns)
        with self._lock:
            return len(self._cache)

    def cache_size(self):
        with self._lock:
            return len(self._cache)

    def cache_info(self):
        """Cache counters plus memory accounting.

        Keys: ``matrices`` / ``column_norms`` / ``diagonals`` (entry
        counts), ``hits`` / ``misses``, ``max_cached``, the size-based
        pair the LRU cap can be tuned against — ``nnz`` (total stored
        nonzeros across cached matrices) and ``bytes`` (approximate
        resident bytes of matrices *and* derived vectors: CSR data +
        indices + indptr buffers plus norm/diagonal array buffers) —
        the byte-budget triple ``memory_budget`` (configured bytes or
        None) / ``budget_used`` (same accounting as ``bytes``: what the
        budget currently holds) / ``spilled`` (matrices computed but
        evicted by the budget — each spill is a future recompute), the
        ``streamed`` count of chain products evaluated in row blocks,
        and the delta-maintenance counters ``patched`` /
        ``invalidated`` / ``delta_applies``.

        The accounting is live: patched matrices report their
        post-patch buffers (cancelled entries are eliminated, never
        counted as phantom nonzeros) and invalidated or evicted entries
        drop out of every figure the moment they leave the cache.
        """
        with self._lock:
            matrices = list(self._cache.values())
            norm_vectors = list(self._column_norms.values())
            diagonal_vectors = list(self._diagonals.values())
            hits, misses = self._hits, self._misses
            spilled, streamed = self._spilled, self._streamed
            patched, invalidated = self._patched, self._invalidated
            delta_applies = self._delta_applies
        nnz = 0
        matrix_bytes = 0
        for matrix in matrices:
            nnz += matrix.nnz
            matrix_bytes += (
                matrix.data.nbytes
                + matrix.indices.nbytes
                + matrix.indptr.nbytes
            )
        vector_bytes = sum(
            vector.nbytes
            for vector in itertools.chain(norm_vectors, diagonal_vectors)
        )
        return {
            "matrices": len(matrices),
            "column_norms": len(norm_vectors),
            "diagonals": len(diagonal_vectors),
            "hits": hits,
            "misses": misses,
            "max_cached": self._max_cached,
            "nnz": int(nnz),
            "bytes": int(matrix_bytes + vector_bytes),
            "memory_budget": self._memory_budget,
            "budget_used": int(matrix_bytes + vector_bytes),
            "spilled": spilled,
            "streamed": streamed,
            "patched": patched,
            "invalidated": invalidated,
            "delta_applies": delta_applies,
        }

    # ------------------------------------------------------------------
    # Cache export / preload (snapshot persistence)
    # ------------------------------------------------------------------
    def export_cache(self):
        """The cached state, keyed by canonical pattern text.

        Returns ``{"matrices": [(text, csr)], "column_norms":
        [(text, vector)], "diagonals": [(text, vector)]}`` in LRU order
        (least recently used first), where ``text`` is the canonical
        concrete syntax of each cache key's plan node.  Canonical text
        re-parses and re-compiles to the same interned plan on any
        compiler over the same pattern language, which is what lets a
        snapshot written by one process warm the cache of another —
        see :meth:`preload` and :mod:`repro.server.snapshot`.

        The returned matrices and vectors are the cached objects
        themselves (never mutated in place by the engine, only
        replaced), so exporting is cheap and safe under concurrency.
        """
        with self._lock:
            return {
                "matrices": [
                    (str(plan), matrix)
                    for plan, matrix in self._cache.items()
                ],
                "column_norms": [
                    (str(plan), vector)
                    for plan, vector in self._column_norms.items()
                ],
                "diagonals": [
                    (str(plan), vector)
                    for plan, vector in self._diagonals.items()
                ],
            }

    def export_shm(self):
        """:meth:`export_cache` plus the leaf state a worker attach needs.

        The shared-memory publication superset: everything
        :meth:`export_cache` returns, plus ``"adjacency"`` — ``(label,
        csr)`` pairs for every edge label the database uses (built now
        if not yet demanded) — and ``"num_nodes"``.  With the leaf
        adjacencies shipped too, an attached engine can evaluate *any*
        pattern (cached or not) without ever iterating edges, and the
        cached product matrices stay pure zero-copy views.
        """
        state = self.export_cache()
        state["adjacency"] = [
            (label, self._view.adjacency(label))
            for label in sorted(self._view.database.used_labels())
        ]
        state["num_nodes"] = self._view.num_nodes()
        return state

    def attach_shm(self, state):
        """Install :meth:`export_shm` state (typically shared-memory views).

        Adjacencies land in the matrix view by reference
        (:meth:`MatrixView.install_adjacency`); cached products and
        derived vectors go through :meth:`preload`.  Entries that no
        longer fit — unknown label, shape mismatch, unparseable pattern
        text — are skipped, not installed, exactly like a warm start:
        a skipped entry merely recomputes lazily.  Returns the preload
        counts plus ``"adjacency"``.
        """
        n = self._view.num_nodes()
        adjacency = 0
        skipped = 0
        for label, matrix in state.get("adjacency", ()):
            try:
                self._view.install_adjacency(label, matrix)
            except ReproError:
                skipped += 1
                continue
            adjacency += 1
        loaded = self.preload(
            state.get("matrices", ()),
            column_norms=state.get("column_norms", ()),
            diagonals=state.get("diagonals", ()),
        )
        loaded["adjacency"] = adjacency
        loaded["skipped"] += skipped
        return loaded

    def preload(self, matrices, column_norms=(), diagonals=()):
        """Install previously exported cache entries (the warm start).

        ``matrices`` / ``column_norms`` / ``diagonals`` are
        ``(canonical pattern text, value)`` pairs as produced by
        :meth:`export_cache`.  Each text is parsed and compiled, so the
        entry lands under exactly the plan node a live query for the
        same pattern will look up.  Entries that no longer make sense —
        unparseable text (e.g. a label the RRE tokenizer cannot spell)
        or a matrix whose shape does not match this engine's node count
        — are *skipped*, never installed: a warm start is an
        optimization, and a skipped entry merely recomputes lazily.
        Derived vectors are only installed alongside their cached
        matrix (the same orphan rule the runtime caches follow).

        Preloading counts toward neither hits nor misses.  Returns
        ``{"matrices": n, "column_norms": n, "diagonals": n,
        "skipped": n}``.
        """
        from repro.lang.parser import parse_pattern

        n = self._view.num_nodes()
        skipped = 0

        def _compiled(pairs):
            nonlocal skipped
            compiled = []
            for text, value in pairs:
                try:
                    plan = self.compile(parse_pattern(text))
                except ReproError:
                    skipped += 1
                    continue
                compiled.append((plan, value))
            return compiled

        plan_matrices = []
        for plan, matrix in _compiled(matrices):
            if matrix.shape != (n, n):
                skipped += 1
                continue
            plan_matrices.append((plan, matrix))
        plan_norms = _compiled(column_norms)
        plan_diagonals = _compiled(diagonals)
        loaded = {"matrices": 0, "column_norms": 0, "diagonals": 0}
        with self._lock:
            for plan, matrix in plan_matrices:
                self._cache[plan] = matrix
                loaded["matrices"] += 1
            for store, pairs, key in (
                (self._column_norms, plan_norms, "column_norms"),
                (self._diagonals, plan_diagonals, "diagonals"),
            ):
                for plan, vector in pairs:
                    if len(vector) != n or plan not in self._cache:
                        skipped += 1
                        continue
                    store[plan] = vector
                    loaded[key] += 1
            self._evict()
        loaded["skipped"] = skipped
        return loaded

    # ------------------------------------------------------------------
    # Plan introspection
    # ------------------------------------------------------------------
    def _plan_nodes(self, node, acc):
        """Collect ``node`` and every sub-plan it executes into ``acc``."""
        if node in acc:
            return
        acc.add(node)
        if node.kind == "chain":
            self._ensure_ordered(node)
            self._plan_nodes(node.left, acc)
            self._plan_nodes(node.right, acc)
        else:
            for child in node.children:
                self._plan_nodes(child, acc)

    def explain(self, patterns):
        """A human-readable report of the compiled plan for a pattern set.

        For each pattern: its canonical form, the chosen multiplication
        order (chains print with explicit binary parentheses), and the
        estimated product nnz / amortized flop cost.  A closing section
        lists the sub-plans shared by more than one pattern of the set —
        each is evaluated exactly once.  No product matrices are
        computed (only leaf adjacencies, for exact nnz counts) — but
        the plan state is real, not a dry run: the set is compiled and
        its chain orders are fixed exactly as :meth:`matrices_many`
        would fix them, and ordering decisions are sticky (first
        planned wins), so later evaluation of these patterns uses
        precisely the printed orders, and the set's sub-chains now
        count toward the sharing statistics that bias future plans.
        """
        patterns = list(patterns)
        plans = [self.compile(pattern) for pattern in patterns]
        n = self._view.num_nodes()
        per_pattern = []
        usage = Counter()
        for plan in plans:
            nodes = set()
            self._plan_nodes(plan, nodes)
            per_pattern.append(nodes)
            usage.update(nodes)
        all_nodes = set().union(*per_pattern) if per_pattern else set()
        shared = sorted(
            (node for node, count in usage.items() if count >= 2),
            key=lambda node: (-usage[node], str(node)),
        )
        lines = [
            "compiled plan: {} pattern{}, {} unique node{}, {} shared".format(
                len(patterns),
                "" if len(patterns) == 1 else "s",
                len(all_nodes),
                "" if len(all_nodes) == 1 else "s",
                len(shared),
            )
        ]
        for position, (pattern, plan) in enumerate(
            zip(patterns, plans), start=1
        ):
            lines.append("[{}] pattern:   {}".format(position, pattern))
            lines.append("    canonical: {}".format(plan))
            lines.append("    order:     {}".format(render_order(plan)))
            estimate = estimate_nnz(plan, self._leaf_nnz, n)
            cost = plan.est_cost if plan.kind == "chain" else None
            lines.append(
                "    est nnz ~ {:.0f}{}".format(
                    estimate,
                    ""
                    if cost is None
                    else ", est cost ~ {:.0f} flops (amortized)".format(cost),
                )
            )
            # Static diagnostics (warning tier only: the compile above
            # already raised on errors).
            for diagnostic in self._checker.check(pattern):
                lines.append("    diagnostics: {}".format(diagnostic.format()))
        if shared:
            lines.append("shared sub-plans (each evaluated once):")
            for node in shared:
                lines.append(
                    "    {}   (in {} patterns, est nnz ~ {:.0f})".format(
                        node,
                        usage[node],
                        estimate_nnz(node, self._leaf_nnz, n),
                    )
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------
    def query_indices(self, nodes):
        """Indexer positions for ``nodes`` (see ``MatrixView.query_indices``)."""
        return self._view.query_indices(nodes)

    def count(self, pattern, u, v):
        """``|I^{u,v}(pattern)|`` as a float (exact for realistic sizes)."""
        matrix = self.matrix(pattern)
        return float(
            matrix[self.indexer.index_of(u), self.indexer.index_of(v)]
        )

    def pathsim_score(self, pattern, u, v):
        """Equation 1: ``2 M(u,v) / (M(u,u) + M(v,v))`` (0 when undefined)."""
        matrix = self.matrix(pattern)
        iu = self.indexer.index_of(u)
        iv = self.indexer.index_of(v)
        denominator = matrix[iu, iu] + matrix[iv, iv]
        if denominator == 0:
            return 0.0
        return float(2.0 * matrix[iu, iv] / denominator)

    def pathsim_scores_from(self, pattern, u):
        """PathSim scores from ``u`` to every node, as a dense vector.

        Vectorized version of :meth:`pathsim_score` used by the ranking
        algorithms: one sparse row extraction plus the diagonal.
        """
        return self.pathsim_scores_from_many(pattern, [u])[0]

    def rows_dense(self, pattern, nodes):
        """``M_pattern[rows, :]`` as a dense ``(len(nodes), n)`` array.

        The batch-query primitive: one sparse row slice replaces
        per-query row extraction, so a workload of ``q`` queries costs a
        single ``matrix[rows, :]`` per pattern.
        """
        matrix = self.matrix(pattern)
        return dense_rows(matrix, self.query_indices(nodes))

    def pathsim_scores_from_many(self, pattern, nodes):
        """PathSim score rows for several queries at once.

        Returns a dense ``(len(nodes), n)`` array whose row ``i`` equals
        :meth:`pathsim_scores_from` for ``nodes[i]`` — computed from one
        sparse row slice plus the engine-cached diagonal instead of
        per-query extraction.
        """
        return pathsim_rows(
            self.matrix(pattern),
            self.query_indices(nodes),
            self.diagonal(pattern),
        )
