"""Commuting matrices for RREs (Section 4.3 of the paper).

For a pattern ``p`` over database ``D``, the commuting matrix ``M_p`` has
``M_p[u, v] = |I^{u,v}_D(p)|`` — the number of instances of ``p`` from
``u`` to ``v``.  The paper's recursive rules::

    M_a        = A_a                          (per-label adjacency)
    M_{p-}     = M_p^T
    M_{p1.p2}  = M_{p1} M_{p2}
    M_{p1+p2}  = M_{p1} + M_{p2}   if p1 != p2, else M_{p1}
    M_<<p>>    = M_p > 0                      (boolean / skip)
    M_[p]      = diag{ M_p (M_p^T > 0) }      (nested)
    M_{p*}     = I + M_p + M_p^2 + ...        (bounded; see below)

The engine **compiles before it executes**: every pattern goes through
the plan compiler (:mod:`repro.lang.plan`), which canonicalizes it
(reverse pushed to leaves, unions deduplicated and sorted, ...) and
interns the result into a plan DAG.  The memo cache is keyed on
canonical plan nodes, so associativity-equivalent and
reverse-normalized spellings of the same pattern share one cache entry,
shared sub-plans across a pattern set are evaluated exactly once
(cross-pattern CSE), and concatenation chains are multiplied in a
cost-chosen order (sparse matrix-chain ordering over nnz estimates).
``matrices_many`` is the batch entry point that lets the compiler see a
whole pattern set — e.g. Algorithm 1's expansion — before any chain
order is fixed.

The engine also supports the paper's "materialize all meta-paths up to
length 3" setting and exposes the PathSim scoring helper used by both
PathSim and RelSim.  The seed's direct AST recursion is kept as
:func:`naive_matrix` — the reference oracle the plan path is tested and
benchmarked against.
"""

import itertools
import threading
from collections import Counter, OrderedDict

import numpy as np

from repro.exceptions import EvaluationError, StarDivergenceError
from repro.graph.matrices import MatrixView, boolean, dense_rows, diagonal_of
from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Pattern,
    Reverse,
    Skip,
    Star,
    Union,
    simple_pattern,
)
from repro.lang.plan import (
    PlanCompiler,
    estimate_nnz,
    order_chain,
    render_order,
)


def _star_sum(identity, base, max_depth, origin):
    """``I + M + M^2 + ...`` with the divergence bound (shared helper)."""
    total = identity
    power = base.copy()
    depth = 1
    while power.nnz > 0:
        if depth > max_depth:
            raise StarDivergenceError(origin, max_depth)
        total = total + power
        power = (power @ base).tocsr()
        depth += 1
    return total.tocsr()


def pathsim_rows(matrix, indices, diagonal=None, out=None):
    """PathSim score rows for the given indexer ``indices``.

    ``scores[i, v] = 2 M[indices[i], v] / (M[indices[i], indices[i]] +
    M[v, v])`` with 0 where the denominator vanishes — Equation 1 over
    one sparse row slice.  A score can only be nonzero where the row
    itself is, so the arithmetic touches each row's stored entries
    instead of all ``n`` columns (the serving hot path runs this per
    pattern per request).  Pass a precomputed ``diagonal`` to skip
    re-extracting it on every call; ``matrix`` must be canonical CSR.

    With ``out`` (a ``(len(indices), n)`` float array), scores are
    *added* into it and ``out`` is returned — the accumulator form
    RelSim uses to sum a 16-pattern expansion without allocating a
    dense block per pattern.
    """
    if diagonal is None:
        diagonal = matrix.diagonal()
    scores = out
    if scores is None:
        scores = np.zeros((len(indices), matrix.shape[1]))
    indptr, columns, data = matrix.indptr, matrix.indices, matrix.data
    for i, row in enumerate(indices):
        start, end = indptr[row], indptr[row + 1]
        cols = columns[start:end]
        denominator = diagonal[row] + diagonal[cols]
        positive = denominator > 0
        if not positive.all():
            cols = cols[positive]
            denominator = denominator[positive]
            values = data[start:end][positive]
        else:
            values = data[start:end]
        scores[i, cols] += 2.0 * values / denominator
    return scores


def naive_matrix(view, pattern, max_star_depth=None, cache=None):
    """Seed-style recursive evaluation of one pattern AST (the oracle).

    Walks the AST directly — no canonicalization, no plan DAG, chains
    multiplied left-to-right — memoizing per AST node in ``cache``
    (fresh per call unless provided).  This is exactly the pre-plan
    engine semantics; the plan compiler's property tests and the
    plan-vs-naive benchmark compare against it, and "per-pattern cold
    evaluation" in the benchmark means one fresh ``cache`` per pattern.
    """
    if max_star_depth is None:
        max_star_depth = max(view.num_nodes(), 1)
    if cache is None:
        cache = {}

    def recurse(node):
        cached = cache.get(node)
        if cached is not None:
            return cached
        if isinstance(node, Epsilon):
            result = view.identity()
        elif isinstance(node, Label):
            result = view.adjacency(node.name)
        elif isinstance(node, Reverse):
            result = recurse(node.operand).T.tocsr()
        elif isinstance(node, Concat):
            result = recurse(node.parts[0])
            for part in node.parts[1:]:
                result = result @ recurse(part)
            result = result.tocsr()
        elif isinstance(node, Union):
            # The paper sums distinct disjuncts only (M_{p+p} = M_p).
            unique = []
            for part in node.parts:
                if part not in unique:
                    unique.append(part)
            result = recurse(unique[0])
            for part in unique[1:]:
                result = result + recurse(part)
            result = result.tocsr()
        elif isinstance(node, Skip):
            result = boolean(recurse(node.operand))
        elif isinstance(node, Nested):
            inner = recurse(node.operand)
            result = diagonal_of(inner @ boolean(inner.T)).tocsr()
        elif isinstance(node, Star):
            result = _star_sum(
                view.identity(), recurse(node.operand), max_star_depth, node
            )
        elif isinstance(node, Conj):
            result = recurse(node.parts[0])
            for part in node.parts[1:]:
                result = result.multiply(recurse(part))
            result = result.tocsr()
        else:
            raise TypeError("unhandled pattern node {!r}".format(node))
        cache[node] = result
        return result

    if not isinstance(pattern, Pattern):
        raise TypeError(
            "pattern must be a Pattern AST, got {!r}".format(pattern)
        )
    return recurse(pattern)


class CommutingMatrixEngine:
    """Computes and caches commuting matrices over one database snapshot.

    Parameters
    ----------
    database_or_view:
        Either a :class:`GraphDatabase` (a fresh :class:`MatrixView` is
        built) or an existing view — pass a view built on a *shared*
        :class:`NodeIndexer` when comparing scores across structural
        variants of the same database.
    max_star_depth:
        Expansion bound for Kleene star counting; default is the node
        count.  Divergence raises :class:`StarDivergenceError`.
    max_cached_matrices:
        When set, bound the number of memoized commuting matrices (and
        their derived column norms) with LRU eviction.  ``None`` (the
        default) keeps every matrix, matching the paper's
        "materialize and pre-load" setting; a session serving many
        ad-hoc patterns caps memory with this knob.  ``cache_info()``
        reports the cached total nnz and approximate bytes, so the cap
        can be tuned by measured size rather than guessed count.

    The cache is keyed on canonical *plan nodes*, not raw ASTs: any two
    patterns with the same canonical form — ``(a.b)-`` and ``b-.a-``,
    ``a+b`` and ``b+a``, re-parenthesized concatenations — share one
    entry, and intermediate chain products live in the same LRU, so a
    sub-chain shared across patterns is computed once.  (Plan nodes and
    the pattern->plan memo are retained for the engine's lifetime; they
    are a few hundred bytes each, negligible next to one matrix.)

    The engine is thread-safe: the matrix and column-norm LRUs are
    lock-guarded with double-checked access — products are computed
    *outside* the lock and published under it, so N serving threads
    share one engine without serializing on sparse multiplications (a
    concurrent duplicate computation loses the publish race and adopts
    the winner's matrix).  The plan compiler carries its own lock for
    the interning tables and chain-ordering decisions.
    """

    def __init__(
        self, database_or_view, max_star_depth=None, max_cached_matrices=None
    ):
        if isinstance(database_or_view, MatrixView):
            self._view = database_or_view
        else:
            self._view = MatrixView(database_or_view)
        if max_star_depth is None:
            max_star_depth = max(self._view.num_nodes(), 1)
        if max_cached_matrices is not None and max_cached_matrices < 1:
            raise ValueError(
                "max_cached_matrices must be >= 1 or None, got {}".format(
                    max_cached_matrices
                )
            )
        self._max_star_depth = max_star_depth
        self._max_cached = max_cached_matrices
        self._compiler = PlanCompiler()
        self._lock = threading.RLock()
        self._cache = OrderedDict()
        self._column_norms = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def view(self):
        return self._view

    @property
    def indexer(self):
        return self._view.indexer

    @property
    def compiler(self):
        """The engine's plan compiler (one interner per snapshot)."""
        return self._compiler

    @property
    def max_cached_matrices(self):
        """The LRU cap (``None`` = keep everything)."""
        return self._max_cached

    # ------------------------------------------------------------------
    # Compile and execute
    # ------------------------------------------------------------------
    def compile(self, pattern):
        """The canonical :class:`~repro.lang.plan.PlanNode` for a pattern."""
        if not isinstance(pattern, Pattern):
            raise TypeError(
                "pattern must be a Pattern AST, got {!r}".format(pattern)
            )
        return self._compiler.compile(pattern)

    def matrix(self, pattern):
        """The commuting matrix ``M_pattern`` (CSR, cached)."""
        return self._plan_matrix(self.compile(pattern))

    def matrices_many(self, patterns):
        """Commuting matrices for a whole pattern set (list, input order).

        The batch entry point: every pattern is *compiled* before any is
        *executed*, so the chain-ordering step sees complete sub-chain
        sharing statistics and each shared prefix/sub-chain of the set
        is evaluated exactly once.  This is how RelSim evaluates an
        Algorithm-1 expansion.
        """
        plans = [self.compile(pattern) for pattern in patterns]
        return [self._plan_matrix(plan) for plan in plans]

    def warm(self, patterns, norms=False):
        """Materialize a pattern set now (the serving warm-set entry).

        Runs the whole set through :meth:`matrices_many` (batch compile,
        then execute with full sharing statistics) and, when ``norms``
        is True, also computes the cosine column norms for each pattern.
        Returns the matrices in input order.  Prepared queries call this
        so their hot path starts from pure cache hits.
        """
        patterns = list(patterns)
        matrices = self.matrices_many(patterns)
        if norms:
            for pattern in patterns:
                self.column_norms(pattern)
        return matrices

    def _plan_matrix(self, node):
        # Double-checked LRU access: look up under the lock, compute
        # outside it (sparse products can take seconds; holding the lock
        # would serialize every serving thread), publish under it.  Two
        # threads racing on a cold entry may both compute; the loser
        # adopts the published matrix, so callers always share one
        # object per plan node.
        with self._lock:
            cached = self._cache.get(node)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(node)
                return cached
        computed = self._execute(node)
        with self._lock:
            cached = self._cache.get(node)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(node)
                return cached
            self._misses += 1
            self._cache[node] = computed
            self._evict()
        return computed

    def _execute(self, node):
        kind = node.kind
        if kind == "eps":
            return self._view.identity()
        if kind == "leaf":
            return self._view.adjacency(node.payload)
        if kind == "transpose":
            return self._plan_matrix(node.children[0]).T.tocsr()
        if kind == "chain":
            self._ensure_ordered(node)
            left = self._plan_matrix(node.left)
            right = self._plan_matrix(node.right)
            return (left @ right).tocsr()
        if kind == "add":
            total = self._plan_matrix(node.children[0])
            for child in node.children[1:]:
                total = total + self._plan_matrix(child)
            return total.tocsr()
        if kind == "hadamard":
            product = self._plan_matrix(node.children[0])
            for child in node.children[1:]:
                product = product.multiply(self._plan_matrix(child))
            return product.tocsr()
        if kind == "bool":
            return boolean(self._plan_matrix(node.children[0]))
        if kind == "nested":
            inner = self._plan_matrix(node.children[0])
            return diagonal_of(inner @ boolean(inner.T)).tocsr()
        if kind == "star":
            return _star_sum(
                self._view.identity(),
                self._plan_matrix(node.children[0]),
                self._max_star_depth,
                node,
            )
        raise TypeError("unhandled plan node kind {!r}".format(kind))

    def _leaf_nnz(self, label):
        return self._view.adjacency(label).nnz

    def _ensure_ordered(self, node):
        if node.split_at is None:
            order_chain(
                node, self._leaf_nnz, self._view.num_nodes(), self._compiler
            )

    def _evict(self):
        if self._max_cached is None:
            return
        while len(self._cache) > self._max_cached:
            evicted, _ = self._cache.popitem(last=False)
            self._column_norms.pop(evicted, None)
        while len(self._column_norms) > self._max_cached:
            self._column_norms.popitem(last=False)

    def column_norms(self, pattern):
        """Euclidean norm of each column of ``M_pattern`` (cached).

        Shared denominator of the cosine scoring mode; caching it here
        (instead of per algorithm instance) lets every algorithm built on
        the same engine — e.g. through one ``SimilaritySession`` — reuse
        the vector.  Keyed on the canonical plan node, like the matrix
        cache.
        """
        plan = self.compile(pattern)
        with self._lock:
            norms = self._column_norms.get(plan)
            if norms is not None:
                self._refresh_norms_locked(plan)
                return norms
        matrix = self._plan_matrix(plan)
        squared = matrix.multiply(matrix).sum(axis=0)
        computed = np.sqrt(np.asarray(squared).ravel())
        with self._lock:
            norms = self._column_norms.get(plan)
            if norms is not None:
                self._refresh_norms_locked(plan)
                return norms
            self._column_norms[plan] = computed
            self._evict()
        return computed

    def _refresh_norms_locked(self, plan):
        self._column_norms.move_to_end(plan)
        # A norms hit is a use of the pattern's matrix too: refresh
        # its LRU slot so a hot pattern's matrix is not evicted out
        # from under its surviving norms.
        if plan in self._cache:
            self._cache.move_to_end(plan)

    # ------------------------------------------------------------------
    # Materialization (the paper pre-loads meta-paths up to length 3)
    # ------------------------------------------------------------------
    def materialize_simple_patterns(self, max_length=3, labels=None):
        """Precompute commuting matrices for all meta-paths up to a length.

        Mirrors the experimental setting of Section 7.3: "commuting
        matrices of all meta-paths up to size 3 are materialized and
        pre-loaded".  Returns the number of matrices now cached.

        Runs through :meth:`matrices_many`, so longer meta-paths are
        built from the already-materialized shorter ones (a length-3
        chain is one sparse product on top of a cached length-2 chain)
        instead of being recomputed from the leaves.

        Raises :class:`~repro.exceptions.EvaluationError` when the
        requested pattern set does not fit under
        ``max_cached_matrices`` — materialization under a too-small cap
        would evict each matrix as the next is built.
        """
        if labels is None:
            labels = sorted(self._view.database.used_labels())
        steps = [(name, False) for name in labels]
        steps += [(name, True) for name in labels]
        if self._max_cached is not None:
            total = sum(
                len(steps) ** length for length in range(1, max_length + 1)
            )
            if total > self._max_cached:
                # Materializing past the cap would silently thrash the
                # LRU (each new matrix evicting the last) and return a
                # capped, misleading count.
                raise EvaluationError(
                    "materializing {} simple patterns (labels={}, "
                    "max_length={}) exceeds max_cached_matrices={}; raise "
                    "the cap or materialize fewer patterns".format(
                        total, sorted(labels), max_length, self._max_cached
                    )
                )
        patterns = [
            simple_pattern(list(combo))
            for length in range(1, max_length + 1)
            for combo in itertools.product(steps, repeat=length)
        ]
        self.matrices_many(patterns)
        with self._lock:
            return len(self._cache)

    def cache_size(self):
        with self._lock:
            return len(self._cache)

    def cache_info(self):
        """Cache counters plus memory accounting.

        Keys: ``matrices`` / ``column_norms`` (entry counts), ``hits`` /
        ``misses``, ``max_cached``, and the size-based pair the LRU cap
        can be tuned against — ``nnz`` (total stored nonzeros across
        cached matrices) and ``bytes`` (approximate resident bytes of
        matrices *and* norm vectors: CSR data + indices + indptr buffers
        plus norm array buffers).
        """
        with self._lock:
            matrices = list(self._cache.values())
            norm_vectors = list(self._column_norms.values())
            hits, misses = self._hits, self._misses
        nnz = 0
        matrix_bytes = 0
        for matrix in matrices:
            nnz += matrix.nnz
            matrix_bytes += (
                matrix.data.nbytes
                + matrix.indices.nbytes
                + matrix.indptr.nbytes
            )
        norm_bytes = sum(norms.nbytes for norms in norm_vectors)
        return {
            "matrices": len(matrices),
            "column_norms": len(norm_vectors),
            "hits": hits,
            "misses": misses,
            "max_cached": self._max_cached,
            "nnz": int(nnz),
            "bytes": int(matrix_bytes + norm_bytes),
        }

    # ------------------------------------------------------------------
    # Plan introspection
    # ------------------------------------------------------------------
    def _plan_nodes(self, node, acc):
        """Collect ``node`` and every sub-plan it executes into ``acc``."""
        if node in acc:
            return
        acc.add(node)
        if node.kind == "chain":
            self._ensure_ordered(node)
            self._plan_nodes(node.left, acc)
            self._plan_nodes(node.right, acc)
        else:
            for child in node.children:
                self._plan_nodes(child, acc)

    def explain(self, patterns):
        """A human-readable report of the compiled plan for a pattern set.

        For each pattern: its canonical form, the chosen multiplication
        order (chains print with explicit binary parentheses), and the
        estimated product nnz / amortized flop cost.  A closing section
        lists the sub-plans shared by more than one pattern of the set —
        each is evaluated exactly once.  No product matrices are
        computed (only leaf adjacencies, for exact nnz counts) — but
        the plan state is real, not a dry run: the set is compiled and
        its chain orders are fixed exactly as :meth:`matrices_many`
        would fix them, and ordering decisions are sticky (first
        planned wins), so later evaluation of these patterns uses
        precisely the printed orders, and the set's sub-chains now
        count toward the sharing statistics that bias future plans.
        """
        patterns = list(patterns)
        plans = [self.compile(pattern) for pattern in patterns]
        n = self._view.num_nodes()
        per_pattern = []
        usage = Counter()
        for plan in plans:
            nodes = set()
            self._plan_nodes(plan, nodes)
            per_pattern.append(nodes)
            usage.update(nodes)
        all_nodes = set().union(*per_pattern) if per_pattern else set()
        shared = sorted(
            (node for node, count in usage.items() if count >= 2),
            key=lambda node: (-usage[node], str(node)),
        )
        lines = [
            "compiled plan: {} pattern{}, {} unique node{}, {} shared".format(
                len(patterns),
                "" if len(patterns) == 1 else "s",
                len(all_nodes),
                "" if len(all_nodes) == 1 else "s",
                len(shared),
            )
        ]
        for position, (pattern, plan) in enumerate(
            zip(patterns, plans), start=1
        ):
            lines.append("[{}] pattern:   {}".format(position, pattern))
            lines.append("    canonical: {}".format(plan))
            lines.append("    order:     {}".format(render_order(plan)))
            estimate = estimate_nnz(plan, self._leaf_nnz, n)
            cost = plan.est_cost if plan.kind == "chain" else None
            lines.append(
                "    est nnz ~ {:.0f}{}".format(
                    estimate,
                    ""
                    if cost is None
                    else ", est cost ~ {:.0f} flops (amortized)".format(cost),
                )
            )
        if shared:
            lines.append("shared sub-plans (each evaluated once):")
            for node in shared:
                lines.append(
                    "    {}   (in {} patterns, est nnz ~ {:.0f})".format(
                        node,
                        usage[node],
                        estimate_nnz(node, self._leaf_nnz, n),
                    )
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------
    def query_indices(self, nodes):
        """Indexer positions for ``nodes`` (see ``MatrixView.query_indices``)."""
        return self._view.query_indices(nodes)

    def count(self, pattern, u, v):
        """``|I^{u,v}(pattern)|`` as a float (exact for realistic sizes)."""
        matrix = self.matrix(pattern)
        return float(
            matrix[self.indexer.index_of(u), self.indexer.index_of(v)]
        )

    def pathsim_score(self, pattern, u, v):
        """Equation 1: ``2 M(u,v) / (M(u,u) + M(v,v))`` (0 when undefined)."""
        matrix = self.matrix(pattern)
        iu = self.indexer.index_of(u)
        iv = self.indexer.index_of(v)
        denominator = matrix[iu, iu] + matrix[iv, iv]
        if denominator == 0:
            return 0.0
        return float(2.0 * matrix[iu, iv] / denominator)

    def pathsim_scores_from(self, pattern, u):
        """PathSim scores from ``u`` to every node, as a dense vector.

        Vectorized version of :meth:`pathsim_score` used by the ranking
        algorithms: one sparse row extraction plus the diagonal.
        """
        return self.pathsim_scores_from_many(pattern, [u])[0]

    def rows_dense(self, pattern, nodes):
        """``M_pattern[rows, :]`` as a dense ``(len(nodes), n)`` array.

        The batch-query primitive: one sparse row slice replaces
        per-query row extraction, so a workload of ``q`` queries costs a
        single ``matrix[rows, :]`` per pattern.
        """
        matrix = self.matrix(pattern)
        return dense_rows(matrix, self.query_indices(nodes))

    def pathsim_scores_from_many(self, pattern, nodes):
        """PathSim score rows for several queries at once.

        Returns a dense ``(len(nodes), n)`` array whose row ``i`` equals
        :meth:`pathsim_scores_from` for ``nodes[i]`` — computed from one
        sparse row slice plus the diagonal instead of per-query
        extraction.
        """
        return pathsim_rows(self.matrix(pattern), self.query_indices(nodes))
