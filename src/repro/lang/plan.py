"""Pattern plan compiler: canonical DAG, cross-pattern CSE, chain ordering.

The usability layer (Algorithm 1) expands one simple pattern into up to
64 RREs that overlap heavily — shared prefixes, reversed segments,
skip/nested wrappers around common cores.  Evaluating each AST
independently recomputes all of that shared work.  This module sits
between the pattern language and the matrix engine and turns a pattern
(or a whole pattern *set*) into a **plan DAG**:

* **Canonicalization** (:func:`repro.lang.simplify.canonicalize`):
  reverse pushed to leaves, concatenations flattened, union disjuncts
  deduplicated and sorted — so `(a.b)-` and `b-.a-` compile to the
  *same* plan node and share one engine cache entry.

* **Hash-consing / cross-pattern CSE**: plan nodes are interned per
  compiler, so structurally equal sub-plans across a pattern set are
  one node, evaluated exactly once by the memoizing engine.  For
  concatenation chains the compiler additionally counts every
  contiguous sub-chain it has seen; chains shared by several patterns
  get their cost *amortized* in the ordering step below, which steers
  the multiplication order toward reusable intermediates (a sub-chain
  used ``k`` times costs ``cost/k`` per use once cached).

* **Cost-ordered sparse chain multiplication**: classic matrix-chain
  ordering over CSR, driven by nnz/density estimates.  For factor
  matrices with ``nnz_A`` and ``nnz_B`` nonzeros over ``n`` nodes the
  expected product cost is ``nnz_A * nnz_B / n`` flops and the expected
  product size ``min(n^2, nnz_A * nnz_B / n)`` — the standard uniform
  sparsity surrogate, good enough to order chains by.

Plan nodes are *identity-hashed* (interned), so the engine's LRU keys
directly on them; a node's :func:`str` is its canonical concrete
syntax.  This module is pure structure — matrices never enter it; the
engine (:mod:`repro.lang.matrix_semantics`) executes plans.
"""

import threading
from collections import Counter

from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Pattern,
    Reverse,
    Skip,
    Star,
    Union,
)
from repro.lang.simplify import canonicalize

#: Pretty-printer precedence per node kind (mirrors the AST's).
_PRECEDENCE = {
    "eps": 100,
    "leaf": 100,
    "transpose": 90,
    "star": 80,
    "chain": 50,
    "add": 10,
    "hadamard": 5,
    "bool": 100,
    "nested": 100,
}


class PlanNode:
    """One node of the canonical plan DAG.

    Nodes are created only through a :class:`PlanCompiler`, which
    interns them: within one compiler (hence one engine), structural
    equality *is* object identity, so nodes hash and compare by
    identity and can key an LRU directly.

    Kinds and their matrix semantics (executed by the engine):

    ========== ======================= ================================
    kind       children / payload      matrix
    ========== ======================= ================================
    eps        —                       identity
    leaf       payload = label         per-label adjacency
    transpose  (leaf,)                 child matrix transposed
    chain      k >= 2 factors          product, in the planned order
    add        sorted disjuncts        sum (duplicates sum repeatedly)
    hadamard   sorted conjuncts        elementwise product
    bool       (child,)                child > 0  (skip operator)
    nested     (child,)                diag{ M (M^T > 0) }
    star       (child,)                I + M + M^2 + ...  (bounded)
    ========== ======================= ================================

    Chain nodes additionally carry the ordering decision once
    :func:`order_chain` has run: ``split_at`` (relative split index)
    plus interned ``left``/``right`` sub-plans, and the estimated
    product nnz / multiplication cost that justified the split.
    """

    __slots__ = (
        "kind",
        "payload",
        "children",
        "uid",
        "_str",
        "est_nnz",
        "est_cost",
        "split_at",
        "left",
        "right",
        "labels",
        "has_identity",
    )

    def __init__(self, kind, payload, children, uid):
        self.kind = kind
        self.payload = payload
        self.children = children
        self.uid = uid
        self._str = _render(kind, payload, children)
        self.est_nnz = None
        self.est_cost = None
        self.split_at = None
        self.left = None
        self.right = None
        self.labels = None
        self.has_identity = None

    def __str__(self):
        return self._str

    def __repr__(self):
        return "PlanNode({}: {})".format(self.kind, self._str)

    def __hash__(self):
        return self.uid


def _child_str(parent_kind, child):
    text = child._str
    if _PRECEDENCE[child.kind] < _PRECEDENCE[parent_kind]:
        return "({})".format(text)
    return text


def _render(kind, payload, children):
    if kind == "eps":
        return "eps"
    if kind == "leaf":
        return payload
    if kind == "transpose":
        return _child_str(kind, children[0]) + "-"
    if kind == "star":
        return _child_str(kind, children[0]) + "*"
    if kind == "chain":
        return ".".join(_child_str(kind, child) for child in children)
    if kind == "add":
        return "+".join(_child_str(kind, child) for child in children)
    if kind == "hadamard":
        return "&".join(_child_str(kind, child) for child in children)
    if kind == "bool":
        return "<<{}>>".format(children[0]._str)
    if kind == "nested":
        return "[{}]".format(children[0]._str)
    raise ValueError("unknown plan node kind {!r}".format(kind))


class PlanCompiler:
    """Compiles Pattern ASTs into interned plan DAGs.

    One compiler lives on each :class:`CommutingMatrixEngine`; interning
    is what makes the engine cache canonical (equivalent patterns map to
    the same node object) and what implements cross-pattern CSE (shared
    sub-plans are shared nodes).  ``subchain_uses`` counts every
    contiguous sub-chain of every distinct chain compiled so far —
    including already-materialized intermediates, so later chains are
    biased toward reusing what is already cached.

    Compiler state is retained for the engine's lifetime (plan nodes
    are a few hundred bytes — negligible next to one matrix), but the
    two structures that grow with every *distinct* pattern are bounded
    so a long-lived session serving millions of ad-hoc patterns cannot
    leak: the pattern->plan memo is cleared past ``_MAX_PATTERN_MEMO``
    entries (a pure cache; recompiling is cheap), and ``subchain_uses``
    drops its count-1 entries past ``_MAX_SUBCHAIN_ENTRIES`` —
    singletons carry no sharing signal yet, only the potential to
    become one later, so pruning them merely forgets a heuristic
    discount.

    The compiler is thread-safe: the interning tables, the
    pattern->plan memo, the sub-chain counters, and the chain-ordering
    mutation of plan nodes are all guarded by one reentrant ``lock``,
    so N serving threads can compile against one engine concurrently.
    """

    _MAX_PATTERN_MEMO = 50_000
    _MAX_SUBCHAIN_ENTRIES = 200_000

    def __init__(self, checker=None):
        self.lock = threading.RLock()
        self._interned = {}
        self._by_pattern = {}
        self._next_uid = 0
        self.subchain_uses = Counter()
        #: Optional :class:`repro.analysis.PatternTypeChecker`.  When
        #: set, every *new* pattern is type-checked on the memo-miss
        #: path and ill-typed ones raise ``PatternTypeError`` before a
        #: plan node (or any matrix) exists for them.  Memo hits skip
        #: the check by construction: a memoized pattern already passed.
        self.checker = checker
        self.eps = self._intern("eps", None, ())

    def __len__(self):
        return len(self._interned)

    def _intern(self, kind, payload, children):
        key = (kind, payload, tuple(child.uid for child in children))
        with self.lock:
            node = self._interned.get(key)
            if node is None:
                node = PlanNode(kind, payload, tuple(children), self._next_uid)
                self._next_uid += 1
                self._interned[key] = node
                if kind == "chain":
                    self._count_subchains(node)
        return node

    def _count_subchains(self, node):
        # Every contiguous run of >= 2 factors (including the full
        # chain) is a potential shared intermediate; counted once per
        # distinct chain node, so recompiling a pattern never inflates
        # the statistics.
        uids = tuple(child.uid for child in node.children)
        for i in range(len(uids)):
            for j in range(i + 2, len(uids) + 1):
                self.subchain_uses[uids[i:j]] += 1
        if len(self.subchain_uses) > self._MAX_SUBCHAIN_ENTRIES:
            self.subchain_uses = Counter(
                {
                    key: count
                    for key, count in self.subchain_uses.items()
                    if count > 1
                }
            )

    def chain(self, factors):
        """The interned chain over ``factors`` (eps dropped, 1 -> itself)."""
        factors = [factor for factor in factors if factor.kind != "eps"]
        if not factors:
            return self.eps
        if len(factors) == 1:
            return factors[0]
        return self._intern("chain", None, factors)

    # ------------------------------------------------------------------
    def compile(self, pattern):
        """The canonical plan node for one Pattern AST (memoized)."""
        if not isinstance(pattern, Pattern):
            raise TypeError(
                "pattern must be a Pattern AST, got {!r}".format(pattern)
            )
        with self.lock:
            node = self._by_pattern.get(pattern)
            if node is None:
                if self.checker is not None:
                    self.checker.assert_well_typed(pattern)
                if len(self._by_pattern) >= self._MAX_PATTERN_MEMO:
                    self._by_pattern.clear()
                node = self._node_of(canonicalize(pattern))
                self._by_pattern[pattern] = node
        return node

    def compile_many(self, patterns):
        """Plans for a whole pattern set, compiled before any executes.

        Compiling the full set first is what gives the chain-ordering
        step complete sharing statistics: every shared sub-chain is
        counted before the first multiplication order is chosen.
        """
        return [self.compile(pattern) for pattern in patterns]

    def _node_of(self, pattern):
        if isinstance(pattern, Epsilon):
            return self.eps
        if isinstance(pattern, Label):
            return self._intern("leaf", pattern.name, ())
        if isinstance(pattern, Reverse):
            # Canonical form has Reverse only on labels.
            if not isinstance(pattern.operand, Label):
                raise TypeError(
                    "non-canonical Reverse of {!r}".format(pattern.operand)
                )
            return self._intern(
                "transpose", None, (self._node_of(pattern.operand),)
            )
        if isinstance(pattern, Concat):
            return self.chain([self._node_of(part) for part in pattern.parts])
        if isinstance(pattern, Union):
            # Canonical Unions are already raw-deduplicated; duplicates
            # that remain (raw-distinct, canonically equal disjuncts
            # like a-- + a) are summed twice, matching the recursive
            # semantics.
            children = sorted(
                (self._node_of(part) for part in pattern.parts),
                key=lambda node: (node._str, node.uid),
            )
            return self._intern("add", None, children)
        if isinstance(pattern, Conj):
            children = sorted(
                (self._node_of(part) for part in pattern.parts),
                key=lambda node: (node._str, node.uid),
            )
            return self._intern("hadamard", None, children)
        if isinstance(pattern, Skip):
            child = self._node_of(pattern.operand)
            if child.kind in ("bool", "eps"):
                return child
            return self._intern("bool", None, (child,))
        if isinstance(pattern, Nested):
            child = self._node_of(pattern.operand)
            if child.kind == "eps":
                return child
            return self._intern("nested", None, (child,))
        if isinstance(pattern, Star):
            return self._intern("star", None, (self._node_of(pattern.operand),))
        raise TypeError("unhandled pattern node {!r}".format(pattern))


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def product_nnz(nnz_a, nnz_b, n):
    """Expected nnz of a sparse product under uniform sparsity.

    Shared with the engine's streaming chain executor, which uses it to
    size row blocks from the widest prefix-product estimate.
    """
    n = max(float(n), 1.0)
    return min(n * n, nnz_a * nnz_b / n)


#: Backwards-compatible private alias (the DP below predates the public
#: name).
_product_nnz = product_nnz


def _product_cost(nnz_a, nnz_b, n):
    """Expected flops of a sparse product under uniform sparsity."""
    return nnz_a * nnz_b / max(float(n), 1.0)


def estimate_nnz(node, leaf_nnz, n):
    """Estimated nnz of a plan node's matrix (memoized on the node).

    ``leaf_nnz`` maps a label to its adjacency's exact nnz; everything
    above the leaves is the standard uniform-sparsity surrogate.  The
    memo is per-node, hence per-compiler, hence per-engine — one
    database snapshot, so leaf counts never go stale.
    """
    if node.est_nnz is not None:
        return node.est_nnz
    kind = node.kind
    if kind == "eps":
        estimate = float(n)
    elif kind == "leaf":
        estimate = float(leaf_nnz(node.payload))
    elif kind in ("transpose", "bool"):
        estimate = estimate_nnz(node.children[0], leaf_nnz, n)
    elif kind == "nested":
        estimate = min(estimate_nnz(node.children[0], leaf_nnz, n), float(n))
    elif kind == "star":
        # I + M + M^2 + ...: at least the identity plus the base, and
        # powers tend to fill in; a crude multiple of the base suffices
        # for ordering (stars are rare inside chains).
        base = estimate_nnz(node.children[0], leaf_nnz, n)
        estimate = min(float(n) * n, n + 4.0 * base)
    elif kind == "add":
        total = sum(
            estimate_nnz(child, leaf_nnz, n) for child in node.children
        )
        estimate = min(float(n) * n, total)
    elif kind == "hadamard":
        estimate = min(
            estimate_nnz(child, leaf_nnz, n) for child in node.children
        )
    elif kind == "chain":
        estimate = estimate_nnz(node.children[0], leaf_nnz, n)
        for child in node.children[1:]:
            estimate = _product_nnz(
                estimate, estimate_nnz(child, leaf_nnz, n), n
            )
    else:
        raise ValueError("unknown plan node kind {!r}".format(kind))
    node.est_nnz = estimate
    return estimate


def estimate_bytes(node, leaf_nnz, n):
    """Estimated resident CSR bytes of a plan node's matrix.

    The byte surrogate the memory budget plans against: ``nnz`` scaled
    by data + index width (16 bytes — float64 data plus an index slot,
    counting the 64-bit worst case) plus the ``indptr`` spine.  Built
    on :func:`estimate_nnz`, so it is exact at the leaves and the
    standard uniform-sparsity estimate above them — good enough to
    decide "will this intermediate fit", which only needs the right
    order of magnitude.
    """
    return 16.0 * estimate_nnz(node, leaf_nnz, n) + 8.0 * (float(n) + 1.0)


def order_chain(node, leaf_nnz, n, compiler):
    """Choose (and record) the multiplication order for a chain node.

    Classic O(k^3) matrix-chain DP over the factor nnz estimates, with
    one twist: a contiguous segment that ``compiler.subchain_uses``
    says appears in >= 2 distinct chains has its cost divided by that
    count — once cached it is free for every later use, so its
    *amortized* cost is what the parent split should see.  This is what
    steers an Algorithm-1 pattern set toward evaluating each shared
    prefix/sub-chain exactly once.

    The chosen split is recorded on the chain node (``split_at``,
    ``left``, ``right``) and recursively on every interned sub-chain;
    a sub-chain that was already ordered (e.g. as another pattern's
    chain) keeps its earlier decision, so cached intermediates stay
    valid.  Idempotent, and serialized under the compiler's lock so
    concurrent serving threads never observe a half-recorded split.
    """
    with compiler.lock:
        _order_chain_locked(node, leaf_nnz, n, compiler)


def _order_chain_locked(node, leaf_nnz, n, compiler):
    if node.split_at is not None:
        return
    factors = node.children
    k = len(factors)
    uids = tuple(factor.uid for factor in factors)
    shared = compiler.subchain_uses
    estimates = [estimate_nnz(factor, leaf_nnz, n) for factor in factors]

    nnz = {}
    cost = {}
    split = {}
    for i in range(k):
        nnz[(i, i + 1)] = estimates[i]
        cost[(i, i + 1)] = 0.0
    for span in range(2, k + 1):
        for i in range(0, k - span + 1):
            j = i + span
            best = best_m = None
            for m in range(i + 1, j):
                candidate = (
                    cost[(i, m)]
                    + cost[(m, j)]
                    + _product_cost(nnz[(i, m)], nnz[(m, j)], n)
                )
                if best is None or candidate < best:
                    best, best_m = candidate, m
            split[(i, j)] = best_m
            nnz[(i, j)] = _product_nnz(
                nnz[(i, best_m)], nnz[(best_m, j)], n
            )
            uses = shared.get(uids[i:j], 0)
            # Amortize: a segment used by `uses` chains is computed
            # once and hit `uses - 1` times.
            cost[(i, j)] = best / uses if uses >= 2 else best

    def attach(i, j):
        if j - i == 1:
            return factors[i]
        sub = node if (i, j) == (0, k) else compiler.chain(factors[i:j])
        if sub.split_at is None:
            m = split[(i, j)]
            sub.split_at = m - i
            sub.est_nnz = nnz[(i, j)]
            sub.est_cost = cost[(i, j)]
            sub.left = attach(i, m)
            sub.right = attach(m, j)
        return sub

    attach(0, k)


def leaf_labels(node):
    """The set of adjacency labels a plan's matrix depends on (memoized).

    The delta-maintenance fast path: an edge delta touching only labels
    outside ``leaf_labels(plan)`` cannot change the plan's matrix, so
    the engine keeps the cached entry untouched without looking at it.
    Memoized on the node (one compiler per engine, labels never change).
    """
    if node.labels is not None:
        return node.labels
    if node.kind == "leaf":
        labels = frozenset((node.payload,))
    elif node.kind == "eps":
        labels = frozenset()
    else:
        labels = frozenset().union(
            *(leaf_labels(child) for child in node.children)
        )
    node.labels = labels
    return labels


def embeds_identity(node):
    """True when the plan's matrix contains an identity term (memoized).

    ``eps`` and ``star`` matrices carry ``I`` explicitly, so growing the
    node set changes them (new diagonal ones) even when no edge touches
    the plan's labels; every other kind just gains all-zero rows and
    columns.  Used by delta maintenance to patch the diagonal of
    identity-bearing entries after node additions.
    """
    if node.has_identity is not None:
        return node.has_identity
    if node.kind in ("eps", "star"):
        result = True
    else:
        result = any(embeds_identity(child) for child in node.children)
    node.has_identity = result
    return result


def pattern_footprint(plans):
    """``(labels, embeds_identity)`` for a compiled plan set.

    The delta footprint of a pattern-local algorithm: the union of
    :func:`leaf_labels` over its compiled plans is every adjacency label
    whose edges can influence its commuting matrices, and the identity
    flag marks whether growing the node set alone (``eps``/``star``
    plans gain diagonal ones) can change them.  Standing-query
    subscriptions record this pair once and test each published delta
    against it — a delta touching neither is provably irrelevant.
    """
    plans = list(plans)
    if not plans:
        return frozenset(), False
    labels = frozenset().union(*(leaf_labels(plan) for plan in plans))
    return labels, any(embeds_identity(plan) for plan in plans)


def render_order(node):
    """The chosen multiplication order as a parenthesized expression.

    Chains print with explicit binary parentheses (``((a.b).c)``);
    everything else prints canonically.  Chains that have not been
    ordered yet print canonically too.
    """
    if node.kind != "chain" or node.split_at is None:
        return str(node)
    return "({}.{})".format(render_order(node.left), render_order(node.right))
