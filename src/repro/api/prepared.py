"""Prepared queries: parse, expand, compile, and warm once — run many.

The one-shot API pays the full query-preparation bill on every call:
``session.query(node).using(...).top(k)`` re-normalizes options,
re-runs Algorithm 1 when expansion is requested, re-constructs the
algorithm, and re-probes the plan compiler before a single score is
computed.  A serving workload asks the same *shape* of query thousands
of times with only the query node changing, so the paper's usability
stance (the system owns the query-to-computation mapping, Sections 2
and 5) extends naturally: the system should own query *preparation*
too.

:class:`PreparedQuery` is that split.  Construction does everything
that does not depend on the query node — pattern parsing, Algorithm-1
expansion, plan compilation, commuting-matrix materialization, column
norms / diagonals, candidate-index warming — and :meth:`PreparedQuery.run`
/ :meth:`PreparedQuery.run_many` then execute on pinned immutable state
with near-zero per-call overhead.

A prepared query is also the unit of *re-binding*: it remembers its
spec (algorithm name, options, expansion request), so
:class:`~repro.api.service.SimilarityService` can rebuild it against a
fresh snapshot and atomically swap the bound state — in-flight calls
finish on the snapshot they started on, because :meth:`run` reads the
bound state exactly once.
"""

from repro.api.registry import algorithm_class
from repro.exceptions import EvaluationError
from repro.lang.ast import Pattern
from repro.similarity.base import SimilarityAlgorithm

_UNSET = object()

#: Defaults applied when expansion is requested as ``expand=True``.
_EXPAND_DEFAULTS = {
    "constraints": None,
    "use_filters": True,
    "max_patterns": 64,
}


def normalize_expand(expand):
    """The canonical expansion request: ``None`` or a complete dict.

    Accepts ``None`` (no expansion), ``True`` (defaults), or a dict
    with any of ``constraints`` / ``use_filters`` / ``max_patterns``.
    """
    if expand is None or expand is False:
        return None
    if expand is True:
        return dict(_EXPAND_DEFAULTS)
    if isinstance(expand, dict):
        unknown = set(expand) - set(_EXPAND_DEFAULTS)
        if unknown:
            raise EvaluationError(
                "unknown expand option(s) {}; valid: {}".format(
                    sorted(unknown), sorted(_EXPAND_DEFAULTS)
                )
            )
        resolved = dict(_EXPAND_DEFAULTS)
        resolved.update(expand)
        return resolved
    raise TypeError(
        "expand must be None, True, or a dict of expansion options, got "
        "{!r}".format(expand)
    )


def expanded_options(session, name, options, expand):
    """Run Algorithm 1 on the spec's simple pattern; returns new options.

    The pattern handed in via ``pattern=``/``patterns=`` is expanded
    against the schema's constraints (or an explicit ``constraints``
    list) into the robust RRE set.  Only pattern-set algorithms
    (RelSim) can aggregate that set.
    """
    from repro.core.relsim import RelSim
    from repro.patterns.generator import generate_patterns

    if not issubclass(algorithm_class(name), RelSim):
        raise EvaluationError(
            "expand_patterns() aggregates a pattern set; only "
            "RelSim-style algorithms support it (got {!r})".format(name)
        )
    options = dict(options)
    pattern = options.pop("pattern", None)
    if pattern is None:
        pattern = options.pop("patterns", None)
    if pattern is None:
        raise EvaluationError(
            "expand_patterns() needs the simple input pattern; "
            "pass pattern=... to using()"
        )
    constraints = expand["constraints"]
    if constraints is None:
        constraints = session.database.schema.constraints
    generated = generate_patterns(
        pattern,
        constraints,
        use_filters=expand["use_filters"],
        max_patterns=expand["max_patterns"],
    )
    options["patterns"] = generated.patterns
    return options


def _patterns_of(algorithm):
    patterns = getattr(algorithm, "patterns", None)
    if patterns:
        return list(patterns)
    pattern = getattr(algorithm, "pattern", None)
    return [pattern] if pattern is not None else []


class _BoundQuery:
    """The immutable execution state of a prepared query on one snapshot.

    Everything a ``run`` touches hangs off this one object — session,
    algorithm instance (with its pinned scoring state), pattern list —
    so reading ``PreparedQuery._bound`` once makes the whole call
    snapshot-consistent: a concurrent swap can never tear it.
    """

    __slots__ = ("session", "algorithm", "patterns")

    def __init__(self, session, algorithm, patterns):
        self.session = session
        self.algorithm = algorithm
        self.patterns = tuple(patterns)


def bind(session, spec, warm=True, expanded_patterns=None):
    """Build the :class:`_BoundQuery` for ``spec`` on ``session``.

    ``spec`` is ``(algorithm, options, expand)`` where ``algorithm`` is
    a registry name or a pre-built instance.  With ``warm`` (the
    default), the instance's reusable scoring state is pinned
    (:meth:`~repro.similarity.base.SimilarityAlgorithm.prepare_scoring`)
    and the candidate index for a fixed answer type is built now, so
    the first ``run`` is already a hot call.

    ``expanded_patterns`` short-circuits Algorithm-1 expansion with an
    already-expanded pattern list — the incremental re-bind path: an
    edge delta never changes the schema's constraints, so the expansion
    a previous bind computed is still exact and need not be re-run.
    """
    algorithm, options, expand = spec
    if isinstance(algorithm, SimilarityAlgorithm):
        instance = algorithm
    else:
        if expand is not None:
            if expanded_patterns is not None:
                options = dict(options)
                options.pop("pattern", None)
                options.pop("patterns", None)
                options["patterns"] = list(expanded_patterns)
            else:
                options = expanded_options(
                    session, algorithm, options, expand
                )
        instance = session.algorithm(algorithm, **options)
    patterns = _patterns_of(instance)
    # Fail fast on ill-typed patterns even without warming: compiling is
    # plan-only (no matrices), and the compiler's schema-aware type
    # checker raises PatternTypeError here — before the caller gets a
    # handle whose first run would surface the problem as an empty or
    # nonsensical ranking.
    for pattern in patterns:
        if isinstance(pattern, Pattern):
            session.engine.compile(pattern)
    if warm:
        instance.prepare_scoring()
        answer_type = getattr(instance, "_answer_type", None)
        if answer_type is not None and instance._view is not None:
            instance._view.candidate_index(answer_type)
    return _BoundQuery(session, instance, patterns)


class PreparedQuery:
    """A query shape, prepared once, executable for any query node.

    Obtained from :meth:`SimilaritySession.prepare` (or
    :meth:`SimilarityService.prepare`, which additionally keeps the
    handle fresh across snapshot swaps)::

        prepared = session.prepare(
            algorithm="relsim", pattern="p-in.p-in-",
            expand={"max_patterns": 16}, top_k=10,
        )
        prepared.run("proc:0")            # hot: pinned state only
        prepared.run_many(workload)       # batch, one slice per pattern
        print(prepared.explain())         # the compiled plan report

    ``top_k`` fixed at preparation is the default for every run and can
    be overridden per call.  The handle is thread-safe: runs only read
    the immutable bound state, and re-binding (live updates) replaces
    it with a single atomic reference assignment.
    """

    def __init__(
        self, session, algorithm="relsim", top_k=None, expand=None,
        warm=True, **options
    ):
        if isinstance(algorithm, SimilarityAlgorithm):
            if options:
                raise TypeError(
                    "options {} are only valid with an algorithm name, "
                    "not a pre-built instance".format(sorted(options))
                )
            if expand is not None:
                raise EvaluationError(
                    "expand= needs an algorithm name; a pre-built "
                    "instance already fixed its patterns"
                )
        self._spec = (algorithm, dict(options), normalize_expand(expand))
        self._top_k = top_k
        self._warm = warm
        self._bound = bind(session, self._spec, warm=warm)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self):
        """The session (snapshot) currently serving this query."""
        return self._bound.session

    @property
    def algorithm(self):
        """The bound algorithm instance (pinned scoring state)."""
        return self._bound.algorithm

    @property
    def algorithm_name(self):
        """The registry name of the spec (``None`` for instances)."""
        name = self._spec[0]
        return name if isinstance(name, str) else None

    @property
    def patterns(self):
        """The patterns the bound algorithm scores with (post-expansion)."""
        return list(self._bound.patterns)

    @property
    def top_k(self):
        """The default ``top_k`` applied by :meth:`run`/:meth:`run_many`."""
        return self._top_k

    def footprint(self):
        """``(labels, growth_sensitive)`` for delta pruning, or ``None``.

        ``labels`` is the frozenset of edge labels this query's scores
        can possibly read; a delta touching none of them cannot change
        any ranking.  ``growth_sensitive`` marks queries whose float
        results can also shift when the node set grows (shape-dependent
        reductions, or plans embedding an identity term).  ``None``
        means the algorithm may read the whole graph — every delta is
        relevant.
        """
        from repro.lang.plan import pattern_footprint

        bound = self._bound
        algorithm = bound.algorithm
        if not algorithm.pattern_local:
            return None
        plans = [
            bound.session.engine.compile(pattern)
            for pattern in bound.patterns
            if isinstance(pattern, Pattern)
        ]
        labels, embeds = pattern_footprint(plans)
        return labels, algorithm.delta_growth_sensitive or embeds

    def bound_snapshot(self):
        """``(session, algorithm)`` read atomically from the bound state.

        One read of the bound reference, so the pair is always mutually
        consistent even against a concurrent rebind — unlike reading
        :attr:`session` and :attr:`algorithm` separately.
        """
        bound = self._bound
        return bound.session, bound.algorithm

    def explain(self):
        """The compiled plan report for the prepared pattern set."""
        bound = self._bound
        if not bound.patterns:
            raise EvaluationError(
                "algorithm {!r} scores without patterns; nothing to "
                "explain".format(
                    self.algorithm_name or type(bound.algorithm).__name__
                )
            )
        return bound.session.explain(list(bound.patterns))

    def export_spec(self):
        """This query's shape as a picklable, process-portable dict.

        Everything a worker process needs to rebuild an equivalent
        prepared handle on its own attached session: the registry name,
        options with patterns flattened to canonical text (which
        re-parses to the same interned plan anywhere), the normalized
        expansion request, the default ``top_k`` — and, when expansion
        ran, the already-expanded pattern set as text, so workers reuse
        it via :meth:`from_spec` instead of re-running Algorithm 1
        (deltas never change the schema's constraints, so the set stays
        exact; custom constraint objects also need not cross the
        process boundary).  Instance-bound queries cannot be exported,
        for the same reason they cannot be re-bound.
        """
        algorithm, options, expand = self._spec
        if not isinstance(algorithm, str):
            raise EvaluationError(
                "cannot export a query prepared from a pre-built "
                "instance; prepare by registry name for process workers"
            )
        portable = {}
        for key, value in options.items():
            if isinstance(value, Pattern):
                value = str(value)
            elif isinstance(value, (list, tuple)):
                value = [
                    str(item) if isinstance(item, Pattern) else item
                    for item in value
                ]
            portable[key] = value
        spec = {
            "algorithm": algorithm,
            "options": portable,
            "expand": None,
            "top_k": self._top_k,
            "expanded_patterns": None,
        }
        if expand is not None:
            spec["expand"] = dict(expand, constraints=None)
            spec["expanded_patterns"] = [
                str(pattern) for pattern in self._bound.patterns
            ]
        return spec

    @classmethod
    def from_spec(cls, session, spec):
        """Rebuild an exported query shape on ``session`` (worker side).

        The inverse of :meth:`export_spec`: binds (and warms) the same
        algorithm/options/top_k against the given session, reusing the
        exported Algorithm-1 expansion instead of re-running it.
        """
        prepared = cls.__new__(cls)
        prepared._spec = (
            spec["algorithm"],
            dict(spec.get("options") or {}),
            normalize_expand(spec.get("expand")),
        )
        prepared._top_k = spec.get("top_k")
        prepared._warm = True
        prepared._bound = bind(
            session,
            prepared._spec,
            warm=True,
            expanded_patterns=spec.get("expanded_patterns"),
        )
        return prepared

    # ------------------------------------------------------------------
    # Execution (hot path)
    # ------------------------------------------------------------------
    def run(self, node, top_k=_UNSET):
        """The :class:`Ranking` for one query node, on warm state.

        Reads the bound snapshot exactly once, so a concurrent
        re-binding (``SimilarityService.apply``/``swap``) never tears a
        call: it finishes entirely on the snapshot it started on.
        """
        bound = self._bound
        k = self._top_k if top_k is _UNSET else top_k
        return bound.algorithm.rank(node, top_k=k)

    def run_many(self, nodes, top_k=_UNSET):
        """``{node: Ranking}`` for a workload, scored in batch."""
        bound = self._bound
        k = self._top_k if top_k is _UNSET else top_k
        return bound.algorithm.rank_many(list(nodes), top_k=k)

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def rebind(self, session):
        """Re-prepare against ``session`` and swap atomically.

        Equivalent to ``self._swap_bound(self._rebound(session))`` —
        build first (the old snapshot keeps serving), then one atomic
        reference assignment.
        """
        self._swap_bound(self._rebound(session))
        return self

    def _rebound(self, session, reuse_expansion=False):
        """Build (but do not install) this spec's bound state on ``session``.

        With ``reuse_expansion`` (the incremental live-update path), the
        Algorithm-1 expansion already bound to this handle is reused
        instead of re-generated: edge/node deltas cannot change the
        schema's constraints, so the expanded set is unchanged and
        re-binding reduces to re-pinning scoring state — which the
        engine's delta-maintained caches serve mostly by identity.
        """
        if isinstance(self._spec[0], SimilarityAlgorithm):
            raise EvaluationError(
                "cannot rebind a query prepared from a pre-built "
                "instance; prepare by registry name for live updates"
            )
        expanded = self._bound.patterns if reuse_expansion else None
        return bind(
            session, self._spec, warm=self._warm, expanded_patterns=expanded
        )

    def _swap_bound(self, bound):
        # A single attribute assignment: atomic under the GIL, so
        # concurrent run() calls see either the old or the new bound
        # state, never a mixture.
        self._bound = bound

    def __repr__(self):
        bound = self._bound
        return "PreparedQuery({}, patterns={}, top_k={})".format(
            self.algorithm_name or type(bound.algorithm).__name__,
            len(bound.patterns),
            self._top_k,
        )
