"""`SimilarityService` — live-updatable serving over session snapshots.

Sessions (and the matrix views / engines under them) are frozen
snapshots by design: mutate the database and every cached matrix goes
stale.  That is the right invariant for correctness but the wrong API
for serving — a production system must absorb edge churn without
pausing queries.  The service closes the gap with **atomic snapshot
swap**:

* the service owns the *current* :class:`~repro.api.session.SimilaritySession`
  over a private copy of the database (callers can keep mutating their
  own object without corrupting the snapshot);
* :meth:`SimilarityService.apply` (edge deltas) and
  :meth:`SimilarityService.swap` (whole database) rebuild a fresh
  session off the serving path using :meth:`GraphDatabase.copy` — the
  old snapshot keeps answering queries the entire time;
* every outstanding :class:`~repro.api.prepared.PreparedQuery` handed
  out by :meth:`prepare` is re-bound against the new snapshot (pattern
  expansion re-run, matrices re-materialized, scoring state re-pinned)
  *before* anything is published;
* publication is a handful of reference assignments: in-flight queries
  finish on the snapshot they started on, new requests see the new one,
  and :attr:`version` increases monotonically.

Mutations are serialized by an internal lock; queries never take it.
"""

import threading
import weakref

from repro.api.session import SimilaritySession
from repro.similarity.base import SimilarityAlgorithm
from repro.exceptions import EvaluationError


class _Snapshot:
    """One immutable (session, version) pair; replaced wholesale on swap."""

    __slots__ = ("session", "version")

    def __init__(self, session, version):
        self.session = session
        self.version = version


class SimilarityService:
    """Serve similarity queries with live updates and prepared handles.

    Parameters
    ----------
    database:
        The initial :class:`~repro.graph.database.GraphDatabase`.
        Copied by default (``copy=False`` trusts the caller never to
        mutate it afterwards).
    copy:
        Whether to privately copy ``database`` (default True).
    **session_options:
        Forwarded to every :class:`SimilaritySession` the service
        builds, now and after each swap (``max_star_depth``,
        ``max_cached_matrices``).

    Usage::

        service = SimilarityService(db)
        prepared = service.prepare(
            algorithm="relsim", pattern="p-in.p-in-",
            expand={"max_patterns": 16}, top_k=10,
        )
        prepared.run("proc:0")                    # serves version 1
        service.apply(edges_added=[("paper:9", "p-in", "proc:0")])
        prepared.run("proc:0")                    # serves version 2
    """

    def __init__(self, database, copy=True, **session_options):
        self._session_options = dict(session_options)
        snapshot_db = database.copy() if copy else database
        self._snapshot = _Snapshot(
            SimilaritySession(snapshot_db, **self._session_options), 1
        )
        self._mutate_lock = threading.RLock()
        self._handles = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self):
        """Monotonically increasing snapshot version (starts at 1)."""
        return self._snapshot.version

    @property
    def session(self):
        """The current serving session (a frozen snapshot)."""
        return self._snapshot.session

    @property
    def database(self):
        """The current snapshot's database (service-private; don't mutate)."""
        return self._snapshot.session.database

    def prepared_queries(self):
        """The live prepared handles the service keeps fresh."""
        with self._mutate_lock:
            return [
                handle
                for handle in (ref() for ref in self._handles)
                if handle is not None
            ]

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------
    def prepare(self, algorithm="relsim", top_k=None, expand=None, **options):
        """A :class:`PreparedQuery` the service re-binds on every swap.

        Same signature as :meth:`SimilaritySession.prepare`, except the
        algorithm must be a registry *name*: re-binding rebuilds the
        instance on the new snapshot, which a pre-built instance cannot
        express.  Handles are tracked weakly — drop the reference and
        the service stops refreshing it.
        """
        if isinstance(algorithm, SimilarityAlgorithm):
            raise EvaluationError(
                "SimilarityService.prepare needs a registry name; a "
                "pre-built instance cannot be re-bound on snapshot swap"
            )
        with self._mutate_lock:
            # Under the mutation lock so a concurrent swap cannot slip
            # between binding against the old session and registering
            # the handle for future re-binds.
            prepared = self._snapshot.session.prepare(
                algorithm=algorithm, top_k=top_k, expand=expand, **options
            )
            # Prune dead refs here, not just on swap: a read-mostly
            # service preparing transient handles would otherwise grow
            # the list by one dead weakref per request.
            self._handles = [
                ref for ref in self._handles if ref() is not None
            ]
            self._handles.append(weakref.ref(prepared))
            return prepared

    def query(self, node):
        """A one-shot fluent builder on the current snapshot."""
        return self._snapshot.session.query(node)

    def rank_many(self, queries, algorithm="relsim", top_k=None, **options):
        """Batch ranking on the current snapshot (see session.rank_many)."""
        return self._snapshot.session.rank_many(
            queries, algorithm=algorithm, top_k=top_k, **options
        )

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def apply(self, edges_added=(), edges_removed=(), wait=True):
        """Apply an edge delta and swap in the rebuilt snapshot.

        ``edges_added`` / ``edges_removed`` are iterables of
        ``(source, label, target)`` triples, applied to a
        :meth:`~repro.graph.database.GraphDatabase.copy` of the current
        snapshot — removing an absent edge raises
        :class:`~repro.exceptions.UnknownEdgeError`, and the serving
        snapshot is untouched until the whole rebuild succeeds.

        Returns the new :attr:`version`.  With ``wait=False`` the
        rebuild runs on a background thread and the started
        ``threading.Thread`` is returned instead; after ``join()``,
        ``thread.version`` holds the new version and ``thread.error``
        the exception that aborted the rebuild (``None`` on success) —
        a failed delta never swaps, so callers must check it.  Queries
        are served from the old snapshot throughout either way.
        """
        edges_added = list(edges_added)
        edges_removed = list(edges_removed)
        if not wait:
            return self._in_background(
                lambda: self.apply(edges_added, edges_removed)
            )
        with self._mutate_lock:
            database = self._snapshot.session.database.copy()
            for edge in edges_removed:
                database.remove_edge(*edge)
            for edge in edges_added:
                database.add_edge(*edge)
            return self._swap_locked(database)

    def swap(self, database, wait=True):
        """Replace the whole database (copied) and swap atomically.

        Returns the new :attr:`version` (or the background
        ``threading.Thread`` with ``wait=False``).
        """
        if not wait:
            return self._in_background(lambda: self.swap(database))
        with self._mutate_lock:
            return self._swap_locked(database.copy())

    @staticmethod
    def _in_background(target):
        # The outcome is recorded on the thread object itself: a
        # background failure must be observable to the caller, not
        # swallowed into threading.excepthook while the service keeps
        # serving stale data.
        def runner():
            try:
                thread.version = target()
            except BaseException as error:
                # Recorded, not re-raised: thread.error is the caller's
                # signal; re-raising would only spam threading.excepthook.
                thread.error = error

        thread = threading.Thread(target=runner, daemon=True)
        thread.version = None
        thread.error = None
        thread.start()
        return thread

    def _swap_locked(self, database):
        session = SimilaritySession(database, **self._session_options)
        # Phase 1 (slow, off the serving path): rebuild every live
        # prepared handle against the new session.  Expansion re-runs,
        # matrices re-materialize, scoring state re-pins — all while
        # the old snapshot keeps answering queries.
        rebinds = []
        surviving = []
        for ref in self._handles:
            handle = ref()
            if handle is None:
                continue
            rebinds.append((handle, handle._rebound(session)))
            surviving.append(ref)
        self._handles = surviving
        # Phase 2 (fast): publish.  Each assignment is atomic, so any
        # in-flight run() holds a complete old bound state and any new
        # run() picks up a complete new one — never a mixture.
        for handle, bound in rebinds:
            handle._swap_bound(bound)
        self._snapshot = _Snapshot(session, self._snapshot.version + 1)
        return self._snapshot.version

    def __repr__(self):
        snapshot = self._snapshot
        return "SimilarityService(version={}, {!r})".format(
            snapshot.version, snapshot.session.database
        )
