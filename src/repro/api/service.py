"""`SimilarityService` — live-updatable serving over session snapshots.

Sessions (and the matrix views / engines under them) are frozen
snapshots by design: mutate the database and every cached matrix goes
stale.  That is the right invariant for correctness but the wrong API
for serving — a production system must absorb edge churn without
pausing queries.  The service closes the gap with **atomic snapshot
swap**:

* the service owns the *current* :class:`~repro.api.session.SimilaritySession`
  over a private copy of the database (callers can keep mutating their
  own object without corrupting the snapshot);
* :meth:`SimilarityService.apply` (edge/node deltas) builds the next
  snapshot off the serving path — small batches **incrementally**, by
  forking the serving engine and patching its cached matrices through
  sparse delta propagation (bitwise identical to a rebuild, typically
  an order of magnitude faster for single-edge churn); large batches
  and :meth:`SimilarityService.swap` (whole database) fall back to the
  full session rebuild.  The old snapshot keeps answering queries the
  entire time either way;
* every outstanding :class:`~repro.api.prepared.PreparedQuery` handed
  out by :meth:`prepare` is re-bound against the new snapshot (pattern
  expansion re-run, matrices re-materialized, scoring state re-pinned)
  *before* anything is published;
* publication is a handful of reference assignments: in-flight queries
  finish on the snapshot they started on, new requests see the new one,
  and :attr:`version` increases monotonically.

Mutations are serialized by an internal lock; queries never take it.
"""

import threading
import time
import weakref

from repro.api.prepared import _UNSET
from repro.api.session import SimilaritySession
from repro.similarity.base import SimilarityAlgorithm
from repro.exceptions import EvaluationError
from repro.streaming import DeltaReport, SubscriptionManager


class _Snapshot:
    """One immutable (session, version) pair; replaced wholesale on swap."""

    __slots__ = ("session", "version")

    def __init__(self, session, version):
        self.session = session
        self.version = version


class SimilarityService:
    """Serve similarity queries with live updates and prepared handles.

    Parameters
    ----------
    database:
        The initial :class:`~repro.graph.database.GraphDatabase`.
        Copied by default (``copy=False`` trusts the caller never to
        mutate it afterwards).
    copy:
        Whether to privately copy ``database`` (default True).
    session:
        Alternatively, adopt an already-built
        :class:`SimilaritySession` as the first snapshot — the
        warm-start path (:func:`repro.server.snapshot.load_service`
        hands over a session whose engine cache was preloaded from
        disk).  Mutually exclusive with ``database``; the session is
        trusted to be private (nobody else mutates its database).
    checkpoint:
        Optional ``callable(service, version)`` invoked after every
        *successful* ``apply``/``swap``, once the new snapshot is
        published — the persistence hook (``repro serve`` wires it to
        :func:`~repro.server.snapshot.save_snapshot`).  A checkpoint
        failure never un-publishes the swap; it is recorded in
        :attr:`last_error` instead.
    **session_options:
        Forwarded to every :class:`SimilaritySession` the service
        builds, now and after each swap (``max_star_depth``,
        ``max_cached_matrices``, ``memory_budget``).  The incremental
        path forks the current engine instead of rebuilding, and a fork
        inherits the same limits, so the byte budget holds across live
        updates either way.

    Usage::

        service = SimilarityService(db)
        prepared = service.prepare(
            algorithm="relsim", pattern="p-in.p-in-",
            expand={"max_patterns": 16}, top_k=10,
        )
        prepared.run("proc:0")                    # serves version 1
        service.apply(edges_added=[("paper:9", "p-in", "proc:0")])
        prepared.run("proc:0")                    # serves version 2
    """

    #: Largest delta batch (edges added + removed + nodes added) routed
    #: through the incremental path when ``apply(..., incremental=None)``.
    DEFAULT_INCREMENTAL_THRESHOLD = 64

    def __init__(
        self,
        database=None,
        copy=True,
        incremental_threshold=DEFAULT_INCREMENTAL_THRESHOLD,
        session=None,
        checkpoint=None,
        **session_options,
    ):
        self._session_options = dict(session_options)
        self._incremental_threshold = incremental_threshold
        if session is not None:
            if database is not None:
                raise EvaluationError(
                    "pass either database= or session=, not both"
                )
            initial = session
        else:
            if database is None:
                raise EvaluationError(
                    "SimilarityService needs a database= or session="
                )
            snapshot_db = database.copy() if copy else database
            initial = SimilaritySession(snapshot_db, **self._session_options)
        self._snapshot = _Snapshot(initial, 1)
        self._mutate_lock = threading.RLock()
        self._handles = []
        self._publish_hooks = []
        self._last_error = None
        self.checkpoint = checkpoint
        self._delta_stats = {
            "incremental_applies": 0,
            "full_rebuilds": 0,
            "patched": 0,
            "invalidated": 0,
            "last_path": None,
        }
        self._subscriptions = SubscriptionManager()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self):
        """Monotonically increasing snapshot version (starts at 1)."""
        return self._snapshot.version

    @property
    def session(self):
        """The current serving session (a frozen snapshot)."""
        return self._snapshot.session

    @property
    def database(self):
        """The current snapshot's database (service-private; don't mutate)."""
        return self._snapshot.session.database

    def prepared_queries(self):
        """The live prepared handles the service keeps fresh."""
        with self._mutate_lock:
            return [
                handle
                for handle in (ref() for ref in self._handles)
                if handle is not None
            ]

    @property
    def last_error(self):
        """The most recent *asynchronous* failure, or ``None``.

        Background ``apply``/``swap`` threads (``wait=False``) and
        checkpoint callbacks fail where no caller is waiting; besides
        the per-thread ``thread.error`` record, the service keeps the
        most recent such failure here so operators can see it —
        ``/healthz`` reports it and flips its status to ``degraded``.
        A dict with ``operation`` (``"apply"`` / ``"swap"`` /
        ``"checkpoint"``), ``error`` (the exception), ``message``,
        ``time`` (unix), and ``version`` (the serving version when the
        failure was recorded).  Sticky until the next failure
        overwrites it or :meth:`clear_last_error` is called.
        """
        with self._mutate_lock:
            record = self._last_error
            return dict(record) if record is not None else None

    def clear_last_error(self):
        """Acknowledge (drop) the :attr:`last_error` record."""
        with self._mutate_lock:
            self._last_error = None

    def _record_error(self, operation, error):
        with self._mutate_lock:
            self._last_error = {
                "operation": operation,
                "error": error,
                "message": "{}: {}".format(type(error).__name__, error),
                "time": time.time(),
                "version": self._snapshot.version,
            }

    def on_publish(self, callback):
        """Register ``callback(session, version)`` to run on every swap.

        Invoked under the mutation lock, immediately after the new
        snapshot is published (so in-process prepared handles are
        already re-bound) and before ``apply``/``swap`` returns — the
        hook by which the process worker pool re-publishes each new
        snapshot into shared memory and migrates its workers.  A hook
        failure is recorded in :attr:`last_error` (operation
        ``"publish-hook"``), never raised: the swap itself already
        succeeded, exactly like a checkpoint failure.  Returns an
        unregister callable.
        """
        with self._mutate_lock:
            self._publish_hooks.append(callback)

        def unregister():
            with self._mutate_lock:
                if callback in self._publish_hooks:
                    self._publish_hooks.remove(callback)

        return unregister

    def _checkpoint_after(self, version):
        # The swap is already published; a checkpoint failure degrades
        # durability (a restart warm-starts from the previous snapshot)
        # but must not fail the apply, so it is recorded, not raised.
        if self.checkpoint is None:
            return
        try:
            self.checkpoint(self, version)
        except Exception as error:
            self._record_error("checkpoint", error)

    @property
    def delta_stats(self):
        """Counters for the live-update paths taken so far.

        ``incremental_applies`` / ``full_rebuilds`` count how each
        ``apply``/``swap`` was served, ``patched`` / ``invalidated``
        accumulate the engine's per-delta cache maintenance counts, and
        ``last_path`` names the route of the most recent mutation
        (``"incremental"`` or ``"rebuild"``).
        """
        with self._mutate_lock:
            return dict(self._delta_stats)

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------
    def prepare(self, algorithm="relsim", top_k=None, expand=None, **options):
        """A :class:`PreparedQuery` the service re-binds on every swap.

        Same signature as :meth:`SimilaritySession.prepare`, except the
        algorithm must be a registry *name*: re-binding rebuilds the
        instance on the new snapshot, which a pre-built instance cannot
        express.  Handles are tracked weakly — drop the reference and
        the service stops refreshing it.
        """
        if isinstance(algorithm, SimilarityAlgorithm):
            raise EvaluationError(
                "SimilarityService.prepare needs a registry name; a "
                "pre-built instance cannot be re-bound on snapshot swap"
            )
        with self._mutate_lock:
            # Under the mutation lock so a concurrent swap cannot slip
            # between binding against the old session and registering
            # the handle for future re-binds.
            prepared = self._snapshot.session.prepare(
                algorithm=algorithm, top_k=top_k, expand=expand, **options
            )
            # Prune dead refs here, not just on swap: a read-mostly
            # service preparing transient handles would otherwise grow
            # the list by one dead weakref per request.
            self._handles = [
                ref for ref in self._handles if ref() is not None
            ]
            self._handles.append(weakref.ref(prepared))
            return prepared

    def subscribe(self, prepared, node, callback=None, top_k=_UNSET):
        """A standing query: keep ``node``'s top-k current under deltas.

        ``prepared`` must be a live handle obtained from this service's
        :meth:`prepare` — that is what guarantees it is re-bound before
        every publish, so maintenance always scores the new snapshot.
        Returns a :class:`~repro.streaming.Subscription` whose
        maintained ranking is bitwise identical to re-running the
        prepared query after every update; ``callback(event)`` (when
        given) fires on a dedicated notifier thread with the initial
        snapshot and then only when the ranking actually changes.
        ``top_k`` defaults to the prepared query's own.
        """
        with self._mutate_lock:
            if not any(ref() is prepared for ref in self._handles):
                raise EvaluationError(
                    "subscribe() needs a prepared handle from this "
                    "service's prepare(); session-prepared or foreign "
                    "handles are not re-bound on publish"
                )
            if top_k is _UNSET:
                top_k = prepared.top_k
            return self._subscriptions.subscribe(
                prepared, node, callback, top_k, self._snapshot.version
            )

    @property
    def subscriptions(self):
        """The :class:`~repro.streaming.SubscriptionManager` (advanced)."""
        return self._subscriptions

    @property
    def subscription_stats(self):
        """Aggregate standing-query counters (see ``/statz``)."""
        return self._subscriptions.stats()

    def query(self, node):
        """A one-shot fluent builder on the current snapshot."""
        return self._snapshot.session.query(node)

    def rank_many(self, queries, algorithm="relsim", top_k=None, **options):
        """Batch ranking on the current snapshot (see session.rank_many)."""
        return self._snapshot.session.rank_many(
            queries, algorithm=algorithm, top_k=top_k, **options
        )

    # ------------------------------------------------------------------
    # Live updates
    # ------------------------------------------------------------------
    def apply(
        self,
        edges_added=(),
        edges_removed=(),
        nodes_added=(),
        wait=True,
        incremental=None,
    ):
        """Apply a delta and swap in the updated snapshot.

        ``edges_added`` / ``edges_removed`` are iterables of
        ``(source, label, target)`` triples and ``nodes_added`` holds
        node ids or ``(node, type)`` pairs; the delta is validated as a
        batch — removing an absent edge raises
        :class:`~repro.exceptions.UnknownEdgeError` — and the serving
        snapshot is untouched until the whole update succeeds.

        Small batches (at most ``incremental_threshold`` changes) take
        the **incremental path**: the serving engine is forked onto a
        private database copy and every cached commuting matrix,
        diagonal and norm is *patched* via sparse delta propagation
        (:meth:`CommutingMatrixEngine.apply_delta`) instead of being
        recomputed, and live prepared handles re-pin only the scoring
        state whose inputs changed (their Algorithm-1 expansion is
        reused, not re-run).  Patching is exact integer arithmetic, so
        the resulting rankings are bitwise identical to a full rebuild —
        ``benchmarks/bench_delta.py`` gates both that identity and the
        speedup.  Larger batches (or ``incremental=False``) fall back to
        the full session rebuild; ``incremental=True`` forces the
        incremental path regardless of size.  Either way publication is
        the same atomic snapshot swap: in-flight queries finish on the
        old snapshot, and :attr:`version` increases monotonically.

        Returns the new :attr:`version`.  With ``wait=False`` the
        update runs on a background thread and the started
        ``threading.Thread`` is returned instead; after ``join()``,
        ``thread.version`` holds the new version and ``thread.error``
        the exception that aborted the update (``None`` on success) —
        a failed delta never swaps, so callers must check it.  Queries
        are served from the old snapshot throughout either way.
        """
        edges_added = list(edges_added)
        edges_removed = list(edges_removed)
        nodes_added = list(nodes_added)
        if not wait:
            return self._in_background(
                lambda: self.apply(
                    edges_added,
                    edges_removed,
                    nodes_added,
                    incremental=incremental,
                ),
                operation="apply",
            )
        with self._mutate_lock:
            if incremental is None:
                size = (
                    len(edges_added) + len(edges_removed) + len(nodes_added)
                )
                threshold = self._incremental_threshold
                incremental = threshold is not None and size <= threshold
            if incremental:
                version = self._apply_incremental_locked(
                    edges_added, edges_removed, nodes_added
                )
            else:
                database = self._snapshot.session.database.copy()
                database.apply_delta(
                    edges_added=edges_added,
                    edges_removed=edges_removed,
                    nodes_added=nodes_added,
                )
                version = self._swap_locked(database)
            self._checkpoint_after(version)
            return version

    def swap(self, database, wait=True):
        """Replace the whole database (copied) and swap atomically.

        Always a full rebuild — an arbitrary replacement database shares
        no delta with the serving snapshot to propagate.  Returns the
        new :attr:`version` (or the background ``threading.Thread``
        with ``wait=False``).
        """
        if not wait:
            return self._in_background(
                lambda: self.swap(database), operation="swap"
            )
        with self._mutate_lock:
            version = self._swap_locked(database.copy())
            self._checkpoint_after(version)
            return version

    def _in_background(self, target, operation):
        # The outcome is recorded on the thread object itself: a
        # background failure must be observable to the caller, not
        # swallowed into threading.excepthook while the service keeps
        # serving stale data.
        def runner():
            try:
                thread.version = target()
            except BaseException as error:
                # Recorded, not re-raised: thread.error is the caller's
                # signal; re-raising would only spam threading.excepthook.
                # Also kept on the service itself (last_error), because
                # fire-and-forget callers drop the thread object — the
                # record is how /healthz surfaces the failure.
                thread.error = error
                self._record_error(operation, error)

        thread = threading.Thread(target=runner, daemon=True)
        thread.version = None
        thread.error = None
        thread.start()
        return thread

    def _apply_incremental_locked(self, edges_added, edges_removed, nodes_added):
        # Fork the serving engine onto a private database copy, patch
        # the fork in place (old snapshot untouched — cached matrices
        # are shared but only ever *replaced* in the fork), then publish
        # through the same atomic protocol as a full rebuild.
        old_session = self._snapshot.session
        database = old_session.database.copy()
        engine = old_session.engine.fork(database)
        stats = engine.apply_delta(
            edges_added=edges_added,
            edges_removed=edges_removed,
            nodes_added=nodes_added,
        )
        session = SimilaritySession(database, engine=engine)
        report = DeltaReport(
            labels=frozenset(stats["labels"]),
            grew=stats["nodes_added"] > 0,
            plan_deltas=stats["plan_deltas"],
        )
        version = self._publish_locked(
            session, reuse_expansion=True, report=report
        )
        self._delta_stats["incremental_applies"] += 1
        self._delta_stats["patched"] += stats["patched"]
        self._delta_stats["invalidated"] += stats["invalidated"]
        self._delta_stats["last_path"] = "incremental"
        return version

    def _swap_locked(self, database):
        session = SimilaritySession(database, **self._session_options)
        version = self._publish_locked(session, reuse_expansion=False)
        self._delta_stats["full_rebuilds"] += 1
        self._delta_stats["last_path"] = "rebuild"
        return version

    def _publish_locked(self, session, reuse_expansion, report=None):
        # Phase 1 (slow, off the serving path): rebuild every live
        # prepared handle against the new session.  On a full rebuild,
        # expansion re-runs and matrices re-materialize; on an
        # incremental apply the expansion is reused and re-pinning is
        # mostly cache hits against the patched engine.  Either way the
        # old snapshot keeps answering queries throughout.
        rebinds = []
        surviving = []
        for ref in self._handles:
            handle = ref()
            if handle is None:
                continue
            rebinds.append(
                (handle, handle._rebound(session, reuse_expansion))
            )
            surviving.append(ref)
        self._handles = surviving
        # Phase 2 (fast): publish.  Each assignment is atomic, so any
        # in-flight run() holds a complete old bound state and any new
        # run() picks up a complete new one — never a mixture.
        for handle, bound in rebinds:
            handle._swap_bound(bound)
        self._snapshot = _Snapshot(session, self._snapshot.version + 1)
        version = self._snapshot.version
        for hook in list(self._publish_hooks):
            try:
                hook(session, version)
            except Exception as error:
                self._record_error("publish-hook", error)
        # Standing queries last: handles are re-bound and the snapshot
        # is published, so maintenance scores the new state.  Without a
        # delta report (full rebuild) every subscription re-ranks.
        self._subscriptions.on_publish(
            version, report if report is not None else DeltaReport.unknown()
        )
        return version

    def __repr__(self):
        snapshot = self._snapshot
        return "SimilarityService(version={}, {!r})".format(
            snapshot.version, snapshot.session.database
        )
