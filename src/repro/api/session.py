"""`SimilaritySession` — the one entry point for similarity search.

The seed library made every caller hand-wire ``GraphDatabase`` +
``CommutingMatrixEngine`` + pattern parsing + per-algorithm
constructors, and each algorithm silently built its *own* engine,
re-materializing the same sparse matrices.  A session inverts that: it
owns one shared engine (with an optional bounded LRU over commuting
matrices and column norms) and every algorithm constructed through it
reuses those matrices.

Three levels of API, lowest to highest::

    session = SimilaritySession(db)

    # 1. construct algorithms by registry name, engine injected
    relsim = session.algorithm("relsim", pattern="p-in.p-in-")

    # 2. fluent single-query builder (with Algorithm-1 expansion)
    ranking = (
        session.query("proc:0")
        .using("relsim", pattern="p-in.p-in-", scoring="cosine")
        .expand_patterns(max_patterns=16)
        .top(10)
    )

    # 3. batch path: all queries scored in one sparse row slice,
    #    ranked with array-native top-k selection (score_rows)
    rankings = session.rank_many(queries, algorithm="relsim",
                                 pattern="p-in.p-in-", top_k=10)
"""

from repro.api.registry import algorithm_class, algorithm_parameters
from repro.exceptions import EvaluationError
from repro.lang.ast import Pattern
from repro.lang.matrix_semantics import CommutingMatrixEngine
from repro.lang.parser import parse_pattern
from repro.similarity.base import SimilarityAlgorithm


class SimilaritySession:
    """A shared-engine facade over one database snapshot.

    Parameters
    ----------
    database:
        The :class:`~repro.graph.database.GraphDatabase` to search.
    engine:
        Optional pre-built :class:`CommutingMatrixEngine` — pass one
        built on a shared :class:`~repro.graph.matrices.NodeIndexer`
        when comparing scores across structural variants.
    max_star_depth:
        Forwarded to the engine (Kleene-star expansion bound).
    max_cached_matrices:
        When set, the engine keeps at most this many commuting matrices
        (LRU eviction).  Default: keep everything.

    The session is a *snapshot*, like the engine: mutate the database
    afterwards and cached matrices go stale — open a new session.
    """

    def __init__(
        self,
        database,
        engine=None,
        max_star_depth=None,
        max_cached_matrices=None,
    ):
        self._database = database
        if engine is None:
            engine = CommutingMatrixEngine(
                database,
                max_star_depth=max_star_depth,
                max_cached_matrices=max_cached_matrices,
            )
        self._engine = engine

    @property
    def database(self):
        return self._database

    @property
    def engine(self):
        return self._engine

    @property
    def view(self):
        return self._engine.view

    @property
    def indexer(self):
        return self._engine.indexer

    def materialize(self, max_length=3, labels=None):
        """Precompute commuting matrices for meta-paths up to a length.

        The paper's Section-7.3 "materialize and pre-load" setting;
        returns the number of matrices now cached.  Runs through the
        engine's plan compiler, so each length-``k`` meta-path is one
        sparse product on top of an already-materialized length-
        ``(k-1)`` chain.
        """
        return self._engine.materialize_simple_patterns(
            max_length=max_length, labels=labels
        )

    def cache_info(self):
        """The shared engine's cache counters and memory accounting.

        Includes ``nnz`` (total cached nonzeros) and ``bytes``
        (approximate resident bytes across matrices and column norms),
        so ``max_cached_matrices`` can be tuned by measured size rather
        than guessed entry count.
        """
        return self._engine.cache_info()

    @staticmethod
    def _as_pattern_list(pattern_or_patterns):
        if isinstance(pattern_or_patterns, (str, Pattern)):
            pattern_or_patterns = [pattern_or_patterns]
        patterns = []
        for pattern in pattern_or_patterns:
            if isinstance(pattern, str):
                pattern = parse_pattern(pattern)
            if not isinstance(pattern, Pattern):
                raise TypeError(
                    "pattern must be a string or Pattern AST, got "
                    "{!r}".format(pattern)
                )
            patterns.append(pattern)
        if not patterns:
            raise EvaluationError("at least one pattern is required")
        return patterns

    def explain(self, pattern_or_patterns):
        """The compiled evaluation plan for one pattern or a pattern set.

        Returns a human-readable report: canonical form per pattern,
        the cost-chosen multiplication order for concatenation chains,
        estimated nnz/cost, and the sub-plans shared by more than one
        pattern of the set (each of which the engine evaluates exactly
        once).  Accepts pattern strings or ASTs.  No matrices are
        computed, but the plan is binding: chain orders are fixed as an
        actual evaluation would fix them, so the report shows exactly
        what a later ``materialize``/query over these patterns will do.
        """
        return self._engine.explain(self._as_pattern_list(pattern_or_patterns))

    def matrices_many(self, pattern_or_patterns):
        """Commuting matrices for a pattern set via the batch plan path.

        Thin passthrough to the engine's ``matrices_many``: the whole
        set is compiled before any pattern executes, so shared
        sub-chains are evaluated once.  Accepts strings or ASTs;
        returns matrices in input order.
        """
        return self._engine.matrices_many(
            self._as_pattern_list(pattern_or_patterns)
        )

    # ------------------------------------------------------------------
    # Construction by name
    # ------------------------------------------------------------------
    def algorithm(self, name, **options):
        """Construct a registered algorithm with the shared engine.

        ``pattern=`` and ``patterns=`` are interchangeable — the session
        maps whichever the caller wrote onto whichever the class
        declares (RelSim aggregates several patterns, the others take
        one).  The shared engine is injected whenever the class accepts
        an ``engine`` (every seed algorithm does); externally registered
        classes without one are constructed as-is.
        """
        parameters = algorithm_parameters(name)
        options = self._normalize_pattern_option(name, parameters, options)
        if "engine" in parameters:
            options.setdefault("engine", self._engine)
        elif "view" in parameters:
            options.setdefault("view", self._engine.view)
        return algorithm_class(name)(self._database, **options)

    @staticmethod
    def _normalize_pattern_option(name, parameters, options):
        options = dict(options)
        if "pattern" in options and "patterns" in options:
            raise EvaluationError(
                "pass either pattern= or patterns=, not both"
            )
        for given, wanted in (("pattern", "patterns"), ("patterns", "pattern")):
            if given in options and given not in parameters:
                if wanted not in parameters:
                    raise EvaluationError(
                        "algorithm {!r} does not take a pattern".format(name)
                    )
                value = options.pop(given)
                if given == "patterns" and isinstance(value, (list, tuple)):
                    if len(value) != 1:
                        raise EvaluationError(
                            "algorithm {!r} takes exactly one pattern, got "
                            "{}".format(name, len(value))
                        )
                    value = value[0]
                options[wanted] = value
        return options

    # ------------------------------------------------------------------
    # Fluent single-query builder
    # ------------------------------------------------------------------
    def query(self, node):
        """A fluent :class:`QueryBuilder` for one query node."""
        return QueryBuilder(self, node)

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def rank_many(self, queries, algorithm="relsim", top_k=None, **options):
        """``{query: Ranking}`` for a workload, scored in batch.

        ``algorithm`` is a registry name (constructed with the shared
        engine and ``options``) or an already-built
        :class:`SimilarityAlgorithm` instance.  Matrix-backed algorithms
        score all queries from one sparse row slice per pattern
        (``score_rows``) and rank through array-native top-k selection —
        only the ``top_k`` winners are materialized as ``(node, score)``
        pairs.  Results are identical to looping
        ``algorithm.rank(q, top_k)``.
        """
        if isinstance(algorithm, SimilarityAlgorithm):
            if options:
                raise TypeError(
                    "options {} are only valid with an algorithm name, "
                    "not a pre-built instance".format(sorted(options))
                )
            instance = algorithm
        else:
            instance = self.algorithm(algorithm, **options)
        return instance.rank_many(list(queries), top_k=top_k)


class QueryBuilder:
    """Fluent builder returned by :meth:`SimilaritySession.query`.

    Chain :meth:`using` (algorithm + options), optionally
    :meth:`expand_patterns` (the paper's Algorithm 1 usability layer),
    then finish with :meth:`top`, :meth:`rank` or :meth:`scores`.  The
    built algorithm is cached, so repeated executions reuse it.
    """

    def __init__(self, session, node):
        self._session = session
        self._node = node
        self._name = "relsim"
        self._options = {}
        self._expand = None
        self._algorithm = None
        self._patterns_used = None

    def using(self, name, **options):
        """Pick the algorithm by registry name, with constructor options."""
        self._name = name
        self._options = dict(options)
        self._algorithm = None
        return self

    def answers_of_type(self, answer_type):
        """Restrict answers to one node type (e.g. drugs for diseases)."""
        self._options["answer_type"] = answer_type
        self._algorithm = None
        return self

    def expand_patterns(
        self, constraints=None, use_filters=True, max_patterns=64
    ):
        """Run Algorithm 1 on the supplied simple pattern before scoring.

        The pattern given to :meth:`using` is expanded against the
        schema's constraints (or an explicit ``constraints`` list) into
        the robust RRE set, which RelSim aggregates over.  Only valid
        with pattern-set algorithms (RelSim).
        """
        self._expand = {
            "constraints": constraints,
            "use_filters": use_filters,
            "max_patterns": max_patterns,
        }
        self._algorithm = None
        return self

    @property
    def patterns_used(self):
        """The patterns the built algorithm scored with (after a run)."""
        self.build()
        return self._patterns_used

    def build(self):
        """Construct (once) and return the underlying algorithm."""
        if self._algorithm is not None:
            return self._algorithm
        options = dict(self._options)
        if self._expand is not None:
            from repro.core.relsim import RelSim
            from repro.patterns.generator import generate_patterns

            if not issubclass(algorithm_class(self._name), RelSim):
                raise EvaluationError(
                    "expand_patterns() aggregates a pattern set; only "
                    "RelSim-style algorithms support it (got {!r})".format(
                        self._name
                    )
                )
            pattern = options.pop("pattern", None)
            if pattern is None:
                pattern = options.pop("patterns", None)
            if pattern is None:
                raise EvaluationError(
                    "expand_patterns() needs the simple input pattern; "
                    "pass pattern=... to using()"
                )
            constraints = self._expand["constraints"]
            if constraints is None:
                constraints = self._session.database.schema.constraints
            generated = generate_patterns(
                pattern,
                constraints,
                use_filters=self._expand["use_filters"],
                max_patterns=self._expand["max_patterns"],
            )
            options["patterns"] = generated.patterns
        self._algorithm = self._session.algorithm(self._name, **options)
        self._patterns_used = list(
            getattr(self._algorithm, "patterns", None)
            or ([self._algorithm.pattern]
                if getattr(self._algorithm, "pattern", None) is not None
                else [])
        )
        return self._algorithm

    def explain(self):
        """The compiled plan report for this query's pattern set.

        Builds the algorithm (running Algorithm 1 first when
        :meth:`expand_patterns` was requested) and explains the pattern
        set it will score with — canonical forms, multiplication
        orders, and the sub-plans shared across the set.
        """
        self.build()
        if not self._patterns_used:
            raise EvaluationError(
                "algorithm {!r} scores without patterns; nothing to "
                "explain".format(self._name)
            )
        return self._session.explain(self._patterns_used)

    def scores(self):
        """``{candidate: score}`` for the query node."""
        return self.build().scores(self._node)

    def rank(self, top_k=None):
        """The full (or truncated) :class:`Ranking` for the query node."""
        return self.build().rank(self._node, top_k=top_k)

    def top(self, k=10):
        """The top-``k`` :class:`Ranking` — the usual way to finish.

        Array-native algorithms serve this through ``score_rows`` +
        ``np.argpartition`` selection, so only ``k`` ``(node, score)``
        pairs are ever materialized.
        """
        return self.rank(top_k=k)
