"""`SimilaritySession` — the one entry point for similarity search.

The seed library made every caller hand-wire ``GraphDatabase`` +
``CommutingMatrixEngine`` + pattern parsing + per-algorithm
constructors, and each algorithm silently built its *own* engine,
re-materializing the same sparse matrices.  A session inverts that: it
owns one shared engine (with an optional bounded LRU over commuting
matrices and column norms) and every algorithm constructed through it
reuses those matrices.

Four levels of API, lowest to highest::

    session = SimilaritySession(db)

    # 1. construct algorithms by registry name, engine injected
    relsim = session.algorithm("relsim", pattern="p-in.p-in-")

    # 2. fluent single-query builder (with Algorithm-1 expansion)
    ranking = (
        session.query("proc:0")
        .using("relsim", pattern="p-in.p-in-", scoring="cosine")
        .expand_patterns(max_patterns=16)
        .top(10)
    )

    # 3. batch path: all queries scored in one sparse row slice,
    #    ranked with array-native top-k selection (score_rows)
    rankings = session.rank_many(queries, algorithm="relsim",
                                 pattern="p-in.p-in-", top_k=10)

    # 4. serving path: prepare once (parse, expand, compile, warm),
    #    then run per-node on pinned state with near-zero overhead
    prepared = session.prepare(algorithm="relsim",
                               pattern="p-in.p-in-",
                               expand={"max_patterns": 16}, top_k=10)
    prepared.run("proc:0")
    prepared.run_many(queries)

The builder and ``rank_many`` are thin adapters over prepare-then-run,
so all four levels share one execution path.
"""

from repro.api.prepared import PreparedQuery
from repro.api.registry import algorithm_class, algorithm_parameters
from repro.exceptions import EvaluationError
from repro.lang.ast import Pattern
from repro.lang.matrix_semantics import CommutingMatrixEngine
from repro.lang.parser import parse_pattern
from repro.similarity.base import SimilarityAlgorithm


class SimilaritySession:
    """A shared-engine facade over one database snapshot.

    Parameters
    ----------
    database:
        The :class:`~repro.graph.database.GraphDatabase` to search.
    engine:
        Optional pre-built :class:`CommutingMatrixEngine` — pass one
        built on a shared :class:`~repro.graph.matrices.NodeIndexer`
        when comparing scores across structural variants.
    max_star_depth:
        Forwarded to the engine (Kleene-star expansion bound).
    max_cached_matrices:
        When set, the engine keeps at most this many commuting matrices
        (LRU eviction).  Default: keep everything.
    memory_budget:
        When set, a byte bound on the engine's cache (matrices plus
        derived vectors): the engine evicts by measured bytes, spills
        oversized products (computed, returned, not retained), and
        streams oversized chain intermediates in row blocks — queries
        complete with bitwise-identical rankings instead of OOMing.
        Default: unbounded.

    The session is a *snapshot*, like the engine: mutating the database
    afterwards makes cached matrices stale.  For workloads that must
    absorb mutations while serving, use
    :class:`~repro.api.service.SimilarityService` — it owns the current
    session, rebuilds a fresh one off the serving path on
    ``apply``/``swap``, re-binds outstanding prepared queries, and
    swaps snapshots atomically.  The session itself is thread-safe for
    *reads*: the engine, plan compiler, and matrix view are all
    lock-guarded, so N threads can query one session concurrently.
    """

    def __init__(
        self,
        database,
        engine=None,
        max_star_depth=None,
        max_cached_matrices=None,
        memory_budget=None,
    ):
        self._database = database
        if engine is None:
            engine = CommutingMatrixEngine(
                database,
                max_star_depth=max_star_depth,
                max_cached_matrices=max_cached_matrices,
                memory_budget=memory_budget,
            )
        self._engine = engine

    @property
    def database(self):
        return self._database

    @property
    def engine(self):
        return self._engine

    @property
    def view(self):
        return self._engine.view

    @property
    def indexer(self):
        return self._engine.indexer

    def materialize(self, max_length=3, labels=None):
        """Precompute commuting matrices for meta-paths up to a length.

        The paper's Section-7.3 "materialize and pre-load" setting;
        returns the number of matrices now cached.  Runs through the
        engine's plan compiler, so each length-``k`` meta-path is one
        sparse product on top of an already-materialized length-
        ``(k-1)`` chain.
        """
        return self._engine.materialize_simple_patterns(
            max_length=max_length, labels=labels
        )

    def cache_info(self):
        """The shared engine's cache counters and memory accounting.

        Includes ``nnz`` (total cached nonzeros) and ``bytes``
        (approximate resident bytes across matrices and column norms),
        so ``max_cached_matrices`` can be tuned by measured size rather
        than guessed entry count.
        """
        return self._engine.cache_info()

    @staticmethod
    def _as_pattern_list(pattern_or_patterns):
        if isinstance(pattern_or_patterns, (str, Pattern)):
            pattern_or_patterns = [pattern_or_patterns]
        patterns = []
        for pattern in pattern_or_patterns:
            if isinstance(pattern, str):
                pattern = parse_pattern(pattern)
            if not isinstance(pattern, Pattern):
                raise TypeError(
                    "pattern must be a string or Pattern AST, got "
                    "{!r}".format(pattern)
                )
            patterns.append(pattern)
        if not patterns:
            raise EvaluationError("at least one pattern is required")
        return patterns

    def check(self, pattern_or_patterns):
        """Static type-check of a pattern set against the schema.

        Returns ``[(pattern, [Diagnostic, ...]), ...]`` in input order,
        errors and warnings both, without raising and without compiling
        anything — the inspection companion to the enforcement built
        into :meth:`prepare`/:meth:`explain` (which raise
        :class:`~repro.exceptions.PatternTypeError` on error-severity
        diagnostics).  Accepts pattern strings or ASTs; the ``repro
        check`` CLI verb is a thin wrapper over this.
        """
        return self._engine.check(self._as_pattern_list(pattern_or_patterns))

    def explain(self, pattern_or_patterns):
        """The compiled evaluation plan for one pattern or a pattern set.

        Returns a human-readable report: canonical form per pattern,
        the cost-chosen multiplication order for concatenation chains,
        estimated nnz/cost, and the sub-plans shared by more than one
        pattern of the set (each of which the engine evaluates exactly
        once).  Accepts pattern strings or ASTs.  No matrices are
        computed, but the plan is binding: chain orders are fixed as an
        actual evaluation would fix them, so the report shows exactly
        what a later ``materialize``/query over these patterns will do.
        """
        return self._engine.explain(self._as_pattern_list(pattern_or_patterns))

    def matrices_many(self, pattern_or_patterns):
        """Commuting matrices for a pattern set via the batch plan path.

        Thin passthrough to the engine's ``matrices_many``: the whole
        set is compiled before any pattern executes, so shared
        sub-chains are evaluated once.  Accepts strings or ASTs;
        returns matrices in input order.
        """
        return self._engine.matrices_many(
            self._as_pattern_list(pattern_or_patterns)
        )

    # ------------------------------------------------------------------
    # Construction by name
    # ------------------------------------------------------------------
    def algorithm(self, name, **options):
        """Construct a registered algorithm with the shared engine.

        ``pattern=`` and ``patterns=`` are interchangeable — the session
        maps whichever the caller wrote onto whichever the class
        declares (RelSim aggregates several patterns, the others take
        one).  The shared engine is injected whenever the class accepts
        an ``engine`` (every seed algorithm does); externally registered
        classes without one are constructed as-is.
        """
        parameters = algorithm_parameters(name)
        options = self._normalize_pattern_option(name, parameters, options)
        if "engine" in parameters:
            options.setdefault("engine", self._engine)
        elif "view" in parameters:
            options.setdefault("view", self._engine.view)
        return algorithm_class(name)(self._database, **options)

    @staticmethod
    def _normalize_pattern_option(name, parameters, options):
        options = dict(options)
        if "pattern" in options and "patterns" in options:
            raise EvaluationError(
                "pass either pattern= or patterns=, not both"
            )
        for given, wanted in (("pattern", "patterns"), ("patterns", "pattern")):
            if given in options and given not in parameters:
                if wanted not in parameters:
                    raise EvaluationError(
                        "algorithm {!r} does not take a pattern".format(name)
                    )
                value = options.pop(given)
                if given == "patterns" and isinstance(value, (list, tuple)):
                    if len(value) != 1:
                        raise EvaluationError(
                            "algorithm {!r} takes exactly one pattern, got "
                            "{}".format(name, len(value))
                        )
                    value = value[0]
                options[wanted] = value
        return options

    # ------------------------------------------------------------------
    # Prepared queries (the serving path)
    # ------------------------------------------------------------------
    def prepare(
        self, algorithm="relsim", top_k=None, expand=None, warm=True,
        **options
    ):
        """Prepare a query shape once; run it per node with no overhead.

        Everything that does not depend on the query node happens now:
        option normalization, Algorithm-1 expansion (``expand=True`` or
        a dict of ``constraints``/``use_filters``/``max_patterns``),
        plan compilation, commuting-matrix materialization, and the
        pinning of reusable scoring state (diagonals, column norms,
        candidate index).  The returned
        :class:`~repro.api.prepared.PreparedQuery` then answers
        ``run(node)`` / ``run_many(nodes)`` on warm immutable state —
        results identical to the equivalent one-shot
        ``session.query(...)`` calls.  ``top_k`` fixes the default
        answer length.  ``algorithm`` may also be a pre-built instance
        (options and ``expand`` must then be omitted — and note that
        warming pins scoring state on that instance).  ``warm=False``
        binds without pinning anything; the per-call scoring path is
        kept, with identical results.
        """
        return PreparedQuery(
            self, algorithm=algorithm, top_k=top_k, expand=expand,
            warm=warm, **options
        )

    # ------------------------------------------------------------------
    # Fluent single-query builder
    # ------------------------------------------------------------------
    def query(self, node):
        """A fluent :class:`QueryBuilder` for one query node."""
        return QueryBuilder(self, node)

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def rank_many(self, queries, algorithm="relsim", top_k=None, **options):
        """``{query: Ranking}`` for a workload, scored in batch.

        ``algorithm`` is a registry name (constructed with the shared
        engine and ``options``) or an already-built
        :class:`SimilarityAlgorithm` instance.  A thin adapter over
        prepare-then-run: the workload executes exactly like
        ``session.prepare(...).run_many(queries)``, with matrix-backed
        algorithms scoring all queries from one sparse row slice per
        pattern (``score_rows``) and ranking through array-native top-k
        selection.  Results are identical to looping
        ``algorithm.rank(q, top_k)``.

        Name-constructed algorithms are warmed (the instance is private
        to this call); a caller-supplied instance is executed as-is —
        one-shot batching must not pin prepared state (strong matrix
        references that outlive engine LRU eviction) onto an object the
        caller keeps.
        """
        warm = not isinstance(algorithm, SimilarityAlgorithm)
        return self.prepare(
            algorithm=algorithm, top_k=top_k, warm=warm, **options
        ).run_many(queries)


class QueryBuilder:
    """Fluent builder returned by :meth:`SimilaritySession.query`.

    Chain :meth:`using` (algorithm + options), optionally
    :meth:`expand_patterns` (the paper's Algorithm 1 usability layer),
    then finish with :meth:`top`, :meth:`rank` or :meth:`scores`.

    The builder is a thin adapter over the prepared-query path: it
    binds a :class:`~repro.api.prepared.PreparedQuery` (without
    warming — a one-shot query computes exactly what it needs) and
    executes through it, so fluent and prepared execution share one
    code path.  The bound algorithm is cached; repeated executions
    reuse it.  For repeated queries of the same shape, skip the
    per-call builder entirely: :meth:`prepare` (or
    :meth:`SimilaritySession.prepare`) pays the preparation bill once.
    """

    def __init__(self, session, node):
        self._session = session
        self._node = node
        self._name = "relsim"
        self._options = {}
        self._expand = None
        self._prepared = None
        self._patterns_used = None

    def using(self, name, **options):
        """Pick the algorithm by registry name, with constructor options."""
        self._name = name
        self._options = dict(options)
        self._prepared = None
        return self

    def answers_of_type(self, answer_type):
        """Restrict answers to one node type (e.g. drugs for diseases)."""
        self._options["answer_type"] = answer_type
        self._prepared = None
        return self

    def expand_patterns(
        self, constraints=None, use_filters=True, max_patterns=64
    ):
        """Run Algorithm 1 on the supplied simple pattern before scoring.

        The pattern given to :meth:`using` is expanded against the
        schema's constraints (or an explicit ``constraints`` list) into
        the robust RRE set, which RelSim aggregates over.  Only valid
        with pattern-set algorithms (RelSim).
        """
        self._expand = {
            "constraints": constraints,
            "use_filters": use_filters,
            "max_patterns": max_patterns,
        }
        self._prepared = None
        return self

    @property
    def patterns_used(self):
        """The patterns the built algorithm scored with (after a run)."""
        self.build()
        return self._patterns_used

    def build(self):
        """Construct (once) and return the underlying algorithm."""
        if self._prepared is None:
            self._prepared = PreparedQuery(
                self._session,
                algorithm=self._name,
                expand=self._expand,
                warm=False,
                **self._options
            )
            self._patterns_used = self._prepared.patterns
        return self._prepared.algorithm

    def prepare(self, top_k=None):
        """Graduate this builder's spec into a *warm* prepared query.

        Returns a fresh :class:`~repro.api.prepared.PreparedQuery`
        (scoring state pinned, default ``top_k`` set) ready for
        ``run``/``run_many`` over any query node — the upgrade path
        from "try one query fluently" to "serve this shape".
        """
        return self._session.prepare(
            algorithm=self._name,
            top_k=top_k,
            expand=self._expand,
            **self._options
        )

    def explain(self):
        """The compiled plan report for this query's pattern set.

        Builds the algorithm (running Algorithm 1 first when
        :meth:`expand_patterns` was requested) and explains the pattern
        set it will score with — canonical forms, multiplication
        orders, and the sub-plans shared across the set.  No commuting
        matrices are computed.
        """
        self.build()
        if not self._patterns_used:
            raise EvaluationError(
                "algorithm {!r} scores without patterns; nothing to "
                "explain".format(self._name)
            )
        return self._session.explain(self._patterns_used)

    def scores(self):
        """``{candidate: score}`` for the query node."""
        return self.build().scores(self._node)

    def rank(self, top_k=None):
        """The full (or truncated) :class:`Ranking` for the query node."""
        self.build()
        return self._prepared.run(self._node, top_k=top_k)

    def top(self, k=10):
        """The top-``k`` :class:`Ranking` — the usual way to finish.

        Array-native algorithms serve this through ``score_rows`` +
        ``np.argpartition`` selection, so only ``k`` ``(node, score)``
        pairs are ever materialized.
        """
        return self.rank(top_k=k)
