"""The session facade, registry, and serving layer (the front door).

``SimilaritySession`` owns one shared ``CommutingMatrixEngine`` so every
algorithm built through it reuses materialized matrices; the registry
makes algorithms constructible by name; ``rank_many`` scores whole
workloads in one sparse row slice per pattern.  For request serving,
``session.prepare(...)`` returns a ``PreparedQuery`` (parse / expand /
compile / warm once, run per node on pinned state), and
``SimilarityService`` keeps prepared queries fresh across live database
updates with atomic snapshot swap.
"""

from repro.api.prepared import PreparedQuery
from repro.api.registry import (
    algorithm_class,
    algorithm_parameters,
    available_algorithms,
    register_algorithm,
    unregister_algorithm,
)
from repro.api.service import SimilarityService
from repro.api.session import QueryBuilder, SimilaritySession

__all__ = [
    "PreparedQuery",
    "QueryBuilder",
    "SimilarityService",
    "SimilaritySession",
    "algorithm_class",
    "algorithm_parameters",
    "available_algorithms",
    "register_algorithm",
    "unregister_algorithm",
]
