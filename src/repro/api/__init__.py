"""The session facade and algorithm registry (the library's front door).

``SimilaritySession`` owns one shared ``CommutingMatrixEngine`` so every
algorithm built through it reuses materialized matrices; the registry
makes algorithms constructible by name; ``rank_many`` scores whole
workloads in one sparse row slice per pattern.
"""

from repro.api.registry import (
    algorithm_class,
    algorithm_parameters,
    available_algorithms,
    register_algorithm,
    unregister_algorithm,
)
from repro.api.session import QueryBuilder, SimilaritySession

__all__ = [
    "QueryBuilder",
    "SimilaritySession",
    "algorithm_class",
    "algorithm_parameters",
    "available_algorithms",
    "register_algorithm",
    "unregister_algorithm",
]
