"""The pluggable similarity-algorithm registry.

The paper's usability argument (Sections 2 and 5) is that the *system*,
not the caller, should own the mapping from "what the user asks for" to
"how it is computed".  This module is the name half of that mapping: a
process-wide table from short names (``"relsim"``, ``"pathsim"``, ...)
to :class:`~repro.similarity.base.SimilarityAlgorithm` subclasses, so a
:class:`~repro.api.session.SimilaritySession` — or the CLI's
``--algorithm`` flag — can construct any algorithm by name.

All seed algorithms are pre-registered; downstream code plugs in its own
with :func:`register_algorithm`::

    from repro.api import register_algorithm

    class MySim(SimilarityAlgorithm):
        ...

    register_algorithm("mysim", MySim)
    session.algorithm("mysim", ...)
"""

import inspect

from repro.exceptions import RegistryError
from repro.similarity.base import SimilarityAlgorithm

_REGISTRY = {}
# Constructor-keyword cache, keyed per *class* so replacing a name with
# a different class can never serve stale parameters.  Prepared queries
# and the serving layer construct algorithms far more often than the
# one-shot API did; running ``inspect.signature`` on every construction
# shows up on the hot path.
_PARAMETERS_CACHE = {}


def register_algorithm(name, algorithm_class, replace=False):
    """Make ``algorithm_class`` constructible by ``name``.

    Raises :class:`RegistryError` on duplicate names unless ``replace``
    is True, and rejects classes that are not
    :class:`SimilarityAlgorithm` subclasses (the session relies on the
    ``scores``/``rank``/``rank_many`` contract).
    """
    if not isinstance(name, str) or not name:
        raise RegistryError(
            "algorithm name must be a non-empty string, got {!r}".format(name)
        )
    if not (
        isinstance(algorithm_class, type)
        and issubclass(algorithm_class, SimilarityAlgorithm)
    ):
        raise RegistryError(
            "{!r} is not a SimilarityAlgorithm subclass".format(
                algorithm_class
            )
        )
    key = name.lower()
    if key in _REGISTRY:
        if not replace:
            raise RegistryError(
                "algorithm {!r} is already registered (to {}); pass "
                "replace=True to overwrite".format(
                    name, _REGISTRY[key].__name__
                )
            )
        _PARAMETERS_CACHE.pop(_REGISTRY[key], None)
    _REGISTRY[key] = algorithm_class
    return algorithm_class


def unregister_algorithm(name):
    """Remove a registration (mainly for tests); unknown names error."""
    try:
        removed = _REGISTRY.pop(name.lower())
    except KeyError:
        raise RegistryError(
            "algorithm {!r} is not registered".format(name)
        ) from None
    _PARAMETERS_CACHE.pop(removed, None)


def available_algorithms():
    """Sorted names of every registered algorithm."""
    return sorted(_REGISTRY)


def algorithm_class(name):
    """The class registered under ``name``; unknown names error."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise RegistryError(
            "unknown algorithm {!r}; available: {}".format(
                name, ", ".join(available_algorithms()) or "(none)"
            )
        ) from None


def algorithm_parameters(name):
    """Constructor keyword names of the registered class (no ``self``).

    Used by the session to normalize ``pattern``/``patterns`` spellings
    and to skip engine injection for classes that do not accept one.
    Signatures are inspected once per class and cached (the cache entry
    is dropped when ``register_algorithm(replace=True)`` or
    ``unregister_algorithm`` retires the class).
    """
    cls = algorithm_class(name)
    cached = _PARAMETERS_CACHE.get(cls)
    if cached is None:
        signature = inspect.signature(cls.__init__)
        cached = tuple(
            parameter
            for parameter in signature.parameters
            if parameter not in ("self", "args", "kwargs")
        )
        _PARAMETERS_CACHE[cls] = cached
    return list(cached)


def _register_seed_algorithms():
    # Imported lazily so `repro.api` does not import the whole
    # similarity package at module-import time of the registry itself.
    from repro.core.relsim import RelSim
    from repro.similarity.hetesim import HeteSim
    from repro.similarity.neighborhood import CommonNeighbors, Katz
    from repro.similarity.pathsim import PathSim
    from repro.similarity.pattern_constrained import (
        PatternRWR,
        PatternSimRank,
    )
    from repro.similarity.rwr import RWR
    from repro.similarity.simrank import SimRank

    seed = {
        "relsim": RelSim,
        "pathsim": PathSim,
        "hetesim": HeteSim,
        "rwr": RWR,
        "simrank": SimRank,
        "pattern-rwr": PatternRWR,
        "pattern-simrank": PatternSimRank,
        "common-neighbors": CommonNeighbors,
        "katz": Katz,
    }
    for name, cls in seed.items():
        if name not in _REGISTRY:
            register_algorithm(name, cls)


_register_seed_algorithms()
