"""Lossy perturbations of transformed databases.

Section 7.1's DBLP2SIGM(.95) and BioMedT(.95) first restructure a
database and then randomly remove 5% of the edges of the result —
modeling real-world transformations that are *not* information
preserving.  RelSim is no longer provably robust there; the experiment
measures how gracefully each algorithm degrades.
"""

import random

from repro.exceptions import TransformationError


def drop_edges(database, fraction, seed=0, protected_labels=()):
    """A copy of ``database`` with ``fraction`` of its edges removed.

    Parameters
    ----------
    fraction:
        Fraction of the *total* edge count to delete, in ``[0, 1)``.
    seed:
        RNG seed; the same seed always deletes the same edges.
    protected_labels:
        Labels whose edges are never deleted (useful to keep the query
        workload meaningful, e.g. never orphan every query node).
    """
    if not 0 <= fraction < 1:
        raise TransformationError(
            "fraction must be in [0, 1), got {!r}".format(fraction)
        )
    protected = set(protected_labels)
    candidates = [
        edge for edge in database.edges() if edge[1] not in protected
    ]
    rng = random.Random(seed)
    amount = int(round(fraction * database.num_edges()))
    amount = min(amount, len(candidates))
    victims = rng.sample(candidates, amount)
    result = database.copy()
    for edge in victims:
        result.remove_edge(*edge)
    return result


class LossyTransformation:
    """A transformation followed by random edge deletion.

    Mirrors the paper's ``<name>(.95)`` notation: ``keep=0.95`` deletes
    5% of the transformed database's edges.
    """

    def __init__(self, mapping, keep=0.95, seed=0, protected_labels=()):
        if not 0 < keep <= 1:
            raise TransformationError(
                "keep must be in (0, 1], got {!r}".format(keep)
            )
        self.mapping = mapping
        self.keep = keep
        self.seed = seed
        self.protected_labels = tuple(protected_labels)

    @property
    def name(self):
        return "{}({:.2f})".format(self.mapping.name, self.keep)

    @property
    def source(self):
        return self.mapping.source

    @property
    def target(self):
        return self.mapping.target

    @property
    def inverse(self):
        return self.mapping.inverse

    def apply(self, database, multiplicity=1):
        transformed = self.mapping.apply(database, multiplicity=multiplicity)
        return drop_edges(
            transformed,
            1.0 - self.keep,
            seed=self.seed,
            protected_labels=self.protected_labels,
        )
