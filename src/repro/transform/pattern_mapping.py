"""The constructive pattern mapping of Theorem 2.

Given an invertible transformation ``Sigma_ST`` whose inverse's rules have
single-atom conclusions ``phi(x1, x2) -> (x1, l, x2)``, every pattern
``p`` over ``S`` maps to a pattern ``p'`` over ``T`` with identical
instance counts between every pair of (preserved) nodes:

* a label ``l`` that is copied verbatim maps to itself;
* a label ``l`` reconstructed by an inverse rule maps to
  ``<<traversal of the rule's premise from x1 to x2>>`` — the skip
  operator collapses the possibly-many premise matches to the single
  original edge, so counts are preserved (Proposition 3(4));
* the mapping commutes with every RRE operator.

This is exactly how the paper derives, e.g., ``r-a  =>  <<p-in . r-a>>``
for the DBLP-to-SIGMOD-Record variation, and it is what makes RelSim
provably robust: ``sim_p(u, v, D) == sim_{M(p)}(u, v, Sigma(D))``.
"""

from repro.constraints.premise_graph import PremiseGraph
from repro.constraints.tgd import Tgd
from repro.exceptions import TransformationError
from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Reverse,
    Skip,
    Star,
    Union,
    skip,
    union,
)


def label_substitutions(mapping):
    """Per-source-label replacement patterns implied by ``mapping``.

    Returns a dict ``{source_label: target_pattern}``.  Copied labels map
    to themselves; labels rebuilt by an inverse rule map to the skip of
    the premise traversal.  Raises when the inverse is missing or a label
    cannot be reconstructed (the mapping would not be invertible).
    """
    inverse = mapping.inverse
    if inverse is None:
        raise TransformationError(
            "mapping {!r} has no attached inverse; cannot build the "
            "Theorem-2 pattern mapping".format(mapping.name)
        )

    substitutions = {}
    for rule in inverse.rules:
        if len(rule.conclusion) != 1:
            continue
        atom = rule.conclusion[0]
        if isinstance(atom.pattern, Reverse):
            label_name = atom.pattern.operand.name
            start, end = atom.target, atom.source
        elif isinstance(atom.pattern, Label):
            label_name = atom.pattern.name
            start, end = atom.source, atom.target
        else:  # pragma: no cover - Rule validation forbids this
            continue

        if rule.is_copy_rule():
            replacement = Label(label_name)
        else:
            graph = PremiseGraph(Tgd(rule.premise, rule.conclusion))
            graph.require_acyclic()
            steps = graph.find_path(start, end)
            if steps is None:
                raise TransformationError(
                    "inverse rule {} does not connect {} to {}".format(
                        rule, start, end
                    )
                )
            replacement = skip(graph.path_pattern(steps))

        if label_name in substitutions:
            # Several rules rebuild the same label: any path that exists
            # under one premise witnesses the edge, so take the union.
            substitutions[label_name] = union(
                substitutions[label_name], replacement
            )
        else:
            substitutions[label_name] = replacement
    return substitutions


def map_pattern(mapping, pattern, substitutions=None):
    """Translate ``pattern`` over the source schema to the target schema.

    ``substitutions`` may be precomputed with :func:`label_substitutions`
    to amortize the premise-graph work across many patterns.
    """
    if substitutions is None:
        substitutions = label_substitutions(mapping)
    return _substitute(pattern, substitutions, mapping)


def _substitute(pattern, substitutions, mapping):
    if isinstance(pattern, Epsilon):
        return pattern
    if isinstance(pattern, Label):
        try:
            return substitutions[pattern.name]
        except KeyError:
            raise TransformationError(
                "no substitution for label {!r} under mapping {!r}; the "
                "inverse does not reconstruct it".format(
                    pattern.name, mapping.name
                )
            ) from None
    if isinstance(pattern, Reverse):
        return _substitute(pattern.operand, substitutions, mapping).reverse()
    if isinstance(pattern, Star):
        return Star(_substitute(pattern.operand, substitutions, mapping))
    if isinstance(pattern, Skip):
        return Skip(_substitute(pattern.operand, substitutions, mapping))
    if isinstance(pattern, Nested):
        return Nested(_substitute(pattern.operand, substitutions, mapping))
    if isinstance(pattern, Concat):
        return Concat(
            [_substitute(part, substitutions, mapping) for part in pattern.parts]
        )
    if isinstance(pattern, Union):
        return Union(
            [_substitute(part, substitutions, mapping) for part in pattern.parts]
        )
    if isinstance(pattern, Conj):
        return Conj(
            [_substitute(part, substitutions, mapping) for part in pattern.parts]
        )
    raise TypeError("unhandled pattern node {!r}".format(pattern))
