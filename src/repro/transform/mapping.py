"""Schema mappings: declarative transformations between graph schemas.

A transformation ``Sigma_ST`` (Section 3.2.1) is a finite set of rules
``phi_S(x) -> psi_T(y)`` where ``phi_S`` is a conjunctive RPQ over the
source schema, ``psi_T`` one over the target, and every conclusion
variable is either universally bound by the premise or existential.

We apply mappings under the paper's **closed-world** semantics: the
target database contains exactly the nodes and edges constructed by the
rules.  Existentially quantified conclusion variables mint fresh nodes —
one per distinct binding of the universal variables appearing in the same
conclusion (deterministic, so the transformation is reproducible), with a
``multiplicity`` knob to realize the "maps one database to many" aspect
of the definition.
"""

from repro.constraints.evaluation import match_conjunctive
from repro.constraints.premise_graph import normalize_atoms
from repro.constraints.tgd import Atom
from repro.exceptions import TransformationError
from repro.graph.database import GraphDatabase
from repro.graph.matrices import MatrixView
from repro.lang.ast import Label, Reverse


class Rule:
    """One mapping rule ``premise -> conclusion``.

    Parameters
    ----------
    premise:
        Iterable of :class:`Atom` over the source schema (full RRE
        patterns are allowed; they are evaluated booleanly).
    conclusion:
        Iterable of :class:`Atom` over the target schema.  After
        normalizing concatenations apart, every conclusion atom must be a
        single (possibly reversed) label — that is what "constructing an
        edge" means.
    fresh_types:
        Optional mapping from existential variable name to the node type
        the minted nodes should carry.
    """

    def __init__(self, premise, conclusion, fresh_types=None):
        self.premise = tuple(premise)
        self.conclusion = tuple(
            Atom(s, p, t) for s, p, t in normalize_atoms(conclusion)
        )
        self.fresh_types = dict(fresh_types or {})
        for atom in self.conclusion:
            if not self._is_edge_pattern(atom.pattern):
                raise TransformationError(
                    "conclusion atom {} does not construct a single edge".format(
                        atom
                    )
                )

    @staticmethod
    def _is_edge_pattern(pattern):
        if isinstance(pattern, Label):
            return True
        return isinstance(pattern, Reverse) and isinstance(
            pattern.operand, Label
        )

    def premise_variables(self):
        variables = set()
        for atom in self.premise:
            variables |= atom.variables()
        return variables

    def conclusion_variables(self):
        variables = set()
        for atom in self.conclusion:
            variables |= atom.variables()
        return variables

    def existential_variables(self):
        return self.conclusion_variables() - self.premise_variables()

    def conclusion_labels(self):
        labels = set()
        for atom in self.conclusion:
            labels |= atom.labels()
        return labels

    def is_copy_rule(self):
        """True for identity rules ``(x, l, y) -> (x, l, y)``."""
        return (
            len(self.premise) == 1
            and len(self.conclusion) == 1
            and self.premise[0] == self.conclusion[0]
        )

    def __str__(self):
        return "{} -> {}".format(
            " & ".join(str(a) for a in self.premise),
            " & ".join(str(a) for a in self.conclusion),
        )

    def __repr__(self):
        return "Rule({!r})".format(str(self))


def copy_rule(label_name):
    """The identity rule for one label."""
    atom = Atom("x1", Label(label_name), "x2")
    return Rule([atom], [atom])


class SchemaMapping:
    """A named transformation from ``source`` schema to ``target`` schema."""

    def __init__(self, name, source, target, rules, inverse=None):
        self.name = name
        self.source = source
        self.target = target
        self.rules = tuple(rules)
        self._inverse = inverse
        for rule in self.rules:
            missing_src = {
                lab for atom in rule.premise for lab in atom.labels()
            } - source.labels
            if missing_src:
                raise TransformationError(
                    "rule {} uses labels {} not in the source schema".format(
                        rule, sorted(missing_src)
                    )
                )
            missing_tgt = rule.conclusion_labels() - target.labels
            if missing_tgt:
                raise TransformationError(
                    "rule {} produces labels {} not in the target schema".format(
                        rule, sorted(missing_tgt)
                    )
                )

    @property
    def inverse(self):
        """The inverse mapping, when one has been attached."""
        return self._inverse

    def with_inverse(self, inverse):
        """Return self after attaching ``inverse`` (fluent helper)."""
        self._inverse = inverse
        return self

    # ------------------------------------------------------------------
    # Application (closed world)
    # ------------------------------------------------------------------
    def apply(self, database, multiplicity=1, fresh_prefix=None):
        """Transform ``database`` into a database of the target schema.

        Parameters
        ----------
        multiplicity:
            How many fresh nodes to mint per existential variable and
            binding.  ``1`` picks the canonical member of ``Sigma(I)``;
            larger values realize other members (more keyword nodes for
            the same paper, in the paper's example).
        fresh_prefix:
            Prefix for minted node ids; defaults to the mapping name.

        Node types are carried over for preserved node ids and taken from
        each rule's ``fresh_types`` for minted nodes.
        """
        if multiplicity < 1:
            raise TransformationError("multiplicity must be >= 1")
        prefix = fresh_prefix if fresh_prefix is not None else self.name
        view = MatrixView(database)
        result = GraphDatabase(self.target)

        for rule_index, rule in enumerate(self.rules):
            existential = rule.existential_variables()
            for binding in match_conjunctive(view, rule.premise):
                for copy_index in range(multiplicity):
                    full = dict(binding)
                    for variable in sorted(existential):
                        full[variable] = self._fresh_id(
                            prefix, rule_index, variable, binding, copy_index
                        )
                    for atom in rule.conclusion:
                        source_id = full[atom.source]
                        target_id = full[atom.target]
                        if isinstance(atom.pattern, Reverse):
                            label = atom.pattern.operand.name
                            source_id, target_id = target_id, source_id
                        else:
                            label = atom.pattern.name
                        result.add_edge(source_id, label, target_id)
                        for node_id, variable in (
                            (source_id, atom.source),
                            (target_id, atom.target),
                        ):
                            self._set_type(
                                result, database, rule, node_id, variable
                            )
                    if not existential:
                        break  # copies would be identical; edges are a set

        return result

    @staticmethod
    def _fresh_id(prefix, rule_index, variable, binding, copy_index):
        anchor = ",".join(
            "{}={}".format(k, binding[k]) for k in sorted(binding)
        )
        return "{}:r{}:{}:{}#{}".format(
            prefix, rule_index, variable, anchor, copy_index
        )

    @staticmethod
    def _set_type(result, database, rule, node_id, variable):
        if database.has_node(node_id):
            node_type = database.node_type(node_id)
        else:
            node_type = rule.fresh_types.get(variable)
        if node_type is not None:
            result.add_node(node_id, node_type)

    # ------------------------------------------------------------------
    def preserved_labels(self):
        """Labels copied verbatim by an identity rule."""
        return {
            rule.conclusion[0].pattern.name
            for rule in self.rules
            if rule.is_copy_rule()
        }

    def __repr__(self):
        return "SchemaMapping({!r}, rules={})".format(self.name, len(self.rules))
