"""Composition of schema mappings and derived source constraints.

Proposition 1: for an invertible ``Sigma_ST`` every source database
satisfies ``Sigma_ST^{-1} o Sigma_ST`` — a set of (full) tgds over the
source schema.  This module implements the paper's syntactic composition
for the first-order-expressible case (Section 3.2.2): each single-label
atom in an inverse rule's premise is replaced by the premise of a forward
rule whose conclusion produces that label.

The derived constraints are what :func:`repro.patterns` feeds Algorithm 2
with, and what dataset generators must uphold for the catalog
transformations to be invertible.
"""

import itertools

from repro.constraints.premise_graph import normalize_atoms
from repro.constraints.tgd import Atom, Tgd
from repro.exceptions import TransformationError
from repro.lang.ast import Label, Reverse


def _single_label(pattern):
    """``(label, reversed?)`` when the pattern is one step, else ``None``."""
    if isinstance(pattern, Label):
        return pattern.name, False
    if isinstance(pattern, Reverse) and isinstance(pattern.operand, Label):
        return pattern.operand.name, True
    return None


def _producers(mapping, label_name):
    """Rules of ``mapping`` whose conclusion constructs ``label_name``.

    Returns ``[(rule, source_var, target_var)]`` where the variables are
    the endpoints of the produced edge in the rule's own vocabulary.
    """
    producers = []
    for rule in mapping.rules:
        for atom in rule.conclusion:
            step = _single_label(atom.pattern)
            if step is None:
                continue
            name, reversed_ = step
            if name != label_name:
                continue
            if reversed_:
                producers.append((rule, atom.target, atom.source))
            else:
                producers.append((rule, atom.source, atom.target))
    return producers


def compose_inverse(mapping):
    """The tgds ``Sigma^{-1} o Sigma`` over the source schema.

    For every inverse rule, every choice of forward-rule producer for each
    of its premise atoms yields one composed constraint: substitute each
    premise atom by the chosen producer's premise (variables freshly
    renamed, endpoints unified), keep the inverse rule's conclusion.

    Raises :class:`TransformationError` when a premise atom's label has no
    producer (the composition would not be first-order expressible the
    way the paper requires) or when the producer's edge endpoints are
    existential (second-order case, explicitly out of scope).
    """
    inverse = mapping.inverse
    if inverse is None:
        raise TransformationError(
            "mapping {!r} has no attached inverse".format(mapping.name)
        )

    constraints = []
    for inverse_rule in inverse.rules:
        atoms = [
            Atom(s, p, t) for s, p, t in normalize_atoms(inverse_rule.premise)
        ]
        options = []
        for atom in atoms:
            step = _single_label(atom.pattern)
            if step is None:
                raise TransformationError(
                    "inverse-rule premise atom {} is not a single label; "
                    "normalize it first".format(atom)
                )
            name, reversed_ = step
            producers = _producers(mapping, name)
            if not producers:
                raise TransformationError(
                    "no forward rule of {!r} produces label {!r}".format(
                        mapping.name, name
                    )
                )
            atom_options = []
            for rule, src_var, tgt_var in producers:
                if {src_var, tgt_var} & rule.existential_variables():
                    raise TransformationError(
                        "label {!r} is produced on an existential node by "
                        "{}; the composition needs second-order logic "
                        "(Section 3.2.2) and is unsupported".format(name, rule)
                    )
                endpoints = (
                    (atom.target, atom.source)
                    if reversed_
                    else (atom.source, atom.target)
                )
                atom_options.append((rule, src_var, tgt_var, endpoints))
            options.append(atom_options)

        for choice in itertools.product(*options):
            premise = []
            for index, (rule, src_var, tgt_var, endpoints) in enumerate(choice):
                renaming = _fresh_renaming(rule, index)
                renaming[src_var] = endpoints[0]
                renaming[tgt_var] = endpoints[1]
                for atom in rule.premise:
                    premise.append(atom.rename(renaming))
            conclusion = list(inverse_rule.conclusion)
            constraints.append(Tgd(premise, conclusion))
    return constraints


def _fresh_renaming(rule, index):
    """Rename a producer rule's internal variables apart per atom slot."""
    return {
        variable: "_c{}_{}".format(index, variable)
        for variable in rule.premise_variables()
    }


def derived_source_constraints(mapping, keep_trivial=False):
    """Composed constraints, with trivial ones filtered by default.

    Copy rules compose to ``(x, l, y) -> (x, l, y)`` which restricts
    nothing (Section 6.1); pattern generation ignores them, so we drop
    them here unless asked otherwise.
    """
    constraints = compose_inverse(mapping)
    if keep_trivial:
        return constraints
    return [c for c in constraints if not c.is_trivial()]
