"""The paper's concrete transformations (Section 7.1), ready to apply.

Each factory returns a :class:`SchemaMapping` with its inverse attached,
so :func:`repro.transform.pattern_mapping.map_pattern` can derive the
Theorem-2 pattern translation, and :mod:`repro.transform.invertibility`
can verify roundtrips on generated data.

* :func:`dblp2sigm` — restructure DBLP into the SIGMOD-Record style:
  research areas attach to proceedings instead of papers.
* :func:`dblp2sigmx` — same, plus fresh *publication record* nodes
  connecting each author to each proceedings she has published in
  (the invertible, information-adding DBLP2SIGMX of Table 2).
* :func:`wsuc2alch` — restructure the WSU course graph into the Alchemy
  UW-CSE style: subjects attach to courses instead of offerings.
* :func:`biomedt` — drop the two derivable ``*-indirect`` labels from
  BioMed.
"""

from repro.constraints.tgd import Atom
from repro.lang.parser import parse_pattern
from repro.transform.lossy import LossyTransformation
from repro.transform.mapping import Rule, SchemaMapping, copy_rule
from repro.datasets import schemas as S


def _atom(source, pattern_text, target):
    return Atom(source, parse_pattern(pattern_text), target)


def dblp2sigm():
    """DBLP2SIGM: move ``r-a`` edges from papers to their proceedings."""
    forward = SchemaMapping(
        "DBLP2SIGM",
        source=S.DBLP_SCHEMA,
        target=S.SIGM_SCHEMA,
        rules=[
            copy_rule("w"),
            copy_rule("p-in"),
            Rule(
                premise=[_atom("x1", "p-in", "x2"), _atom("x1", "r-a", "x3")],
                conclusion=[_atom("x2", "r-a", "x3")],
            ),
        ],
    )
    inverse = SchemaMapping(
        "DBLP2SIGM-inverse",
        source=S.SIGM_SCHEMA,
        target=S.DBLP_SCHEMA,
        rules=[
            copy_rule("w"),
            copy_rule("p-in"),
            Rule(
                premise=[_atom("x1", "p-in.r-a", "x3")],
                conclusion=[_atom("x1", "r-a", "x3")],
            ),
        ],
    )
    return forward.with_inverse(inverse)


def dblp2sigmx():
    """DBLP2SIGMX: DBLP2SIGM plus author-proceedings record nodes.

    The record nodes are existential: one fresh node per (author,
    proceedings) pair with at least one paper — note the *skip* in the
    premise, which collapses multiple papers to a single match.  The
    inverse ignores the record edges, exactly as the paper describes
    ("DBLP2SIGMX ... has the same inverse as DBLP2SIGM").
    """
    base = dblp2sigm()
    forward = SchemaMapping(
        "DBLP2SIGMX",
        source=S.DBLP_SCHEMA,
        target=S.SIGMX_SCHEMA,
        rules=list(base.rules)
        + [
            Rule(
                premise=[_atom("x1", "<<w.p-in>>", "x2")],
                conclusion=[
                    _atom("y1", "rec-of", "x1"),
                    _atom("y1", "rec-in", "x2"),
                ],
                fresh_types={"y1": "pubrec"},
            )
        ],
    )
    inverse = SchemaMapping(
        "DBLP2SIGMX-inverse",
        source=S.SIGMX_SCHEMA,
        target=S.DBLP_SCHEMA,
        rules=list(base.inverse.rules),
    )
    return forward.with_inverse(inverse)


def wsuc2alch():
    """WSUC2ALCH: move subject edges from offerings to their courses."""
    forward = SchemaMapping(
        "WSUC2ALCH",
        source=S.WSU_SCHEMA,
        target=S.ALCH_SCHEMA,
        rules=[
            copy_rule("t"),
            copy_rule("co"),
            Rule(
                premise=[_atom("x1", "co", "x2"), _atom("x1", "os", "x3")],
                conclusion=[_atom("x2", "cs", "x3")],
            ),
        ],
    )
    inverse = SchemaMapping(
        "WSUC2ALCH-inverse",
        source=S.ALCH_SCHEMA,
        target=S.WSU_SCHEMA,
        rules=[
            copy_rule("t"),
            copy_rule("co"),
            Rule(
                premise=[_atom("x1", "co.cs", "x3")],
                conclusion=[_atom("x1", "os", "x3")],
            ),
        ],
    )
    return forward.with_inverse(inverse)


def biomedt():
    """BioMedT: remove the two derivable ``*-indirect`` edge labels."""
    base_labels = sorted(S.BIOMED_T_SCHEMA.labels)
    forward = SchemaMapping(
        "BioMedT",
        source=S.BIOMED_SCHEMA,
        target=S.BIOMED_T_SCHEMA,
        rules=[copy_rule(label) for label in base_labels],
    )
    inverse = SchemaMapping(
        "BioMedT-inverse",
        source=S.BIOMED_T_SCHEMA,
        target=S.BIOMED_SCHEMA,
        rules=[copy_rule(label) for label in base_labels]
        + [
            Rule(
                premise=[
                    _atom("x1", "is-parent-of", "x2"),
                    _atom("x1", "ph-a-assoc", "x3"),
                ],
                conclusion=[_atom("x2", "ph-a-indirect", "x3")],
            ),
            Rule(
                premise=[
                    _atom("x1", "is-parent-of", "x2"),
                    _atom("x3", "dd-ph-assoc", "x1"),
                ],
                conclusion=[_atom("x3", "dd-ph-indirect", "x2")],
            ),
        ],
    )
    return forward.with_inverse(inverse)


def dblp2sigm_lossy(keep=0.95, seed=0):
    """DBLP2SIGM(.95): restructure then drop ``1 - keep`` of the edges."""
    return LossyTransformation(dblp2sigm(), keep=keep, seed=seed)


def biomedt_lossy(keep=0.95, seed=0):
    """BioMedT(.95): drop the indirect labels, then 5% of other edges."""
    return LossyTransformation(biomedt(), keep=keep, seed=seed)


# ----------------------------------------------------------------------
# Evaluation patterns per dataset (Section 7.1 / Table 4)
# ----------------------------------------------------------------------
#: Patterns used by the robustness experiments.  ``relsim_target`` is
#: *derived* from ``relsim_source`` via the Theorem-2 mapping at run time
#: (see :func:`repro.transform.pattern_mapping.map_pattern`), so only the
#: source pattern and the baselines' "closest simple pattern" per side are
#: written down here.
EXPERIMENT_PATTERNS = {
    "DBLP2SIGM": {
        "query_type": "proc",
        "answer_type": "proc",
        # proceedings similar through shared research areas (via papers).
        "relsim_source": "p-in-.r-a.r-a-.p-in",
        "pathsim_source": "p-in-.r-a.r-a-.p-in",
        "pathsim_target": "r-a.r-a-",
    },
    "WSUC2ALCH": {
        "query_type": "course",
        "answer_type": "course",
        # courses similar through shared subjects (via offerings).
        "relsim_source": "co-.os.os-.co",
        "pathsim_source": "co-.os.os-.co",
        "pathsim_target": "cs.cs-",
    },
    "BioMedT": {
        "query_type": "disont-disease",
        "answer_type": "drug",
        # disease -> (indirectly associated) phenotype -> protein <- drug.
        "relsim_source": "dd-ph-indirect.ph-pr-assoc.targets-",
        "pathsim_source": "dd-ph-indirect.ph-pr-assoc.targets-",
        "pathsim_target": "dd-ph-assoc.is-parent-of.ph-pr-assoc.targets-",
    },
}
