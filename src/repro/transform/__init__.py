"""Schema transformations: mappings, composition, inverses, catalog."""

from repro.transform.catalog import (
    EXPERIMENT_PATTERNS,
    biomedt,
    biomedt_lossy,
    dblp2sigm,
    dblp2sigm_lossy,
    dblp2sigmx,
    wsuc2alch,
)
from repro.transform.chase import chase, chase_delta, repair_report
from repro.transform.compose import compose_inverse, derived_source_constraints
from repro.transform.invertibility import (
    check_invertible_on,
    roundtrip,
    verify_derived_constraints,
    verify_roundtrip,
)
from repro.transform.lossy import LossyTransformation, drop_edges
from repro.transform.mapping import Rule, SchemaMapping, copy_rule
from repro.transform.pattern_mapping import label_substitutions, map_pattern

__all__ = [
    "EXPERIMENT_PATTERNS",
    "LossyTransformation",
    "Rule",
    "SchemaMapping",
    "biomedt",
    "biomedt_lossy",
    "chase",
    "chase_delta",
    "check_invertible_on",
    "compose_inverse",
    "copy_rule",
    "dblp2sigm",
    "dblp2sigm_lossy",
    "dblp2sigmx",
    "derived_source_constraints",
    "drop_edges",
    "label_substitutions",
    "map_pattern",
    "repair_report",
    "roundtrip",
    "verify_derived_constraints",
    "verify_roundtrip",
    "wsuc2alch",
]
