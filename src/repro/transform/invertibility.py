"""Invertibility checks for transformations.

Deciding invertibility is coNP-hard in general (Theorem 1), so the
library offers two practical tools:

* :func:`verify_roundtrip` — checks ``Sigma^{-1}(Sigma(I)) == I`` for one
  concrete database (exact node and edge sets, per the paper's strict
  inverse definition).
* :func:`verify_derived_constraints` — checks ``I |= Sigma^{-1} o Sigma``
  (Proposition 1's necessary condition) for one database.

The test suite runs these over the dataset generators and the catalog
transformations; research code can use them to validate hand-written
mappings on samples before trusting Theorem-2 pattern mappings.
"""

from repro.constraints.evaluation import satisfies
from repro.exceptions import NotInvertibleError, TransformationError
from repro.graph.matrices import MatrixView
from repro.transform.compose import derived_source_constraints


def roundtrip(mapping, database, multiplicity=1):
    """``Sigma^{-1}(Sigma(I))`` — the inverse applied to the image."""
    if mapping.inverse is None:
        raise TransformationError(
            "mapping {!r} has no attached inverse".format(mapping.name)
        )
    image = mapping.apply(database, multiplicity=multiplicity)
    return mapping.inverse.apply(image)


def verify_roundtrip(mapping, database, multiplicity=1, raise_on_failure=False):
    """True when the roundtrip reproduces ``database`` exactly.

    ``multiplicity > 1`` exercises the "one database maps to many" case:
    the inverse must still map every member of ``Sigma(I)`` back to ``I``.
    Isolated source nodes (no incident edges) cannot be reconstructed by
    any edge-building rule and are compared on edge sets only; the
    generators never produce them.
    """
    recovered = roundtrip(mapping, database, multiplicity=multiplicity)
    ok = recovered.edge_set() == database.edge_set()
    if not ok and raise_on_failure:
        missing = database.edge_set() - recovered.edge_set()
        extra = recovered.edge_set() - database.edge_set()
        raise NotInvertibleError(
            "roundtrip through {!r} lost {} edges and invented {} "
            "(e.g. lost={}, extra={})".format(
                mapping.name,
                len(missing),
                len(extra),
                sorted(missing)[:3],
                sorted(extra)[:3],
            )
        )
    return ok


def verify_derived_constraints(mapping, database, raise_on_failure=False):
    """Check Proposition 1: ``I |= Sigma^{-1} o Sigma``."""
    view = MatrixView(database)
    for constraint in derived_source_constraints(mapping):
        if not satisfies(view, constraint):
            if raise_on_failure:
                raise NotInvertibleError(
                    "database violates derived constraint {}".format(constraint)
                )
            return False
    return True


def check_invertible_on(mapping, databases, multiplicity=1):
    """Batch check over sample databases; returns the failing ones."""
    failures = []
    for database in databases:
        if not verify_roundtrip(mapping, database, multiplicity=multiplicity):
            failures.append(database)
    return failures
