"""The chase: repairing a database to satisfy full tgds.

Section 3 shows that a schema's constraints determine its invertible
structural variations — but real data rarely arrives constraint-clean.
The chase is the classic procedure that *makes* an instance satisfy a
set of tgds by adding the implied facts: while some constraint has a
premise match whose conclusion is missing, add the conclusion edges.

We implement the chase for **full tgds with label/reversed-label
conclusions** (exactly the constraint class Proposition 1 derives from
invertible transformations).  For full tgds the chase always terminates:
the node set is fixed, so the edge set can only grow to a finite bound.

Typical uses:

* make a scraped dataset eligible for a catalog transformation
  (``chase(db, derived_source_constraints(mapping))``);
* compute derived labels — e.g. BioMed's ``*-indirect`` closure is one
  chase step;
* check how far from constraint-clean a dataset is
  (:func:`chase_delta`).
"""

from repro.constraints.evaluation import match_conjunctive
from repro.constraints.premise_graph import normalize_atoms
from repro.exceptions import ConstraintError
from repro.graph.matrices import MatrixView
from repro.lang.ast import Label, Reverse


def _conclusion_edges(constraint, binding):
    """The ground edges a premise match obliges the database to contain."""
    edges = []
    for source, pattern, target in normalize_atoms(constraint.conclusion):
        if isinstance(pattern, Label):
            label = pattern.name
            endpoints = (binding.get(source), binding.get(target))
        elif isinstance(pattern, Reverse) and isinstance(
            pattern.operand, Label
        ):
            label = pattern.operand.name
            endpoints = (binding.get(target), binding.get(source))
        else:
            raise ConstraintError(
                "chase supports single-label conclusions only, got "
                "({}, {}, {})".format(source, pattern, target)
            )
        if None in endpoints:
            raise ConstraintError(
                "chase supports full tgds only; {} has existential "
                "conclusion variables".format(constraint)
            )
        edges.append((endpoints[0], label, endpoints[1]))
    return edges


def chase(database, constraints, max_rounds=None, in_place=False):
    """Chase ``database`` with full tgds until all are satisfied.

    Parameters
    ----------
    constraints:
        Iterable of full :class:`Tgd` with single-label conclusion atoms.
    max_rounds:
        Safety bound on fixpoint rounds; defaults to
        ``len(labels) * num_nodes**2 + 1`` (the trivial edge-count bound,
        never reached in practice).
    in_place:
        Mutate ``database`` instead of chasing a copy.

    Returns the chased database (new edges only; the chase of full tgds
    never adds nodes).
    """
    constraints = list(constraints)
    for constraint in constraints:
        if not getattr(constraint, "is_full", lambda: False)():
            raise ConstraintError(
                "chase supports full tgds only: {}".format(constraint)
            )
    result = database if in_place else database.copy()
    if max_rounds is None:
        max_rounds = (
            len(result.schema.labels) * max(result.num_nodes(), 1) ** 2 + 1
        )

    for _ in range(max_rounds):
        added = 0
        view = MatrixView(result)  # fresh snapshot per round
        for constraint in constraints:
            for binding in match_conjunctive(view, constraint.premise):
                for edge in _conclusion_edges(constraint, binding):
                    if not result.has_edge(*edge):
                        result.add_edge(*edge)
                        added += 1
        if added == 0:
            return result
    raise ConstraintError(
        "chase did not converge within {} rounds".format(max_rounds)
    )


def chase_delta(database, constraints):
    """Edges the chase would add — a constraint-violation measure.

    Returns a set of ``(source, label, target)`` triples; empty iff the
    database already satisfies every constraint.
    """
    chased = chase(database, constraints)
    return chased.edge_set() - database.edge_set()


def repair_report(database, constraints):
    """Human-readable summary of how constraint-clean a database is."""
    delta = chase_delta(database, constraints)
    by_label = {}
    for _, label, _ in delta:
        by_label[label] = by_label.get(label, 0) + 1
    lines = [
        "chase delta: {} missing edges over {} constraints".format(
            len(delta), len(list(constraints))
        )
    ]
    for label in sorted(by_label):
        lines.append("  {:<24s} {}".format(label, by_label[label]))
    return "\n".join(lines)
