"""repro — reproduction of "Structural Generalizability: The Case of
Similarity Search" (SIGMOD 2021).

Public API tour
---------------
Build a graph database::

    from repro import GraphDatabase, Schema
    schema = Schema(["p-in", "r-a"])
    db = GraphDatabase(schema)
    db.add_edge("paper:1", "p-in", "VLDB")

Open a session — the one entry point for similarity search.  It owns a
shared :class:`CommutingMatrixEngine`, so every algorithm built through
it reuses the same materialized sparse matrices::

    from repro import SimilaritySession
    session = SimilaritySession(db)

Ask a similarity query fluently.  Algorithms are resolved by name
through the registry (``available_algorithms()`` lists them;
``register_algorithm`` plugs in your own)::

    ranking = (
        session.query("VLDB")
        .using("relsim", pattern="p-in-.r-a.r-a-.p-in")
        .top(10)
    )

The usability layer (Section 5): hand over a *simple* pattern and let
Algorithm 1 expand it into the structurally robust RRE set::

    ranking = (
        session.query("VLDB")
        .using("relsim", pattern="p-in-.p-in")
        .expand_patterns(max_patterns=16)
        .top(10)
    )

Score a whole workload in one pass — one sparse row slice per pattern
instead of one extraction per query::

    rankings = session.rank_many(
        ["VLDB", "SIGMOD"], algorithm="relsim",
        pattern="p-in-.r-a.r-a-.p-in", top_k=10,
    )

Serve the same query shape many times: prepare once (parse, expand,
compile, warm), run per node on pinned state — and keep serving through
live updates with :class:`SimilarityService`'s atomic snapshot swap::

    prepared = session.prepare(
        algorithm="relsim", pattern="p-in-.r-a.r-a-.p-in", top_k=10)
    prepared.run("VLDB")

    from repro import SimilarityService
    service = SimilarityService(db)
    prepared = service.prepare(
        algorithm="relsim", pattern="p-in-.r-a.r-a-.p-in", top_k=10)
    service.apply(edges_added=[("paper:2", "p-in", "VLDB")])
    prepared.run("VLDB")   # already re-bound to the new snapshot

Direct construction still works (the facade wraps, it doesn't break)::

    from repro import RelSim
    relsim = RelSim(db, "p-in-.r-a.r-a-.p-in")
    relsim.rank("VLDB", top_k=10)

Transform a database and carry the pattern across::

    from repro.transform import dblp2sigm, map_pattern
    mapping = dblp2sigm()
    variant = mapping.apply(db)
    translated = map_pattern(mapping, relsim.patterns[0])
"""

from repro.api import (
    PreparedQuery,
    QueryBuilder,
    SimilarityService,
    SimilaritySession,
    available_algorithms,
    register_algorithm,
)

from repro.analysis import Diagnostic, PatternTypeChecker
from repro.constraints import Atom, Egd, Tgd, parse_tgd, satisfies
from repro.core import RelSim
from repro.exceptions import (
    AsymmetricPatternError,
    ConfigurationError,
    ConstraintError,
    CyclicPremiseError,
    EvaluationError,
    NodeTypeConflictError,
    NotInvertibleError,
    PatternSyntaxError,
    PatternTypeError,
    RegistryError,
    ReproError,
    SchemaError,
    StarDivergenceError,
    TransformationError,
    UnknownEdgeError,
    UnknownLabelError,
    UnknownNodeError,
)
from repro.graph import GraphDatabase, MatrixView, NodeIndexer, Schema
from repro.lang import (
    CommutingMatrixEngine,
    enumerate_instances,
    parse_pattern,
    simple_pattern,
)
from repro.patterns import generate_patterns
from repro.similarity import (
    RWR,
    HeteSim,
    PathSim,
    PatternRWR,
    PatternSimRank,
    Ranking,
    SimRank,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "AsymmetricPatternError",
    "CommutingMatrixEngine",
    "ConfigurationError",
    "ConstraintError",
    "CyclicPremiseError",
    "Diagnostic",
    "Egd",
    "EvaluationError",
    "GraphDatabase",
    "HeteSim",
    "MatrixView",
    "NodeIndexer",
    "NodeTypeConflictError",
    "NotInvertibleError",
    "PathSim",
    "PatternRWR",
    "PatternSimRank",
    "PatternSyntaxError",
    "PatternTypeChecker",
    "PatternTypeError",
    "PreparedQuery",
    "QueryBuilder",
    "RWR",
    "Ranking",
    "RegistryError",
    "RelSim",
    "ReproError",
    "Schema",
    "SchemaError",
    "SimRank",
    "SimilarityService",
    "SimilaritySession",
    "StarDivergenceError",
    "Tgd",
    "TransformationError",
    "UnknownEdgeError",
    "UnknownLabelError",
    "UnknownNodeError",
    "available_algorithms",
    "enumerate_instances",
    "generate_patterns",
    "parse_pattern",
    "parse_tgd",
    "register_algorithm",
    "satisfies",
    "simple_pattern",
]
