"""repro — reproduction of "Structural Generalizability: The Case of
Similarity Search" (SIGMOD 2021).

Public API tour
---------------
Build a graph database::

    from repro import GraphDatabase, Schema
    schema = Schema(["p-in", "r-a"])
    db = GraphDatabase(schema)
    db.add_edge("paper:1", "p-in", "VLDB")

Parse and evaluate RRE patterns::

    from repro import parse_pattern, CommutingMatrixEngine
    engine = CommutingMatrixEngine(db)
    engine.pathsim_score(parse_pattern("p-in.p-in-"), "paper:1", "paper:2")

Run robust similarity search::

    from repro import RelSim
    relsim = RelSim(db, "p-in-.r-a.r-a-.p-in")
    relsim.rank("VLDB", top_k=10)

Transform a database and carry the pattern across::

    from repro.transform import dblp2sigm, map_pattern
    mapping = dblp2sigm()
    variant = mapping.apply(db)
    translated = map_pattern(mapping, relsim.patterns[0])
"""

from repro.constraints import Atom, Egd, Tgd, parse_tgd, satisfies
from repro.core import RelSim
from repro.exceptions import (
    AsymmetricPatternError,
    ConstraintError,
    CyclicPremiseError,
    EvaluationError,
    NotInvertibleError,
    PatternSyntaxError,
    ReproError,
    SchemaError,
    StarDivergenceError,
    TransformationError,
    UnknownLabelError,
    UnknownNodeError,
)
from repro.graph import GraphDatabase, MatrixView, NodeIndexer, Schema
from repro.lang import (
    CommutingMatrixEngine,
    enumerate_instances,
    parse_pattern,
    simple_pattern,
)
from repro.patterns import generate_patterns
from repro.similarity import (
    RWR,
    HeteSim,
    PathSim,
    PatternRWR,
    PatternSimRank,
    Ranking,
    SimRank,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "AsymmetricPatternError",
    "CommutingMatrixEngine",
    "ConstraintError",
    "CyclicPremiseError",
    "Egd",
    "EvaluationError",
    "GraphDatabase",
    "HeteSim",
    "MatrixView",
    "NodeIndexer",
    "NotInvertibleError",
    "PathSim",
    "PatternRWR",
    "PatternSimRank",
    "PatternSyntaxError",
    "RWR",
    "Ranking",
    "RelSim",
    "ReproError",
    "Schema",
    "SchemaError",
    "SimRank",
    "StarDivergenceError",
    "Tgd",
    "TransformationError",
    "UnknownLabelError",
    "UnknownNodeError",
    "enumerate_instances",
    "generate_patterns",
    "parse_pattern",
    "parse_tgd",
    "satisfies",
    "simple_pattern",
]
