"""The HTTP/JSON wire format and error mapping of ``repro serve``.

One place owns what goes over the wire: request-body validation
helpers, the ranking payload shape, and the mapping from library
exceptions to HTTP statuses.  Handlers in :mod:`repro.server.app` raise
:class:`HttpError` (or any :class:`~repro.exceptions.ReproError`, which
:func:`error_response` translates) and the server turns it into a JSON
error body — a client never sees a bare traceback.

Payload shapes::

    POST /query      {"node": "proc:0", "top_k": 10}
    POST /rank_many  {"nodes": ["proc:0", ...], "top_k": 10}
    POST /apply      {"edges_added":   [["src", "label", "tgt"], ...],
                      "edges_removed": [...],
                      "nodes_added":   ["node" | ["node", "type"], ...],
                      "incremental":   true | false | null}
    POST /explain    {"patterns": ["r-a-.r-a", ...]}   (optional body)
    POST /subscribe  {"node": "proc:0", "top_k": 10}   (SSE stream out)

Rankings serialize as ``[[node, score], ...]`` in rank order — the
paper's deterministic tie-broken order survives the wire.
"""

import json

from repro.exceptions import (
    EvaluationError,
    PatternSyntaxError,
    PatternTypeError,
    RegistryError,
    ReproError,
    UnknownEdgeError,
    UnknownLabelError,
    UnknownNodeError,
)

#: Library failure -> HTTP status.  Checked in order, most specific
#: first; anything else from the library hierarchy is a 400 (the
#: request named something the data model rejects), never a 500.
_ERROR_STATUS = (
    (UnknownNodeError, 404),
    (UnknownEdgeError, 409),
    (UnknownLabelError, 400),
    (PatternSyntaxError, 400),
    (RegistryError, 400),
    (EvaluationError, 400),
    (ReproError, 400),
)


class HttpError(Exception):
    """An error with a definite HTTP status and JSON-able message."""

    def __init__(self, status, message, headers=None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


def error_response(error):
    """``(status, payload, headers)`` for any handler exception."""
    if isinstance(error, HttpError):
        return error.status, {"error": error.message}, error.headers
    if isinstance(error, PatternTypeError):
        # Static type-check rejections carry the full diagnostic list;
        # put it in the body so clients can render spans and severities
        # instead of re-parsing the message string.
        return (
            400,
            {
                "error": str(error),
                "kind": "PatternTypeError",
                "diagnostics": [d.to_dict() for d in error.diagnostics],
            },
            {},
        )
    for exc_type, status in _ERROR_STATUS:
        if isinstance(error, exc_type):
            return (
                status,
                {"error": str(error), "kind": type(error).__name__},
                {},
            )
    # Anything non-library is a genuine server bug: report the type so
    # the operator can find it in the logs, but keep the body terse.
    return 500, {"error": "internal error: {}".format(type(error).__name__)}, {}


def parse_body(body):
    """The request body as a dict (empty body -> empty dict)."""
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise HttpError(400, "request body is not valid JSON: {}".format(error))
    if not isinstance(payload, dict):
        raise HttpError(400, "request body must be a JSON object")
    return payload


def require_str(payload, key):
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise HttpError(
            400, "field {!r} must be a non-empty string".format(key)
        )
    return value


def optional_int(payload, key, minimum=1):
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise HttpError(400, "field {!r} must be an integer".format(key))
    if value < minimum:
        raise HttpError(
            400, "field {!r} must be >= {}".format(key, minimum)
        )
    return value


def string_list(payload, key, required=False):
    value = payload.get(key)
    if value is None:
        if required:
            raise HttpError(400, "field {!r} is required".format(key))
        return []
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise HttpError(
            400, "field {!r} must be a list of strings".format(key)
        )
    return value


def edge_list(payload, key):
    """``[(source, label, target), ...]`` from a JSON edge array."""
    value = payload.get(key)
    if value is None:
        return []
    if not isinstance(value, list):
        raise HttpError(400, "field {!r} must be a list".format(key))
    edges = []
    for item in value:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 3
            or not all(isinstance(part, str) and part for part in item)
        ):
            raise HttpError(
                400,
                "field {!r} entries must be [source, label, target] "
                "string triples".format(key),
            )
        edges.append(tuple(item))
    return edges


def node_list(payload, key):
    """Node additions: ``"id"`` or ``["id", "type"]`` entries."""
    value = payload.get(key)
    if value is None:
        return []
    if not isinstance(value, list):
        raise HttpError(400, "field {!r} must be a list".format(key))
    nodes = []
    for item in value:
        if isinstance(item, str) and item:
            nodes.append(item)
        elif (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and isinstance(item[0], str)
            and item[0]
            and (item[1] is None or isinstance(item[1], str))
        ):
            nodes.append((item[0], item[1]))
        else:
            raise HttpError(
                400,
                "field {!r} entries must be node ids or "
                "[id, type] pairs".format(key),
            )
    return nodes


def ranking_payload(ranking):
    """A :class:`~repro.similarity.base.Ranking` as JSON-able pairs."""
    return [[node, score] for node, score in ranking.items()]


def encode_json(payload):
    """Compact UTF-8 JSON bytes for a response body."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def encode_sse_event(name, payload):
    """One Server-Sent-Events frame: ``event:`` line + JSON ``data:``.

    The payload is compact JSON (no newlines), so a single ``data:``
    line suffices and the frame ends with the standard blank line.
    """
    return (
        b"event: "
        + name.encode("utf-8")
        + b"\ndata: "
        + encode_json(payload)
        + b"\n\n"
    )
