"""Process worker pool: GIL-free execution over shared-memory snapshots.

Thread-parallel serving tops out below 1x (the engine releases the GIL
only inside BLAS-free SciPy kernels, and the ranking/dispatch layers
never do), so the pool runs ``N`` *interpreters*: each worker process
attaches the parent's published shared-memory segment
(:mod:`repro.server.shm`), rebuilds the serving session zero-copy, and
executes ``run``/``run_many`` against its private GIL.

The pool duck-types :class:`~repro.api.prepared.PreparedQuery` —
``run(node, top_k=...)`` returning a :class:`Ranking` and
``run_many(nodes, top_k=...)`` returning ``{node: Ranking}`` — so it
drops behind the server's :class:`CoalescingBatcher` (or any caller of
a prepared handle) unchanged.  Rankings cross the pipe as their
``(node, score)`` item lists; re-wrapping re-applies the same
deterministic ``(-score, str(node))`` order, so worker answers are
bitwise-identical to in-process ones (the shm parity suite gates this).

Version migration keeps the service's atomic-swap semantics:

* :meth:`WorkerPool.publish` (wired to ``SimilarityService.on_publish``)
  writes the *new* segment, then sends every worker an in-band
  ``adopt`` message.  The request pipe is FIFO, so a worker switches
  snapshots exactly at a request boundary — no torn reads, ever;
* each worker confirms adoption; only when **all** confirmations are in
  does the parent unlink the old segment.  A failed or missed
  confirmation leaves both segments registered with the
  :class:`~repro.server.shm.SegmentRegistry`, whose atexit/SIGTERM
  reaper guarantees nothing outlives the process either way.

Workers are ``spawn``-context daemons: no forked locks from a threaded
parent, and a dying parent takes its workers with it.
"""

import multiprocessing
import os
import signal
import threading
from concurrent.futures import Future

from repro.exceptions import ConfigurationError, WorkerError
from repro.server.batching import PREPARED_DEFAULT
from repro.server.shm import REGISTRY, attach_session, publish_session
from repro.similarity.base import Ranking

#: How long ``__init__`` waits for every worker's ready message.  Spawn
#: pays a full interpreter + numpy/scipy import per worker; generous
#: beats flaky.
START_TIMEOUT = 120.0

#: How long :meth:`WorkerPool.publish` waits for each adoption
#: confirmation before declaring the worker lost.
ADOPT_TIMEOUT = 60.0

_DEFAULT = "__prepared_default__"


def _encode_top_k(top_k):
    return _DEFAULT if top_k is PREPARED_DEFAULT else top_k


def _decode_top_k(encoded):
    return {} if encoded == _DEFAULT else {"top_k": encoded}


def _portable_error(error):
    """``error`` if it survives a pickle round-trip, else a WorkerError.

    Keeping the original type matters: the HTTP layer maps library
    exception types to statuses, and that mapping must not change just
    because execution moved to a worker process.
    """
    import pickle

    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return WorkerError(
            "{}: {}".format(type(error).__name__, error)
        )


def _worker_main(index, conn, spec, manifest):
    """One worker process: attach, prepare, answer until told to stop."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent owns Ctrl-C
    from repro.api.prepared import PreparedQuery

    try:
        # untrack=False: a spawn child shares the parent's resource
        # tracker, so the parent's registration must stay intact.
        attached = attach_session(manifest, untrack=False)
        prepared = PreparedQuery.from_spec(attached.session, spec)
    except Exception as error:
        conn.send(("boot-error", index, _portable_error(error)))
        conn.close()
        return
    conn.send(("ready", attached.version, os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "adopt":
            new_manifest = message[1]
            try:
                adopted = attach_session(new_manifest, untrack=False)
                fresh = PreparedQuery.from_spec(adopted.session, spec)
            except Exception as error:
                conn.send(
                    (
                        "adopt-error",
                        new_manifest.get("version"),
                        _portable_error(error),
                    )
                )
                continue
            previous, attached, prepared = attached, adopted, fresh
            previous.close()
            conn.send(("adopted", attached.version))
            continue
        if kind == "run":
            _, request_id, node, top_k = message
            try:
                ranking = prepared.run(node, **_decode_top_k(top_k))
            except Exception as error:
                conn.send(("error", request_id, _portable_error(error)))
            else:
                conn.send(("result", request_id, list(ranking.items())))
            continue
        if kind == "run_many":
            _, request_id, nodes, top_k = message
            try:
                rankings = prepared.run_many(nodes, **_decode_top_k(top_k))
            except Exception as error:
                conn.send(("error", request_id, _portable_error(error)))
            else:
                conn.send(
                    (
                        "result",
                        request_id,
                        {
                            node: list(ranking.items())
                            for node, ranking in rankings.items()
                        },
                    )
                )
            continue
        conn.send(
            (
                "error",
                None,
                WorkerError("unknown worker message {!r}".format(kind)),
            )
        )
    # Unmap before interpreter teardown orders finalizers arbitrarily
    # (a segment __del__ racing live matrix views raises BufferError).
    prepared = None
    attached.close()
    conn.close()


class _Worker:
    """Parent-side handle: process, pipe, pending futures, counters."""

    def __init__(self, index, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.pending = {}
        self.pending_lock = threading.Lock()
        self.ready = Future()
        self.adoptions = {}
        self.version = None
        self.completed = 0
        self.next_request = 0
        self.alive = True

    def submit(self, kind, *payload):
        """Send one request; returns the Future its answer resolves."""
        future = Future()
        with self.pending_lock:
            request_id = self.next_request
            self.next_request += 1
            self.pending[request_id] = future
        try:
            with self.send_lock:
                self.conn.send((kind, request_id) + payload)
        except (OSError, ValueError) as error:
            with self.pending_lock:
                self.pending.pop(request_id, None)
            self.alive = False
            raise WorkerError(
                "worker {} is gone ({})".format(self.index, error)
            ) from error
        return future

    def pending_count(self):
        with self.pending_lock:
            return len(self.pending)

    def fail_pending(self, error):
        with self.pending_lock:
            futures = list(self.pending.values())
            self.pending.clear()
        for future in futures:
            if not future.done():
                future.set_exception(error)
        if not self.ready.done():
            self.ready.set_exception(error)
        for future in self.adoptions.values():
            if not future.done():
                future.set_exception(error)


class WorkerPool:
    """``N`` spawn-context processes serving one prepared query shape.

    Parameters
    ----------
    spec:
        A :meth:`PreparedQuery.export_spec` dict — the query shape every
        worker rebuilds on its attached session.
    session:
        The serving session to publish as the initial shared-memory
        snapshot (the parent keeps its own in-process copy).
    version:
        The service version of that session (reported by workers).
    workers:
        Process count (>= 1).
    """

    def __init__(
        self, spec, session, version=1, workers=2,
        start_timeout=START_TIMEOUT,
    ):
        if workers < 1:
            raise ConfigurationError(
                "workers must be >= 1, got {}".format(workers)
            )
        self._spec = dict(spec)
        self._manifest = publish_session(session, version)
        self._segments = {self._manifest["segment"]}
        self._version = version
        self._closed = False
        self._lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self._rotation = 0
        self._workers = []
        context = multiprocessing.get_context("spawn")
        try:
            for index in range(workers):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(index, child_conn, self._spec, self._manifest),
                    name="repro-worker-{}".format(index),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                worker = _Worker(index, process, parent_conn)
                threading.Thread(
                    target=self._read_responses,
                    args=(worker,),
                    name="repro-worker-reader-{}".format(index),
                    daemon=True,
                ).start()
                self._workers.append(worker)
            for worker in self._workers:
                ready_version = worker.ready.result(timeout=start_timeout)
                worker.version = ready_version
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # Parent-side response demultiplexing
    # ------------------------------------------------------------------
    def _read_responses(self, worker):
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "result":
                _, request_id, payload = message
                with worker.pending_lock:
                    future = worker.pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_result(payload)
                worker.completed += 1
            elif kind == "error":
                _, request_id, error = message
                with worker.pending_lock:
                    future = worker.pending.pop(request_id, None)
                if future is not None and not future.done():
                    future.set_exception(error)
            elif kind == "ready":
                _, version, _pid = message
                worker.version = version
                if not worker.ready.done():
                    worker.ready.set_result(version)
            elif kind == "adopted":
                _, version = message
                worker.version = version
                future = worker.adoptions.get(version)
                if future is not None and not future.done():
                    future.set_result(version)
            elif kind == "adopt-error":
                _, version, error = message
                future = worker.adoptions.get(version)
                if future is not None and not future.done():
                    future.set_exception(error)
            elif kind == "boot-error":
                _, _index, error = message
                if not worker.ready.done():
                    worker.ready.set_exception(error)
        worker.alive = False
        worker.fail_pending(
            WorkerError(
                "worker {} exited with {} request(s) in flight".format(
                    worker.index, worker.pending_count()
                )
            )
        )

    # ------------------------------------------------------------------
    # Dispatch (the PreparedQuery duck type)
    # ------------------------------------------------------------------
    def _alive_workers(self):
        workers = [
            worker
            for worker in self._workers
            if worker.alive and worker.process.is_alive()
        ]
        if not workers:
            raise WorkerError(
                "no live workers (pool {})".format(
                    "closed" if self._closed else "crashed"
                )
            )
        return workers

    def _pick(self):
        with self._lock:
            workers = self._alive_workers()
            self._rotation += 1
            rotation = self._rotation
        return min(
            workers,
            key=lambda worker: (
                worker.pending_count(),
                (worker.index - rotation) % len(self._workers),
            ),
        )

    def run(self, node, top_k=PREPARED_DEFAULT):
        """The :class:`Ranking` for ``node``, computed by one worker."""
        future = self._pick().submit("run", node, _encode_top_k(top_k))
        return Ranking(future.result())

    def run_many(self, nodes, top_k=PREPARED_DEFAULT):
        """``{node: Ranking}``, the batch sharded across live workers.

        Each worker scores its shard with one sparse row slice per
        pattern (the array-native batch path), so a coalesced batch
        parallelizes across cores instead of serializing behind one
        interpreter's GIL.
        """
        nodes = list(nodes)
        if not nodes:
            return {}
        workers = self._alive_workers()
        encoded = _encode_top_k(top_k)
        shards = [
            (worker, nodes[index :: len(workers)])
            for index, worker in enumerate(workers)
            if nodes[index :: len(workers)]
        ]
        futures = [
            worker.submit("run_many", shard, encoded)
            for worker, shard in shards
        ]
        rankings = {}
        for future in futures:
            for node, items in future.result().items():
                rankings[node] = Ranking(items)
        return rankings

    # ------------------------------------------------------------------
    # Version migration
    # ------------------------------------------------------------------
    @property
    def version(self):
        """The snapshot version the pool most recently published."""
        return self._version

    def publish(self, session, version):
        """Publish ``session`` as a new segment and migrate every worker.

        Wire this to :meth:`SimilarityService.on_publish`.  The old
        segment is unlinked only after **all** workers confirm adoption;
        on any failure both segments stay registered for the reaper and
        the error propagates (the service records it as a publish-hook
        failure without un-publishing its own swap).
        """
        with self._publish_lock:
            if self._closed:
                return
            manifest = publish_session(session, version)
            self._segments.add(manifest["segment"])
            confirmations = []
            for worker in self._alive_workers():
                worker.adoptions[version] = Future()
                try:
                    with worker.send_lock:
                        worker.conn.send(("adopt", manifest))
                except (OSError, ValueError):
                    worker.alive = False
                    continue
                confirmations.append(worker)
            failures = []
            for worker in confirmations:
                try:
                    worker.adoptions[version].result(timeout=ADOPT_TIMEOUT)
                except Exception as error:
                    failures.append((worker.index, error))
                finally:
                    worker.adoptions.pop(version, None)
            if failures:
                raise WorkerError(
                    "snapshot v{} adoption failed on worker(s) {}".format(
                        version,
                        ", ".join(
                            "{} ({})".format(index, error)
                            for index, error in failures
                        ),
                    )
                )
            previous = self._manifest["segment"]
            self._manifest = manifest
            self._version = version
            self._segments.discard(previous)
            REGISTRY.unlink(previous)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self):
        """Per-worker counters for ``/statz``."""
        return [
            {
                "worker": worker.index,
                "pid": worker.process.pid,
                "alive": worker.alive and worker.process.is_alive(),
                "version": worker.version,
                "pending": worker.pending_count(),
                "completed": worker.completed,
            }
            for worker in self._workers
        ]

    def segments(self):
        """Names of the segments this pool currently keeps published."""
        return sorted(self._segments)

    def shutdown(self, timeout=10.0):
        """Stop every worker and unlink every segment (idempotent).

        Pending requests drain first (the stop message queues behind
        them in the FIFO pipe); a worker that still does not exit is
        terminated.  Either way every segment this pool published is
        unlinked before returning — the zero-leak guarantee the
        lifecycle tests assert on ``/dev/shm``.
        """
        with self._publish_lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            try:
                with worker.send_lock:
                    worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            worker.alive = False
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.fail_pending(WorkerError("worker pool shut down"))
        for name in list(self._segments):
            REGISTRY.unlink(name)
        self._segments.clear()
