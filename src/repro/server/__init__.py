"""The network serving subsystem: HTTP front-end, batching, snapshots.

Everything below :mod:`repro.api` is an in-process library; this
package is what turns it into a deployable service:

* :mod:`repro.server.app` — an asyncio stdlib HTTP/JSON server
  (``repro serve``) over :class:`~repro.api.service.SimilarityService`
  with request coalescing, backpressure (a saturated server answers
  503 + ``Retry-After``, it never hangs), and ``/healthz`` /
  ``/statz`` introspection;
* :mod:`repro.server.batching` — the micro-batching queue that folds
  concurrent top-k requests for one prepared query into a single
  ``run_many`` call;
* :mod:`repro.server.snapshot` — save/load of a full serving snapshot
  (database + materialized commuting matrices + derived vectors) so a
  restarted server warm-starts from disk instead of recomputing;
* :mod:`repro.server.shm` — the same snapshot state published into
  ``multiprocessing`` shared-memory segments (pooled-array layout,
  versioned, reaper-guarded) for zero-copy cross-process attach;
* :mod:`repro.server.workers` — the spawn-context process pool that
  serves ``run``/``run_many`` over attached segments without sharing
  a GIL (``repro serve --workers N``), migrating atomically on every
  snapshot publication;
* :mod:`repro.server.protocol` — the JSON wire format and the mapping
  from library exceptions to HTTP statuses.
"""

from repro.server.app import BackgroundServer, ReproServer
from repro.server.batching import CoalescingBatcher
from repro.server.shm import (
    SHM_FORMAT,
    AttachedSession,
    SegmentRegistry,
    attach_session,
    publish_session,
)
from repro.server.snapshot import (
    SNAPSHOT_FORMAT,
    load_service,
    load_session,
    save_snapshot,
)
from repro.server.workers import WorkerPool

__all__ = [
    "AttachedSession",
    "BackgroundServer",
    "CoalescingBatcher",
    "ReproServer",
    "SegmentRegistry",
    "SHM_FORMAT",
    "SNAPSHOT_FORMAT",
    "WorkerPool",
    "attach_session",
    "load_service",
    "load_session",
    "publish_session",
    "save_snapshot",
]
