"""Serving-snapshot persistence: save once, warm-start forever.

A cold ``repro serve`` pays the full build bill before the first
request: load the database, compile every prepared pattern, multiply
out the commuting-matrix chains, extract diagonals and column norms.
All of that state is deterministic given the database, so it belongs on
disk: :func:`save_snapshot` serializes the serving session — database,
canonical cache keys, materialized CSR matrices, derived vectors — into
one ``.npz`` file, and :func:`load_session` / :func:`load_service`
rebuild a session whose engine cache is already hot, so preparation is
pure cache hits.

Cache keys are persisted as canonical pattern *text* (the plan node's
concrete syntax), which re-parses and re-compiles to the same interned
plan node in any process — see
:meth:`~repro.lang.matrix_semantics.CommutingMatrixEngine.export_cache`.
Matrices are stored as raw CSR buffers and re-wrapped without
validation on load (they were canonicalized at publish time), so a load
is bounded by disk I/O plus one JSON parse of the database.

Layout note: a serving cache holds dozens of small matrices, and zip
archives charge per *member*, not per byte — storing each CSR buffer
as its own array made load time per-entry overhead.  Instead, all
buffers of one kind are concatenated into a single pooled array per
dtype (``mdata_float64``, ``midx_int32``, ...), with per-entry lengths
in the manifest; loading slices views back out of a handful of big
reads.  Pools are segregated by dtype, never cast, so the restored
buffers are bit-for-bit the saved ones.  The pooling helpers
(:func:`pool_matrices` / :func:`pool_vectors` / :class:`PoolReader` /
:func:`unpool_matrices` / :func:`unpool_vectors`) are shared with
:mod:`repro.server.shm`, which publishes the same layout into
shared-memory segments for zero-copy process workers.

Writes are atomic (temp file + ``os.replace``): the serving layer
checkpoints after every successful ``apply``/``swap``, and a crash
mid-checkpoint must leave the previous good snapshot intact, never a
torn file.
"""

import io
import json
import os
import tempfile
import time
import zipfile

import numpy as np

from repro.api.service import SimilarityService
from repro.api.session import SimilaritySession
from repro.exceptions import SnapshotError
from repro.graph.io import database_from_json, database_to_json
from repro.lang.matrix_semantics import CommutingMatrixEngine

#: Bumped whenever the on-disk layout changes incompatibly; a loader
#: refuses to guess at a format it does not know.
SNAPSHOT_FORMAT = 1

_MAGIC = "repro-serving-snapshot"


# ----------------------------------------------------------------------
# Pooled-array layout (shared with repro.server.shm)
# ----------------------------------------------------------------------
def pool_matrices(pools, prefix, entries):
    """Append each CSR's buffers to the dtype-segregated pools.

    ``entries`` is ``[(key, csr_matrix)]``; buffers land in
    ``pools["{prefix}data_{dtype}"]`` / ``...idx...`` / ``...ptr...``
    lists (concatenate each list to get the stored pool array).
    Returns the manifest entry list: per matrix, its key plus the
    dtype of each buffer and the nnz needed to slice it back out.
    """
    manifest = []
    for key, matrix in entries:
        manifest.append(
            {
                "p": key,
                "data": _pool(pools, prefix + "data", matrix.data),
                "idx": _pool(pools, prefix + "idx", matrix.indices),
                "ptr": _pool(pools, prefix + "ptr", matrix.indptr),
                "nnz": int(matrix.nnz),
            }
        )
    return manifest


def pool_vectors(pools, prefix, entries):
    """Append each dense vector to its dtype pool; returns manifest entries."""
    return [
        {"p": key, "dtype": _pool(pools, prefix, vector), "len": len(vector)}
        for key, vector in entries
    ]


def _pool(pools, prefix, buffer):
    key = "{}_{}".format(prefix, buffer.dtype)
    pools.setdefault(key, []).append(buffer)
    return str(buffer.dtype)


class PoolReader:
    """Sequentially slice per-entry buffers back out of pooled arrays.

    ``arrays`` is any mapping from pool key (``mdata_float64``, ...) to
    a 1-D ndarray — an ``np.load`` archive or a dict of shared-memory
    views.  Entries must be taken in the order they were pooled; a
    short pool raises ``ValueError`` (callers map it to their own
    corruption error).
    """

    def __init__(self, arrays):
        self._arrays = arrays
        self._pools = {}
        self._offsets = {}

    def take(self, prefix, dtype, count):
        key = "{}_{}".format(prefix, dtype)
        if key not in self._pools:
            self._pools[key] = self._arrays[key]
            self._offsets[key] = 0
        start = self._offsets[key]
        self._offsets[key] = start + count
        chunk = self._pools[key][start : start + count]
        if len(chunk) != count:
            # repro-lint: ok(exception-taxonomy) internal control flow; callers convert it to SnapshotError/ShmError
            raise ValueError("pool {} exhausted at {}".format(key, start))
        return chunk


def unpool_matrices(reader, manifest_entries, prefix, n):
    """``[(key, csr)]`` rebuilt from pooled buffers without validation."""
    return [
        (
            entry["p"],
            CommutingMatrixEngine._fast_csr(
                reader.take(prefix + "data", entry["data"], entry["nnz"]),
                reader.take(prefix + "idx", entry["idx"], entry["nnz"]),
                reader.take(prefix + "ptr", entry["ptr"], n + 1),
                n,
            ),
        )
        for entry in manifest_entries
    ]


def unpool_vectors(reader, manifest_entries, prefix):
    """``[(key, vector)]`` sliced back out of the pooled arrays."""
    return [
        (entry["p"], reader.take(prefix, entry["dtype"], entry["len"]))
        for entry in manifest_entries
    ]


def _session_of(source):
    if isinstance(source, SimilarityService):
        return source.session, source.version
    if isinstance(source, SimilaritySession):
        return source, None
    raise TypeError(
        "save_snapshot takes a SimilarityService or SimilaritySession, "
        "got {!r}".format(source)
    )


def save_snapshot(path, source):
    """Write ``source``'s serving state to ``path`` atomically.

    ``source`` is a :class:`SimilarityService` (its current snapshot is
    saved) or a bare :class:`SimilaritySession`.  Everything needed for
    a warm start goes into one ``.npz``: the database (JSON), every
    cached commuting matrix (CSR buffers keyed by canonical pattern
    text), and the cached column norms / diagonals.  Returns a stats
    dict (``matrices`` / ``column_norms`` / ``diagonals`` entry counts,
    ``nnz``, ``bytes`` written).
    """
    session, service_version = _session_of(source)
    state = session.engine.export_cache()
    database = session.database
    pools = {}
    matrices = pool_matrices(pools, "m", state["matrices"])
    nnz = sum(entry["nnz"] for entry in matrices)
    column_norms = pool_vectors(pools, "norm", state["column_norms"])
    diagonals = pool_vectors(pools, "diag", state["diagonals"])
    manifest = {
        "magic": _MAGIC,
        "format": SNAPSHOT_FORMAT,
        "saved_at": time.time(),
        "service_version": service_version,
        "num_nodes": database.num_nodes(),
        "num_edges": database.num_edges(),
        "matrices": matrices,
        "column_norms": column_norms,
        "diagonals": diagonals,
    }
    arrays = {
        "manifest": np.array(json.dumps(manifest)),
        "database": np.array(database_to_json(database)),
    }
    for key, buffers in pools.items():
        arrays[key] = np.concatenate(buffers)

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            # np.savez appends ".npz" to bare paths; a file object keeps
            # the name exactly as given and lets the rename be atomic.
            np.savez(handle, **arrays)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return {
        "matrices": len(state["matrices"]),
        "column_norms": len(state["column_norms"]),
        "diagonals": len(state["diagonals"]),
        "nnz": int(nnz),
        "bytes": os.path.getsize(path),
    }


def _read_manifest(archive, path):
    try:
        manifest = json.loads(str(archive["manifest"]))
    except (KeyError, ValueError) as error:
        raise SnapshotError(
            "{}: not a repro serving snapshot ({})".format(path, error)
        ) from error
    if not isinstance(manifest, dict) or manifest.get("magic") != _MAGIC:
        raise SnapshotError(
            "{}: not a repro serving snapshot".format(path)
        )
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            "{}: snapshot format {} is not supported (this build reads "
            "format {})".format(path, manifest.get("format"), SNAPSHOT_FORMAT)
        )
    return manifest


def load_session(path, **session_options):
    """Rebuild a warm :class:`SimilaritySession` from a snapshot file.

    Returns ``(session, info)`` where ``info`` carries the manifest
    metadata plus the preload counts (``matrices`` / ``column_norms``
    / ``diagonals`` installed, ``skipped``).  Raises
    :class:`~repro.exceptions.SnapshotError` on a missing, foreign,
    corrupt, or wrong-format file.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except FileNotFoundError as error:
        raise SnapshotError(
            "{}: no such snapshot file".format(path)
        ) from error
    except (OSError, ValueError, zipfile.BadZipFile) as error:
        raise SnapshotError(
            "{}: unreadable snapshot ({})".format(path, error)
        ) from error
    with archive:
        manifest = _read_manifest(archive, path)
        try:
            database = database_from_json(str(archive["database"]))
            session = SimilaritySession(database, **session_options)
            n = session.view.num_nodes()
            reader = PoolReader(archive)
            matrices = unpool_matrices(reader, manifest["matrices"], "m", n)
            column_norms = unpool_vectors(
                reader, manifest["column_norms"], "norm"
            )
            diagonals = unpool_vectors(reader, manifest["diagonals"], "diag")
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotError(
                "{}: corrupt snapshot payload ({})".format(path, error)
            ) from error
    loaded = session.engine.preload(
        matrices, column_norms=column_norms, diagonals=diagonals
    )
    info = {
        "saved_at": manifest["saved_at"],
        "service_version": manifest["service_version"],
        "num_nodes": manifest["num_nodes"],
        "num_edges": manifest["num_edges"],
    }
    info.update(loaded)
    return session, info


def load_service(path, incremental_threshold=None, **session_options):
    """A warm :class:`SimilarityService` straight from a snapshot file.

    The loaded session is adopted as the service's first snapshot
    (version 1) — no copy, no rebuild: the session is private by
    construction.  Returns ``(service, info)`` like
    :func:`load_session`.  Checkpointing back to the same file is the
    caller's choice — wire it with ``service.checkpoint =
    lambda svc, version: save_snapshot(path, svc)``.
    """
    session, info = load_session(path, **session_options)
    options = {}
    if incremental_threshold is not None:
        options["incremental_threshold"] = incremental_threshold
    service = SimilarityService(
        session=session, **dict(session_options, **options)
    )
    return service, info
