"""Micro-batching queue: coalesce concurrent top-k requests into one run.

The batch scoring path (PR 2) answers ``B`` queries with one sparse row
slice per pattern, so a batch of concurrent requests costs barely more
than a single one — but HTTP delivers requests one at a time.  The
:class:`CoalescingBatcher` closes that gap on the event loop: the first
request for a prepared query opens a *window* (a few milliseconds);
every request arriving inside it joins the batch; when the window
closes (or the batch hits ``max_batch``), the whole batch executes as
one :meth:`~repro.api.prepared.PreparedQuery.run_many` call on a worker
thread and each request's future resolves with its own ranking.

Semantics guarantees:

* **Identity** — ``run_many`` is contractually identical to per-node
  ``run`` (the PR-2 array-native gate), so coalescing never changes a
  response, only its latency profile.
* **Error isolation** — a batch that raises (one unknown node, say) is
  retried per node, so a poisoned request fails alone; its neighbors
  in the batch still get their rankings.
* **Mixed options** — requests with different ``top_k`` values batch
  separately (one ``run_many`` per distinct value); the common serving
  case (everyone on the prepared default) stays a single call.

The batcher is event-loop-bound: ``submit`` must be awaited on the loop
that owns the batcher (the server's), which makes the pending-list
manipulation race-free without locks.
"""

import asyncio
from functools import partial

from repro.exceptions import ConfigurationError

#: "Use the prepared query's default top_k" — distinct from None, which
#: explicitly requests the full ranking.
PREPARED_DEFAULT = object()


class CoalescingBatcher:
    """Coalesce concurrent requests for one prepared query.

    Parameters
    ----------
    prepared:
        The :class:`~repro.api.prepared.PreparedQuery` (or any object
        with ``run(node, top_k=...)`` / ``run_many(nodes, top_k=...)``)
        that executes batches.  Service-issued handles stay valid
        across live updates, so the batcher never needs rebinding.
        With process-parallel serving the server hands a
        :class:`~repro.server.workers.WorkerPool` here instead — its
        ``run_many`` shards each coalesced batch across worker
        processes, so coalescing *compounds* with multi-core
        parallelism rather than serializing behind one GIL.
    window:
        Seconds the first request of a batch waits for company.  ``0``
        still coalesces whatever arrives during the same event-loop
        pass (the sleep yields once), giving adaptive batching under
        load with no idle latency tax.
    max_batch:
        Flush immediately once this many requests are pending.
    executor:
        The :class:`~concurrent.futures.Executor` batches run on
        (``None`` = the loop's default).
    """

    def __init__(self, prepared, window=0.002, max_batch=64, executor=None):
        if window < 0:
            raise ConfigurationError(
                "window must be >= 0, got {}".format(window)
            )
        if max_batch < 1:
            raise ConfigurationError(
                "max_batch must be >= 1, got {}".format(max_batch)
            )
        self._prepared = prepared
        self._window = window
        self._max_batch = max_batch
        self._executor = executor
        self._pending = []  # [(node, top_k, future)]
        self._flusher = None  # the window timer task, when a batch is open
        self._stats = {
            "requests": 0,
            "batches": 0,
            "largest_batch": 0,
            "isolated_errors": 0,
            "fallback_nodes": 0,
        }

    @property
    def queued(self):
        """Requests waiting for the current window to close."""
        return len(self._pending)

    def stats(self):
        """Counters: requests, batches, largest_batch, isolated_errors,
        and fallback_nodes (requests re-run alone after a batch failed).
        """
        return dict(self._stats)

    async def submit(self, node, top_k=PREPARED_DEFAULT):
        """The ranking for ``node``, batched with concurrent submitters."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append((node, top_k, future))
        self._stats["requests"] += 1
        if len(self._pending) >= self._max_batch:
            self._flush()
        elif self._flusher is None:
            self._flusher = loop.create_task(self._close_window())
        return await future

    async def _close_window(self):
        await asyncio.sleep(self._window)
        # Run the batch on this already-scheduled task instead of
        # spawning another; submit() resets self._flusher so a new
        # window can open while this batch executes.
        self._flusher = None
        batch, self._pending = self._pending, []
        if batch:
            await self._run_batch(batch)

    def _flush(self):
        if self._flusher is not None:
            self._flusher.cancel()
            self._flusher = None
        batch, self._pending = self._pending, []
        if batch:
            asyncio.get_running_loop().create_task(self._run_batch(batch))

    async def _run_batch(self, batch):
        self._stats["batches"] += 1
        self._stats["largest_batch"] = max(
            self._stats["largest_batch"], len(batch)
        )
        groups = {}
        for node, top_k, future in batch:
            groups.setdefault(top_k, []).append((node, future))
        for top_k, entries in groups.items():
            await self._run_group(top_k, entries)

    async def _run_group(self, top_k, entries):
        loop = asyncio.get_running_loop()
        nodes = [node for node, _ in entries]
        kwargs = {} if top_k is PREPARED_DEFAULT else {"top_k": top_k}
        try:
            rankings = await loop.run_in_executor(
                self._executor,
                partial(self._prepared.run_many, nodes, **kwargs),
            )
        except Exception:
            # One bad node must not poison its batch neighbors: retry
            # each request alone so exactly the failing ones fail.
            self._stats["fallback_nodes"] += len(entries)
            await asyncio.gather(
                *(
                    self._run_single(node, kwargs, future)
                    for node, future in entries
                )
            )
            return
        for node, future in entries:
            if not future.cancelled():
                future.set_result(rankings[node])

    async def _run_single(self, node, kwargs, future):
        loop = asyncio.get_running_loop()
        try:
            ranking = await loop.run_in_executor(
                self._executor,
                partial(self._prepared.run, node, **kwargs),
            )
        except Exception as error:
            self._stats["isolated_errors"] += 1
            if not future.cancelled():
                future.set_exception(error)
        else:
            if not future.cancelled():
                future.set_result(ranking)
