"""Shared-memory snapshot publication: one segment, N zero-copy readers.

The GIL makes thread-parallel serving a wash (the ``serving_concurrent``
benchmark measured 8 threads at 0.83x a single thread), so the process
worker pool (:mod:`repro.server.workers`) moves execution into separate
interpreters.  What makes that cheap is this module: the parent
publishes each engine snapshot's immutable numeric state — adjacency
CSR buffers, cached plan-DAG product buffers, diagonals, column norms,
in the same pooled-array layout :mod:`repro.server.snapshot` writes to
``.npz`` — into one ``multiprocessing.shared_memory`` segment, and each
worker maps the segment and reconstructs every matrix as a
``memoryview``-backed ndarray.  Nothing numeric is ever pickled or
copied: a worker's "load" is an mmap plus slicing.

Publication protocol (the service's atomic version/swap, extended
cross-process):

* the parent is the **sole writer**: a segment is fully written before
  its manifest (a plain dict carrying the layout) is handed to anyone,
  and never written again — readers cannot observe a torn state;
* each ``apply``/``swap`` publishes a *new* segment under the next
  version; workers adopt it at a request boundary and confirm; only
  after every worker confirms does the parent unlink the old segment;
* every segment this process creates is tracked by the
  :class:`SegmentRegistry`, whose atexit/SIGTERM reaper unlinks
  leftovers on any exit path — no leaked ``/dev/shm`` entries even on
  a crash-shutdown.  (``tools/lint_repro.py``'s ``shm-lifecycle`` rule
  keeps the registry the only ``SharedMemory(create=True)`` site.)

Attach-side footnote: before Python 3.13 there is no ``track=False``,
so merely *attaching* a segment registers it with the worker's
``resource_tracker`` — which would unlink the parent's live segment
when the worker exits.  :func:`attach_segment` immediately unregisters
the attachment, restoring "creator owns the lifetime" semantics.
"""

import atexit
import gc
import os
import signal
import threading

import numpy as np
from multiprocessing import shared_memory

from repro.api.session import SimilaritySession
from repro.exceptions import SnapshotError
from repro.graph.io import database_from_json, database_to_json
from repro.server.snapshot import (
    PoolReader,
    pool_matrices,
    pool_vectors,
    unpool_matrices,
    unpool_vectors,
)

#: Manifest format version; readers refuse manifests they do not know.
SHM_FORMAT = 1

#: Buffer offsets inside a segment are aligned to this many bytes, so
#: every reconstructed ndarray is alignment-safe for its dtype (and
#: cache-line friendly).
_ALIGN = 64


def _aligned(offset):
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SegmentRegistry:
    """Every shared-memory segment this process created, with a reaper.

    The single chokepoint for segment lifetime: :meth:`create` is the
    repo's only allowed ``SharedMemory(create=True)`` call site (the
    ``shm-lifecycle`` lint rule enforces it), so a segment cannot exist
    without being registered for cleanup.  ``atexit`` unlinks whatever
    is still registered; a SIGTERM reaper is installed too when no
    other handler claimed the signal (``repro serve`` installs its own
    graceful handler first, which drains and unlinks explicitly).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._segments = {}
        self._installed = False

    def create(self, size):
        """A new registered segment of ``size`` bytes (kernel-named)."""
        segment = shared_memory.SharedMemory(create=True, size=max(size, 1))
        with self._lock:
            self._segments[segment.name] = segment
            self._install_reaper_locked()
        return segment

    def names(self):
        """Names of the segments currently registered (for tests/stats)."""
        with self._lock:
            return sorted(self._segments)

    def owns(self, name):
        """Whether this registry created (and still tracks) ``name``."""
        with self._lock:
            return name in self._segments

    def unlink(self, name):
        """Close and unlink one segment; silently ignores unknown names."""
        with self._lock:
            segment = self._segments.pop(name, None)
        if segment is None:
            return False
        for release in (segment.close, segment.unlink):
            try:
                release()
            except (BufferError, FileNotFoundError, OSError):
                pass
        return True

    def unlink_all(self):
        """Unlink every registered segment (the reaper's whole job)."""
        for name in self.names():
            self.unlink(name)

    def _install_reaper_locked(self):
        if self._installed:
            return
        self._installed = True
        atexit.register(self.unlink_all)
        # Claim SIGTERM only when nobody else has: a plain `kill` must
        # not leak /dev/shm entries, but an application handler (the
        # serve loop's graceful drain) owns shutdown when present.
        try:
            if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
                signal.signal(signal.SIGTERM, self._reap_signal)
        except (ValueError, OSError):
            pass  # not the main thread, or no signal support

    def _reap_signal(self, signum, frame):
        self.unlink_all()
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


#: The process-wide registry every publisher goes through.
REGISTRY = SegmentRegistry()


def attach_segment(name, untrack=True):
    """Attach an existing segment *without* adopting its lifetime.

    With ``untrack`` (the default) this undoes the attach-side
    ``resource_tracker`` registration (see the module docstring): the
    creating process owns unlinking, and a foreign reader exiting must
    never tear a segment out from under its siblings.  Pool workers
    pass ``untrack=False``: spawn children *share* the parent's tracker
    process, whose per-name cache is a set — a worker's unregister
    would annihilate the parent's own registration and turn the
    eventual ``unlink()`` into a tracker underflow.
    """
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as error:
        raise SnapshotError(
            "shared-memory segment {!r} is gone (publisher exited or "
            "already unlinked it)".format(name)
        ) from error
    # Same-process attach (tests, the in-process serving path) likewise
    # keeps the creator's one registration.
    if untrack and not REGISTRY.owns(name):
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(segment, "_name", "/" + name), "shared_memory"
            )
        except Exception:
            pass  # tracker internals moved; worst case is a spurious warning
    return segment


def publish_session(session, version, registry=None):
    """Write ``session``'s engine state into a fresh segment.

    Returns the manifest dict a reader needs for :func:`attach_session`:
    segment name, pooled-buffer layout (dtype/count/offset per pool),
    the database JSON's extent, and the same per-entry manifests the
    ``.npz`` snapshot stores — plus ``version`` so workers can report
    which snapshot they serve.  The segment is complete before this
    function returns; handing the manifest to a reader is what
    publishes it.
    """
    registry = REGISTRY if registry is None else registry
    state = session.engine.export_shm()
    database_bytes = database_to_json(session.database).encode("utf-8")
    pools = {}
    adjacency = pool_matrices(pools, "a", state["adjacency"])
    matrices = pool_matrices(pools, "m", state["matrices"])
    column_norms = pool_vectors(pools, "norm", state["column_norms"])
    diagonals = pool_vectors(pools, "diag", state["diagonals"])
    arrays = {
        key: np.concatenate(buffers) if len(buffers) > 1 else buffers[0]
        for key, buffers in pools.items()
    }

    layout = {}
    offset = 0
    for key in sorted(arrays):
        offset = _aligned(offset)
        array = arrays[key]
        layout[key] = {
            "dtype": str(array.dtype),
            "count": int(len(array)),
            "offset": offset,
        }
        offset += array.nbytes
    offset = _aligned(offset)
    database_offset = offset
    offset += len(database_bytes)

    segment = registry.create(offset)
    for key, entry in layout.items():
        destination = np.frombuffer(
            segment.buf,
            dtype=entry["dtype"],
            count=entry["count"],
            offset=entry["offset"],
        )
        destination[:] = arrays[key]
    end = database_offset + len(database_bytes)
    segment.buf[database_offset:end] = database_bytes

    return {
        "format": SHM_FORMAT,
        "segment": segment.name,
        "version": version,
        "num_nodes": state["num_nodes"],
        "database": {"offset": database_offset, "length": len(database_bytes)},
        "pools": layout,
        "adjacency": adjacency,
        "matrices": matrices,
        "column_norms": column_norms,
        "diagonals": diagonals,
    }


class AttachedSession:
    """A session whose engine state lives in someone else's segment.

    Holds the :class:`SharedMemory` mapping alive for as long as the
    session's matrices are in use (a numpy view does not keep the
    mapping open by itself).  :meth:`close` drops the session and
    unmaps; it never unlinks — lifetime belongs to the publisher.
    """

    def __init__(self, session, segment, version, loaded):
        self.session = session
        self.version = version
        self.loaded = loaded
        self._segment = segment

    def close(self):
        """Drop the session and unmap the segment (best effort).

        CPython refuses to unmap while any exported buffer is alive
        (``BufferError``); after dropping our references and collecting,
        a still-pinned mapping (e.g. a caller kept a ranking around) is
        simply left for process exit — harmless, it is just an mmap.
        """
        self.session = None
        self.loaded = None
        segment, self._segment = self._segment, None
        if segment is None:
            return
        gc.collect()
        try:
            segment.close()
        except BufferError:
            # Some caller still pins a view into the mapping; leave the
            # mmap to process exit and stop __del__ from retrying (the
            # retry would just re-raise into an "ignored exception").
            segment._buf = None
            segment._mmap = None


def attach_session(manifest, untrack=True, **session_options):
    """Rebuild a read-only serving session over a published segment.

    The cross-process sibling of :func:`repro.server.snapshot.load_session`:
    the database is parsed from the segment's JSON extent, and every
    matrix/vector is reconstructed as a read-only view over the mapped
    buffer — zero copies, no pickling.  ``untrack`` forwards to
    :func:`attach_segment`.  Returns an :class:`AttachedSession`.
    """
    if not isinstance(manifest, dict) or manifest.get("format") != SHM_FORMAT:
        raise SnapshotError(
            "unsupported shared-memory manifest (format {!r}; this build "
            "reads format {})".format(
                manifest.get("format") if isinstance(manifest, dict) else None,
                SHM_FORMAT,
            )
        )
    segment = attach_segment(manifest["segment"], untrack=untrack)
    try:
        arrays = {}
        for key, entry in manifest["pools"].items():
            view = np.frombuffer(
                segment.buf,
                dtype=entry["dtype"],
                count=entry["count"],
                offset=entry["offset"],
            )
            view.flags.writeable = False
            arrays[key] = view
        extent = manifest["database"]
        start, end = extent["offset"], extent["offset"] + extent["length"]
        database = database_from_json(bytes(segment.buf[start:end]).decode("utf-8"))
        session = SimilaritySession(database, **session_options)
        n = session.view.num_nodes()
        reader = PoolReader(arrays)
        state = {
            "adjacency": unpool_matrices(reader, manifest["adjacency"], "a", n),
            "matrices": unpool_matrices(reader, manifest["matrices"], "m", n),
            "column_norms": unpool_vectors(
                reader, manifest["column_norms"], "norm"
            ),
            "diagonals": unpool_vectors(reader, manifest["diagonals"], "diag"),
        }
        loaded = session.engine.attach_shm(state)
    except (KeyError, TypeError, ValueError) as error:
        try:
            segment.close()
        except BufferError:
            segment._buf = None
            segment._mmap = None
        raise SnapshotError(
            "corrupt shared-memory manifest/segment ({})".format(error)
        ) from error
    return AttachedSession(session, segment, manifest["version"], loaded)
