"""``repro serve`` — an asyncio HTTP/JSON front-end over the service.

Stdlib only: one event loop accepts connections and parses HTTP/1.1,
similarity work runs on a small thread pool (the scoring path is
NumPy-bound and releases the GIL), and concurrent ``/query`` requests
coalesce through :class:`~repro.server.batching.CoalescingBatcher` into
single ``run_many`` calls.

Operational behavior:

* **Backpressure** — at most ``max_inflight`` requests are in flight;
  beyond that the server answers ``503`` with ``Retry-After`` instead
  of queueing unboundedly.  It never hangs and never drops a
  connection silently.  ``/healthz`` and ``/statz`` are exempt so an
  operator can always see inside a saturated server.
* **Live updates** — ``POST /apply`` routes a delta through
  :meth:`SimilarityService.apply` (incremental when small); a failed
  delta returns an error and leaves the served snapshot and version
  untouched.
* **Standing queries** — ``POST /subscribe`` upgrades the connection
  to a Server-Sent-Events stream: the subscription's initial snapshot
  ranking arrives first, then one ``update`` event per ranking change
  (see :meth:`SimilarityService.subscribe`).  Each stream's writes
  await ``drain()``, so a slow subscriber backpressures only its own
  connection; a subscriber that stops reading long enough to overflow
  its event buffer is disconnected rather than buffered unboundedly.
* **Durability** — with a ``snapshot_path``, the service's checkpoint
  hook re-saves the serving snapshot after every successful apply, so
  a restart warm-starts from the last published state.

Endpoints (JSON in, JSON out; see :mod:`repro.server.protocol` for
payload shapes): ``POST /query``, ``POST /rank_many``, ``POST
/apply``, ``POST /subscribe`` (SSE out), ``GET|POST /explain``,
``GET /healthz``, ``GET /statz``.
"""

import asyncio
import concurrent.futures
import math
import signal
import threading
import time
from functools import partial
from http.client import responses as _REASONS

from repro.exceptions import ConfigurationError
from repro.server import protocol
from repro.server.batching import PREPARED_DEFAULT, CoalescingBatcher
from repro.server.protocol import HttpError

#: Request bodies larger than this are refused with 413 — similarity
#: payloads are node ids and edge triples, never megabytes.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Flush threshold for response writes.  Responses are written without
#: awaiting ``drain()`` (the per-response coroutine hop costs more than
#: the entire canned write on the hot path); the transport buffers, and
#: only a genuinely backed-up connection (slow reader) forces a drain.
_WRITE_HIGH_WATER = 64 * 1024


class _EventStream:
    """A handler's signal that the response is an SSE stream.

    ``_handle_subscribe`` returns one of these instead of a JSON
    payload; ``_handle_one`` spots it and hands the connection over to
    ``_stream_events``.  ``queue`` is loop-bound and fed by the
    subscription callback via ``call_soon_threadsafe``; ``overflowed``
    flips when the queue was full at delivery time, after which the
    stream closes (the client's maintained ranking could be stale).
    """

    __slots__ = ("subscription", "queue", "overflowed")

    def __init__(self, subscription, queue):
        self.subscription = subscription
        self.queue = queue
        self.overflowed = False


class ReproServer:
    """Serve a :class:`SimilarityService` + prepared query over HTTP.

    Parameters
    ----------
    service:
        The :class:`~repro.api.service.SimilarityService` behind
        ``/apply``, ``/healthz``, ``/statz``.
    prepared:
        The service-issued :class:`~repro.api.prepared.PreparedQuery`
        answering ``/query`` and ``/rank_many`` (the service re-binds
        it on every swap, so the server never touches it on update).
    host, port:
        Bind address.  ``port=0`` picks a free port; the bound port is
        in :attr:`port` once serving.
    coalesce, coalesce_window, max_batch:
        Request-coalescing controls (see
        :class:`~repro.server.batching.CoalescingBatcher`);
        ``coalesce=False`` runs every ``/query`` as its own
        ``run`` call — the serial baseline the coalescing benchmark
        gates against.
    max_inflight:
        Bound on concurrently handled requests; excess gets 503 with a
        ``Retry-After`` derived from the current congestion.
    max_subscribers:
        Bound on concurrent ``/subscribe`` SSE streams (each pins a
        connection and a live subscription); excess gets 503.
    threads:
        Worker threads for similarity execution.
    workers:
        Process workers (default 0 = execute in-process on ``threads``).
        With ``N > 0`` the server publishes each snapshot into shared
        memory and dispatches ``/query``/``/rank_many`` to a
        :class:`~repro.server.workers.WorkerPool` of ``N`` spawned
        interpreters — GIL-free parallelism with bitwise-identical
        results.  Live updates still go through the service in this
        process; every publication migrates the workers atomically.
    snapshot_path:
        When set, the service checkpoints to this file after every
        successful apply/swap (atomic replace).
    """

    def __init__(
        self,
        service,
        prepared,
        host="127.0.0.1",
        port=8321,
        coalesce=True,
        coalesce_window=0.002,
        max_batch=64,
        max_inflight=64,
        max_subscribers=32,
        threads=4,
        workers=0,
        snapshot_path=None,
    ):
        if max_inflight < 1:
            raise ConfigurationError(
                "max_inflight must be >= 1, got {}".format(max_inflight)
            )
        if max_subscribers < 0:
            raise ConfigurationError(
                "max_subscribers must be >= 0, got {}".format(max_subscribers)
            )
        if workers < 0:
            raise ConfigurationError(
                "workers must be >= 0, got {}".format(workers)
            )
        self.service = service
        self.prepared = prepared
        self.host = host
        self.port = port
        self.snapshot_path = snapshot_path
        self._coalesce = coalesce
        self._coalesce_window = coalesce_window
        self._max_batch = max_batch
        self._max_inflight = max_inflight
        self._max_subscribers = max_subscribers
        self._sse_active = 0
        self._workers = workers
        self._pool = None
        self._unregister_publish = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            # Every blocked pool dispatch occupies a thread, so the
            # executor must never have fewer threads than workers or
            # the pool idles behind the thread pool it feeds.
            max_workers=max(threads, workers),
            thread_name_prefix="repro-serve",
        )
        self._batcher = None  # built on the serving loop
        self._loop = None
        self._shutdown = None
        self._connections = set()
        self._inflight = 0
        self._started_at = time.monotonic()
        self._stats = {"requests": 0, "rejected": 0, "errors": 0}
        self._routes = {
            "/query": (("POST",), self._handle_query),
            "/rank_many": (("POST",), self._handle_rank_many),
            "/apply": (("POST",), self._handle_apply),
            "/subscribe": (("POST",), self._handle_subscribe),
            "/explain": (("GET", "POST"), self._handle_explain),
            "/healthz": (("GET",), self._handle_healthz),
            "/statz": (("GET",), self._handle_statz),
        }
        if snapshot_path is not None:
            from repro.server.snapshot import save_snapshot

            service.checkpoint = lambda svc, version: save_snapshot(
                snapshot_path, svc
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(self, started=None):
        """Serve until :meth:`request_shutdown`; the server coroutine.

        ``started`` (if given) is called once the socket is bound —
        :class:`BackgroundServer` uses it to unblock its ``__enter__``.
        """
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self._workers and self._pool is None:
            # Boot the process pool before accepting connections: spawn
            # + zero-copy attach happen once, off the serving path, and
            # a pool that cannot boot fails startup loudly.
            from repro.server.workers import WorkerPool

            self._pool = WorkerPool(
                self.prepared.export_spec(),
                self.service.session,
                version=self.service.version,
                workers=self._workers,
            )
            self._unregister_publish = self.service.on_publish(
                self._pool.publish
            )
        if self._coalesce:
            self._batcher = CoalescingBatcher(
                self._query_target,
                window=self._coalesce_window,
                max_batch=self._max_batch,
                executor=self._executor,
            )
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if started is not None:
            started()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            # Keep-alive connections idle in readline() would outlive
            # the loop; cancel them so shutdown is prompt and clean.
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(
                    *self._connections, return_exceptions=True
                )
            # Drain order matters: the executor finishes in-flight
            # dispatches (which may be blocked on worker answers), and
            # only then do the workers stop and their segments unlink.
            self._executor.shutdown(wait=True)
            if self._unregister_publish is not None:
                self._unregister_publish()
                self._unregister_publish = None
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def serve_forever(self):
        """Run the server on a fresh loop until SIGTERM/SIGINT.

        Prints the bound address (the line scripts parse for the
        port); returns once shutdown completes.
        """

        async def main():
            def announce():
                print(
                    "serving repro on http://{}:{} (snapshot version "
                    "{})".format(self.host, self.port, self.service.version),
                    flush=True,
                )

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without loop signal support
            await self.serve(started=announce)

        asyncio.run(main())

    def request_shutdown(self):
        """Ask the serving loop to stop; safe from any thread."""
        loop = self._loop
        if loop is None or self._shutdown is None:
            return
        loop.call_soon_threadsafe(self._shutdown.set)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer):
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while not self._shutdown.is_set():
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
            ConnectionError,
        ):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _handle_one(self, reader, writer):
        """Serve one request; returns whether to keep the connection.

        The whole header block is read with a single ``readuntil`` —
        per-line reads cost one event-loop hop each, and on the hot
        path the loop thread *is* the throughput budget.
        """
        try:
            block = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if error.partial:
                await self._respond(
                    writer, 400, {"error": "truncated request"}, {}, False
                )
            return False
        except asyncio.LimitOverrunError:
            await self._respond(
                writer, 431, {"error": "request headers too large"}, {},
                False,
            )
            return False
        lines = block[:-4].decode("latin-1").split("\r\n")
        try:
            method, target, http_version = lines[0].split()
        except ValueError:
            await self._respond(
                writer, 400, {"error": "malformed request line"}, {}, False
            )
            return False
        length = 0
        connection = ""
        for line in lines[1:]:
            name, _, value = line.partition(":")
            name = name.lower()
            if name == "content-length":
                try:
                    length = int(value)
                except ValueError:
                    length = -1
            elif name == "connection":
                connection = value.strip().lower()
        if length < 0:
            await self._respond(
                writer, 400, {"error": "bad Content-Length"}, {}, False
            )
            return False
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer,
                413,
                {
                    "error": "request body of {} bytes exceeds the {} "
                    "byte limit".format(length, MAX_BODY_BYTES)
                },
                {},
                False,
            )
            return False
        body = await reader.readexactly(length) if length else b""
        keep_alive = (
            http_version == "HTTP/1.1" and connection != "close"
        )
        path = target.split("?", 1)[0]
        status, payload, extra = await self._serve_request(method, path, body)
        if isinstance(payload, _EventStream):
            # The connection now belongs to the event stream; it never
            # returns to request parsing (SSE is one response that
            # stays open until either side hangs up).
            await self._stream_events(writer, payload)
            return False
        await self._respond(writer, status, payload, extra, keep_alive)
        return keep_alive

    def _retry_after(self):
        """Seconds a rejected client should wait, from congestion depth.

        Rejection caps ``_inflight`` at ``max_inflight``, so sustained
        overload shows up as work queued *behind* the cap — the
        batcher's open window.  Estimate one generation of
        ``max_inflight`` requests per second and clamp to [1, 8]: a
        barely-saturated server invites a quick retry, a deeply backed
        up one pushes the herd further out instead of re-absorbing it
        immediately.
        """
        backlog = self._inflight
        if self._batcher is not None:
            backlog += self._batcher.queued
        generations = math.ceil(backlog / self._max_inflight)
        return str(max(1, min(8, generations)))

    async def _serve_request(self, method, path, body):
        """Route + backpressure + error mapping -> (status, payload, hdrs)."""
        self._stats["requests"] += 1
        route = self._routes.get(path)
        if route is None:
            return 404, {"error": "no such endpoint: {}".format(path)}, {}
        methods, handler = route
        if method not in methods:
            return (
                405,
                {"error": "{} does not allow {}".format(path, method)},
                {"Allow": ", ".join(methods)},
            )
        introspection = path in ("/healthz", "/statz")
        if not introspection and self._inflight >= self._max_inflight:
            self._stats["rejected"] += 1
            return (
                503,
                {
                    "error": "server saturated ({} requests in "
                    "flight)".format(self._inflight),
                },
                {"Retry-After": self._retry_after()},
            )
        self._inflight += 1
        try:
            payload = protocol.parse_body(body)
            return 200, await handler(payload), {}
        except Exception as error:
            status, payload, extra = protocol.error_response(error)
            if status >= 500:
                self._stats["errors"] += 1
            return status, payload, extra
        finally:
            self._inflight -= 1

    async def _respond(self, writer, status, payload, headers, keep_alive):
        body = protocol.encode_json(payload)
        reason = _REASONS.get(status, "Unknown")
        lines = [
            "HTTP/1.1 {} {}".format(status, reason),
            "Content-Type: application/json",
            "Content-Length: {}".format(len(body)),
            "Connection: {}".format("keep-alive" if keep_alive else "close"),
        ]
        for name, value in headers.items():
            lines.append("{}: {}".format(name, value))
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        if writer.transport.get_write_buffer_size() > _WRITE_HIGH_WATER:
            await writer.drain()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _run_blocking(self, func, *args, **kwargs):
        return self._loop.run_in_executor(
            self._executor, partial(func, *args, **kwargs)
        )

    @property
    def _query_target(self):
        """Who executes ``/query``/``/rank_many``: the pool, else in-process."""
        return self._pool if self._pool is not None else self.prepared

    def _requested_top_k(self, payload):
        # Three-valued: absent -> the prepared default; present and
        # null -> explicitly the full ranking; present -> that cutoff.
        if "top_k" not in payload:
            return PREPARED_DEFAULT
        return protocol.optional_int(payload, "top_k")

    async def _handle_query(self, payload):
        node = protocol.require_str(payload, "node")
        top_k = self._requested_top_k(payload)
        if self._batcher is not None:
            ranking = await self._batcher.submit(node, top_k)
        elif top_k is PREPARED_DEFAULT:
            ranking = await self._run_blocking(self._query_target.run, node)
        else:
            ranking = await self._run_blocking(
                self._query_target.run, node, top_k=top_k
            )
        return {
            "node": node,
            "version": self.service.version,
            "ranking": protocol.ranking_payload(ranking),
        }

    async def _handle_rank_many(self, payload):
        nodes = protocol.string_list(payload, "nodes", required=True)
        if not nodes:
            raise HttpError(400, "field 'nodes' must not be empty")
        top_k = self._requested_top_k(payload)
        if top_k is PREPARED_DEFAULT:
            rankings = await self._run_blocking(
                self._query_target.run_many, nodes
            )
        else:
            rankings = await self._run_blocking(
                self._query_target.run_many, nodes, top_k=top_k
            )
        return {
            "version": self.service.version,
            "rankings": {
                node: protocol.ranking_payload(rankings[node])
                for node in rankings
            },
        }

    async def _handle_apply(self, payload):
        edges_added = protocol.edge_list(payload, "edges_added")
        edges_removed = protocol.edge_list(payload, "edges_removed")
        nodes_added = protocol.node_list(payload, "nodes_added")
        if not (edges_added or edges_removed or nodes_added):
            raise HttpError(400, "empty delta: nothing to apply")
        incremental = payload.get("incremental")
        if incremental is not None and not isinstance(incremental, bool):
            raise HttpError(400, "field 'incremental' must be a boolean")
        version = await self._run_blocking(
            self.service.apply,
            edges_added=edges_added,
            edges_removed=edges_removed,
            nodes_added=nodes_added,
            incremental=incremental,
        )
        return {
            "version": version,
            "path": self.service.delta_stats["last_path"],
        }

    async def _handle_subscribe(self, payload):
        node = protocol.require_str(payload, "node")
        top_k = self._requested_top_k(payload)
        if self._sse_active >= self._max_subscribers:
            raise HttpError(
                503,
                "subscriber limit reached ({} active streams)".format(
                    self._sse_active
                ),
                {"Retry-After": self._retry_after()},
            )
        loop = self._loop
        stream = _EventStream(None, asyncio.Queue(maxsize=256))

        def enqueue(event):
            # On the loop.  Once the buffer overflows the stream is
            # doomed (its maintained ranking would be stale), so stop
            # accepting events and let the pump close it.
            if stream.overflowed:
                return
            try:
                stream.queue.put_nowait(event)
            except asyncio.QueueFull:
                stream.overflowed = True

        def deliver(event):
            # On the notifier thread: hand off and return immediately —
            # a slow subscriber must never stall notification fan-out.
            loop.call_soon_threadsafe(enqueue, event)

        kwargs = {} if top_k is PREPARED_DEFAULT else {"top_k": top_k}
        # subscribe() computes the initial ranking (and validates the
        # node — an unknown one 404s here, before any SSE bytes).  The
        # snapshot event arrives through ``deliver`` like every other.
        stream.subscription = await self._run_blocking(
            self.service.subscribe, self.prepared, node, deliver, **kwargs
        )
        self._sse_active += 1
        return stream

    async def _stream_events(self, writer, stream):
        """Pump one subscription's events over an open SSE response.

        Each frame awaits ``drain()`` — per-connection backpressure: a
        slow reader stalls only its own stream, never the notifier
        thread or other subscribers.  Exceptions (client hangup,
        shutdown cancellation) propagate to ``_handle_connection``; the
        ``finally`` guarantees the subscription dies with the stream.
        """
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            while True:
                event = await stream.queue.get()
                writer.write(
                    protocol.encode_sse_event(event.type, event.to_dict())
                )
                await writer.drain()
                if stream.overflowed and stream.queue.empty():
                    writer.write(
                        protocol.encode_sse_event(
                            "overflow",
                            {"error": "event buffer overflowed; resubscribe"},
                        )
                    )
                    await writer.drain()
                    return
        finally:
            stream.subscription.cancel()
            self._sse_active -= 1

    async def _handle_explain(self, payload):
        patterns = protocol.string_list(payload, "patterns")
        if patterns:
            report = await self._run_blocking(
                self.service.session.explain, patterns
            )
        else:
            report = await self._run_blocking(self.prepared.explain)
        return {"version": self.service.version, "explain": report}

    async def _handle_healthz(self, payload):
        last_error = self.service.last_error
        report = {
            "status": "degraded" if last_error else "ok",
            "version": self.service.version,
            "uptime": time.monotonic() - self._started_at,
        }
        if last_error:
            report["last_error"] = {
                "operation": last_error["operation"],
                "message": last_error["message"],
                "time": last_error["time"],
                "version": last_error["version"],
            }
        return report

    async def _handle_statz(self, payload):
        stats = {
            "version": self.service.version,
            "inflight": self._inflight,
            "max_inflight": self._max_inflight,
            "requests": self._stats["requests"],
            "rejected": self._stats["rejected"],
            "errors": self._stats["errors"],
            "coalesce": self._batcher is not None,
            "cache_info": self.service.session.cache_info(),
            "delta_stats": self.service.delta_stats,
            "subscriptions": dict(
                self.service.subscription_stats,
                sse_streams=self._sse_active,
                max_sse_streams=self._max_subscribers,
            ),
        }
        if self._batcher is not None:
            stats["queued"] = self._batcher.queued
            stats["coalesce_window"] = self._coalesce_window
            stats["batcher"] = self._batcher.stats()
        if self._pool is not None:
            workers = self._pool.stats()
            stats["workers"] = {
                "count": len(workers),
                "published_version": self._pool.version,
                "completed": sum(entry["completed"] for entry in workers),
                "pending": sum(entry["pending"] for entry in workers),
                "per_worker": workers,
            }
        return stats


class BackgroundServer:
    """A :class:`ReproServer` on a daemon thread, as a context manager.

    The in-process deployment shape — tests, benchmarks, and the
    quickstart boot one of these, talk real HTTP to it, and tear it
    down on exit::

        with BackgroundServer(service, prepared, port=0) as server:
            url = "http://{}:{}/query".format(*server.address)

    ``port=0`` (recommended) binds a free port; :attr:`address` has
    the real one once ``__enter__`` returns.
    """

    def __init__(self, service, prepared, **options):
        self.server = ReproServer(service, prepared, **options)
        self._thread = None
        self._started = threading.Event()
        self._failure = None

    @property
    def address(self):
        """``(host, port)`` actually bound."""
        return self.server.host, self.server.port

    def _run(self):
        try:
            asyncio.run(self.server.serve(started=self._started.set))
        except BaseException as error:
            self._failure = error
        finally:
            self._started.set()

    def __enter__(self):
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server did not start within 30s")
        if self._failure is not None:
            raise RuntimeError(
                "server failed to start: {}".format(self._failure)
            ) from self._failure
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.server.request_shutdown()
        self._thread.join(timeout=30)
        return False
