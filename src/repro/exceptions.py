"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch any library failure with a single ``except`` clause while still
being able to discriminate the precise failure mode.
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SchemaError(ReproError):
    """A label or constraint refers to something outside the schema."""


class UnknownLabelError(SchemaError):
    """A pattern or edge uses an edge label that the schema does not define."""

    def __init__(self, label, schema_labels=None):
        self.label = label
        self.schema_labels = set(schema_labels or ())
        message = "unknown edge label {!r}".format(label)
        if self.schema_labels:
            message += " (schema labels: {})".format(sorted(self.schema_labels))
        super().__init__(message)


class UnknownNodeError(ReproError):
    """An operation referenced a node id that is not in the database."""

    def __init__(self, node):
        self.node = node
        super().__init__("unknown node id {!r}".format(node))


class UnknownEdgeError(ReproError, KeyError):
    """``remove_edge`` targeted an edge the database does not contain.

    Subclasses :class:`KeyError` for compatibility with callers that
    guarded the old bare ``KeyError``, while joining the library
    hierarchy so programmatic mutation (``SimilarityService.apply``)
    can report it like every other library failure.
    """

    def __init__(self, source, label, target):
        self.edge = (source, label, target)
        ReproError.__init__(
            self,
            "unknown edge ({!r}, {!r}, {!r})".format(source, label, target),
        )

    # KeyError.__str__ repr-quotes the message; use the plain one.
    __str__ = ReproError.__str__


class NodeTypeConflictError(ReproError):
    """``add_node`` tried to re-type an already-typed node.

    A node's type may be set once (``None`` -> type is fine, and
    re-adding with the same type is idempotent); silently keeping the
    old type under a *different* requested one would corrupt typed
    candidate sets when graphs are mutated programmatically.
    """

    def __init__(self, node, existing_type, requested_type):
        self.node = node
        self.existing_type = existing_type
        self.requested_type = requested_type
        super().__init__(
            "node {!r} already has type {!r}; refusing to re-type it as "
            "{!r}".format(node, existing_type, requested_type)
        )


class PatternSyntaxError(ReproError):
    """The RRE/RPQ parser rejected the input string."""

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None:
            message = "{} (at position {})".format(message, position)
        super().__init__(message)


class StarDivergenceError(ReproError):
    """Counting a Kleene star did not converge within the expansion bound.

    Under the paper's counting semantics ``|I(p*)|`` is infinite whenever the
    graph contains a cycle matched by ``p``.  We bound the expansion and
    raise this error rather than silently truncating the count.
    """

    def __init__(self, pattern, depth):
        self.pattern = pattern
        self.depth = depth
        super().__init__(
            "Kleene star counting for {!r} did not converge after depth "
            "{}; the graph likely contains a matching cycle".format(
                str(pattern), depth
            )
        )


class ConstraintError(ReproError):
    """A tgd/egd is malformed or used in an unsupported way."""


class CyclicPremiseError(ConstraintError):
    """Algorithm 2 requires acyclic constraint premises (Section 4.2)."""

    def __init__(self, constraint):
        self.constraint = constraint
        super().__init__(
            "constraint premise is cyclic; RelSim pattern generation "
            "supports acyclic premises only: {}".format(constraint)
        )


class TransformationError(ReproError):
    """A schema mapping could not be applied or analyzed."""


class NotInvertibleError(TransformationError):
    """A transformation failed an invertibility check."""


class EvaluationError(ReproError):
    """A similarity query could not be evaluated."""


class PatternTypeError(EvaluationError):
    """The static pattern type checker rejected a pattern.

    Raised before any matrix work happens — at ``PlanCompiler.compile``,
    ``session.prepare()``, and therefore before a request reaches the
    engine — so an ill-typed pattern fails loudly instead of producing
    an empty or nonsensical ranking.

    ``diagnostics`` holds the full severity-ranked list of
    :class:`repro.analysis.diagnostics.Diagnostic` objects (errors and
    warnings); the message summarizes the first error.  The attribute is
    duck-typed so this module stays import-free.
    """

    def __init__(self, diagnostics, pattern=None):
        self.diagnostics = list(diagnostics)
        self.pattern = pattern
        errors = [d for d in self.diagnostics if d.severity == "error"]
        first = errors[0] if errors else self.diagnostics[0]
        message = first.message
        if pattern is not None:
            message = "pattern {!r}: {}".format(str(pattern), message)
        if len(errors) > 1:
            message += " (+{} more error{})".format(
                len(errors) - 1, "s" if len(errors) > 2 else ""
            )
        super().__init__(message)


class ConfigurationError(ReproError, ValueError):
    """A serving/engine knob was configured with an unusable value.

    Subclasses :class:`ValueError` so callers (and tests) that guarded
    the old bare ``ValueError`` keep working, while joining the library
    hierarchy so the server layer can report misconfiguration like every
    other library failure.
    """


class SnapshotError(ReproError):
    """A serving snapshot file could not be read, parsed, or verified.

    Raised by :mod:`repro.server.snapshot` for missing files, foreign or
    corrupt payloads, and unsupported format versions.  Warm starts fail
    loudly rather than silently serving from a half-loaded cache.
    """


class WorkerError(ReproError):
    """A process worker failed to boot, adopt a snapshot, or answer.

    Raised by :mod:`repro.server.workers` when a worker process dies
    mid-request, cannot attach a published shared-memory segment, or
    misses an adoption deadline.  Per-request failures inside a healthy
    worker re-raise the worker's own exception type instead, so the
    server's error mapping is identical with and without workers.
    """


class RegistryError(ReproError):
    """The algorithm registry rejected a lookup or registration.

    Raised for unknown algorithm names and for duplicate registrations
    (pass ``replace=True`` to overwrite deliberately).
    """


class AsymmetricPatternError(EvaluationError):
    """PathSim's formula needs patterns whose endpoints have the same type.

    The paper evaluates asymmetric (e.g. disease-to-drug) relationships with
    HeteSim instead; this error tells the caller to do the same.
    """
