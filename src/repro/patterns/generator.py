"""Algorithm 1 — PatternGenerator.

Turn a user's *simple pattern* into the set ``E_p`` of RREs whose
aggregated similarity score is structurally robust (Proposition 5):

* the original pattern is always in the set;
* each constraint-matched sub-pattern may be replaced by the RREs
  Algorithm 2 derives from the constraint's premise graph;
* labels introduced by *defining* constraints (conclusion label absent
  from the premise) are replaced by their premise traversals directly
  (Section 6.1).

The worklist mirrors the paper's pseudocode: states are ``(r, i)`` where
``r`` is the RRE built so far and ``i`` the number of consumed input
steps; at each state we either keep the original next label or jump over
a rewritten sub-pattern.
"""

from repro.exceptions import ConstraintError
from repro.lang.ast import Pattern, concat, simple_pattern, simple_steps
from repro.lang.parser import parse_pattern
from repro.patterns.filters import select_constraints, split_constraints
from repro.patterns.per_constraint import label_definitions, mod_pattern_refs


class GenerationResult:
    """The output of :func:`generate_patterns` with provenance counters."""

    def __init__(self, patterns, constraints_used, truncated):
        self.patterns = list(patterns)
        self.constraints_used = constraints_used
        self.truncated = truncated

    def __iter__(self):
        return iter(self.patterns)

    def __len__(self):
        return len(self.patterns)

    def __repr__(self):
        return "GenerationResult(patterns={}, constraints_used={}, truncated={})".format(
            len(self.patterns), self.constraints_used, self.truncated
        )


def generate_patterns(
    pattern,
    constraints,
    use_filters=True,
    max_patterns=128,
    max_replacements_per_constraint=256,
):
    """Run Algorithm 1 on a simple pattern.

    Parameters
    ----------
    pattern:
        The user's simple pattern (string or AST); only concatenation and
        reverse traversal are allowed, per Section 5.
    constraints:
        The schema's tgd constraints.
    use_filters:
        Apply the Section-6 optimizations.  Disabling them reproduces the
        paper's "takes days to finish" configuration on large constraint
        sets (bounded here by ``max_patterns``).
    max_patterns:
        Cap on ``|E_p|``; generation stops (and flags ``truncated``) when
        reached.

    Returns a :class:`GenerationResult`; ``result.patterns[0]`` is always
    the input pattern.
    """
    if isinstance(pattern, str):
        pattern = parse_pattern(pattern)
    if not isinstance(pattern, Pattern):
        raise TypeError("pattern must be a string or Pattern AST")
    try:
        steps = simple_steps(pattern)
    except ValueError as error:
        raise ConstraintError(
            "Algorithm 1 takes a simple pattern: {}".format(error)
        ) from None
    if not steps:
        raise ConstraintError("Algorithm 1 needs a non-empty simple pattern")

    selected = select_constraints(
        list(constraints), pattern, use_filters=use_filters
    )
    recursive, defining = split_constraints(selected)

    # Pre-compute per-constraint rewrite options over the *whole* input;
    # Replacement.start/.length localize them (the pseudocode recomputes
    # per suffix, which is equivalent but wasteful).
    replacements_by_start = {}
    for constraint in recursive:
        options = mod_pattern_refs(
            constraint,
            steps,
            max_patterns=max_replacements_per_constraint,
            conclusion_filter=use_filters,
        )
        for option in options:
            replacements_by_start.setdefault(option.start, []).append(option)

    # Defining constraints: per-label replacement patterns.
    definitions = {}
    for constraint in defining:
        for label_name, patterns in label_definitions(constraint).items():
            definitions.setdefault(label_name, []).extend(patterns)

    done = []
    truncated = False
    # Worklist of (parts, i): parts is the list of pattern pieces built.
    processing = [([], 0)]
    while processing:
        parts, i = processing.pop(0)
        if i >= len(steps):
            candidate = concat(*parts)
            if candidate not in done:
                done.append(candidate)
            continue
        if len(done) >= max_patterns:
            truncated = True
            break

        # Option 1: keep the original next step (possibly substituting a
        # defined label).
        name, reversed_ = steps[i]
        original_step = simple_pattern([steps[i]])
        processing.append((parts + [original_step], i + 1))
        for definition in definitions.get(name, ()):
            replacement = definition.reverse() if reversed_ else definition
            if replacement != original_step:
                processing.append((parts + [replacement], i + 1))

        # Option 2: rewrite a sub-pattern starting here.
        for option in replacements_by_start.get(i, ()):
            processing.append(
                (parts + [option.pattern], i + option.length)
            )

        if len(processing) > 4 * max_patterns:
            truncated = True
            processing = processing[: 4 * max_patterns]

    # The original pattern must be first (Algorithm 1 line 7 keeps it).
    original = simple_pattern(steps)
    ordered = [original] + [p for p in done if p != original]
    return GenerationResult(
        ordered[:max_patterns],
        constraints_used=len(selected),
        truncated=truncated,
    )
