"""Algorithm 2 — ModPatternRefsPerConstraint.

Given a constraint ``gamma`` and a simple pattern ``s = l'1 ... l'm``,
find every contiguous sub-pattern ``e`` of ``s`` that occurs as a path in
the premise graph of ``gamma`` from some variable ``v_g`` to ``v_h``, and
pair it with every RRE ``e'`` that traverses a connected subgraph of the
premise graph from ``v_g`` to ``v_h`` (each edge visited once).  Both
``(e, e')`` and ``(e-, e'-)`` are emitted.

The Section-6.2 conclusion-label filter is applied here when enabled:
replacements are only produced for sub-patterns containing one of the
constraint's conclusion labels (others can only stem from *easy*
transformations, which never restructure anything).
"""

from repro.constraints.premise_graph import PremiseGraph
from repro.lang.ast import simple_pattern


class Replacement:
    """One ``(e, e')`` rewrite option.

    Attributes
    ----------
    start, length:
        Position and length of the sub-pattern ``e`` within the input
        steps it was matched against.
    original:
        The sub-pattern ``e`` as an AST.
    pattern:
        The replacement RRE ``e'``.
    """

    __slots__ = ("start", "length", "original", "pattern")

    def __init__(self, start, length, original, pattern):
        self.start = start
        self.length = length
        self.original = original
        self.pattern = pattern

    def __repr__(self):
        return "Replacement({}..{}: {} => {})".format(
            self.start,
            self.start + self.length,
            self.original,
            self.pattern,
        )


def mod_pattern_refs(constraint, steps, max_patterns=256,
                     conclusion_filter=True):
    """All rewrite options for sub-patterns of ``steps`` under one tgd.

    Parameters
    ----------
    constraint:
        A :class:`Tgd` with an acyclic premise.
    steps:
        The input simple pattern as ``[(label, reversed), ...]``.
    max_patterns:
        Cap on traversal enumeration per matched sub-pattern.
    conclusion_filter:
        Apply the Section-6.2 filter (see module docstring).

    Returns a list of :class:`Replacement`.  The identity rewrite (the
    sub-pattern itself) is never included — Algorithm 1 keeps the
    original pattern through its own "use original" branch.
    """
    from repro.patterns.traversal import enumerate_traversals

    graph = PremiseGraph(constraint)
    graph.require_acyclic()
    conclusion_labels = constraint.conclusion_labels()

    replacements = []
    n = len(steps)
    for i in range(n):
        for j in range(i + 1, n + 1):
            sub_steps = steps[i:j]
            if conclusion_filter and not (
                {name for name, _ in sub_steps} & conclusion_labels
            ):
                continue
            original = simple_pattern(sub_steps)
            seen_endpoints = set()
            for start_var in graph.variables:
                for end_var, _path in graph.walk_matches(
                    start_var, sub_steps
                ):
                    if (start_var, end_var) in seen_endpoints:
                        continue
                    seen_endpoints.add((start_var, end_var))
                    for pattern in enumerate_traversals(
                        graph, start_var, end_var, max_patterns=max_patterns
                    ):
                        if pattern == original:
                            continue
                        replacements.append(
                            Replacement(i, j - i, original, pattern)
                        )
    return replacements


def label_definitions(constraint, max_patterns=64):
    """Replacement patterns for a *defining* constraint's conclusion label.

    For ``phi -> (x1, l, x2)`` with ``l`` not in ``phi``, the paper says
    to replace ``l`` by the traversal of ``phi`` from ``x1`` to ``x2``
    (Section 6.1).  Returns ``{label: [patterns...]}`` — plain traversal
    first, skip/nested variants after.
    """
    from repro.patterns.traversal import enumerate_traversals
    from repro.lang.ast import Label, Reverse

    graph = PremiseGraph(constraint)
    graph.require_acyclic()
    definitions = {}
    for atom in constraint.conclusion:
        pattern = atom.pattern
        if isinstance(pattern, Label):
            label_name, start, end = pattern.name, atom.source, atom.target
        elif isinstance(pattern, Reverse) and isinstance(
            pattern.operand, Label
        ):
            label_name = pattern.operand.name
            start, end = atom.target, atom.source
        else:
            continue
        if label_name in constraint.premise_labels():
            continue
        traversals = enumerate_traversals(
            graph, start, end, max_patterns=max_patterns
        )
        if traversals:
            definitions.setdefault(label_name, []).extend(traversals)
    return definitions
