"""Enumerating RRE traversals of a premise graph (Section 5).

Algorithm 2 needs, for two variables ``v_g`` and ``v_h`` of an acyclic
premise graph, all RREs that traverse a connected subgraph ``H``
containing both, visiting each edge of ``H`` once:

* the *spine* is the unique undirected path from ``v_g`` to ``v_h``;
* any subset of the branch subtrees hanging off spine nodes may be
  included (each choice of subset = one connected subgraph ``H``);
* an included branch becomes a *nested* sub-pattern ``[q]`` inserted at
  its attachment node, where ``q`` traverses the branch subtree (with
  sub-branches recursively nested);
* every simple path segment may additionally be wrapped in the *skip*
  operator ``<<...>>`` — "each constructed p can also be written as
  <<p>>" — which is where the robustness-restoring variants come from.

The number of traversals is exponential in the premise size (the paper's
complexity analysis says as much); ``max_patterns`` caps the enumeration
deterministically.
"""

from repro.lang.ast import Nested, Skip, concat


def _spine_nodes(graph, start, steps):
    """Node sequence visited by a path of ``(edge_id, forward)`` steps."""
    nodes = [start]
    current = start
    for edge_id, forward in steps:
        source, _, target = graph.edges[edge_id]
        current = target if forward else source
        nodes.append(current)
    return nodes


def _branch_roots(graph, spine_edge_ids, node):
    """Edges at ``node`` that leave the spine (entry points of branches)."""
    return [
        (edge_id, other, forward)
        for edge_id, other, forward in graph.neighbors(node)
        if edge_id not in spine_edge_ids
    ]


def _segment_variants(steps_patterns):
    """A raw step segment: itself, or skip-wrapped (when non-empty)."""
    if not steps_patterns:
        return [None]
    plain = concat(*steps_patterns)
    return [plain, Skip(plain)]


def _subtree_traversals(graph, node, via_edge_id, entry_pattern, child,
                        excluded_edges, limit):
    """All traversal patterns of the branch subtree entered via one edge.

    Returns patterns describing a walk that starts at ``node``, takes the
    entry edge to ``child`` and covers the subtree below.  Sub-branches at
    ``child`` are recursively nested.  Each maximal raw segment may be
    skip-wrapped.
    """
    excluded = excluded_edges | {via_edge_id}
    below = [
        (edge_id, other, forward)
        for edge_id, other, forward in graph.neighbors(child)
        if edge_id not in excluded
    ]

    # Entry step alone (plain or skipped).
    if not below:
        return _segment_variants([entry_pattern])

    results = []
    child_variant_lists = []
    for edge_id, other, forward in below:
        pattern = graph.edge_pattern(edge_id, forward)
        child_variant_lists.append(
            _subtree_traversals(
                graph, child, edge_id, pattern, other, excluded, limit
            )
        )

    # Every sub-branch becomes a nested op after the entry step; also try
    # extending the entry segment into each single chain when there is
    # exactly one sub-branch (keeps chains like a.b unnested, matching the
    # paper's examples).
    combos = [[]]
    for variants in child_variant_lists:
        combos = [
            existing + [Nested(v)]
            for existing in combos
            for v in variants
        ]
        if len(combos) > limit:
            combos = combos[:limit]
    for entry_variant in _segment_variants([entry_pattern]):
        for nested_parts in combos:
            results.append(concat(entry_variant, *nested_parts))
            if len(results) >= limit:
                return results

    if len(child_variant_lists) == 1:
        # Chain continuation without nesting: entry . subtraversal.
        for tail in child_variant_lists[0]:
            results.append(concat(entry_pattern, tail))
            results.append(Skip(concat(entry_pattern, tail)))
            if len(results) >= limit:
                return results

    # Deduplicate while keeping deterministic order.
    unique = []
    for pattern in results:
        if pattern not in unique:
            unique.append(pattern)
    return unique


def enumerate_traversals(graph, start, end, max_patterns=256):
    """All RREs ``start -> end`` over connected subgraphs of ``graph``.

    Parameters
    ----------
    graph:
        An acyclic :class:`repro.constraints.premise_graph.PremiseGraph`.
    start, end:
        Premise variables; the spine is the unique path between them.
    max_patterns:
        Deterministic cap on the number of returned patterns.

    Returns a list of :class:`Pattern` objects; the plain spine pattern
    (no branches, no skips) is always first when it exists.
    """
    graph.require_acyclic()
    spine = graph.find_path(start, end)
    if spine is None:
        return []
    spine_edge_ids = {edge_id for edge_id, _ in spine}
    spine_nodes = _spine_nodes(graph, start, spine)

    # Branch options per spine node: for each branch, None (excluded) or
    # one nested traversal.
    branch_slots = []  # aligned with spine_nodes
    for node in spine_nodes:
        slots_here = []
        for edge_id, other, forward in _branch_roots(
            graph, spine_edge_ids, node
        ):
            entry = graph.edge_pattern(edge_id, forward)
            traversals = _subtree_traversals(
                graph,
                node,
                edge_id,
                entry,
                other,
                spine_edge_ids,
                max_patterns,
            )
            slots_here.append([None] + [Nested(t) for t in traversals])
        branch_slots.append(slots_here)

    # Enumerate: walk spine nodes; maintain partial unit lists where a
    # unit is either a raw-steps buffer or a fixed nested insertion.
    partials = [([], [])]  # (units, raw_buffer)
    for position, node in enumerate(spine_nodes):
        for slot in branch_slots[position]:
            extended = []
            for units, buffer in partials:
                for choice in slot:
                    if choice is None:
                        extended.append((list(units), list(buffer)))
                    else:
                        # Flush the raw buffer (it becomes one segment)
                        # and insert the nested op.
                        extended.append(
                            (
                                units + [("seg", list(buffer)), ("nest", choice)],
                                [],
                            )
                        )
                if len(extended) > max_patterns:
                    extended = extended[:max_patterns]
            partials = extended
        if position < len(spine):
            edge_id, forward = spine[position]
            step = graph.edge_pattern(edge_id, forward)
            partials = [
                (units, buffer + [step]) for units, buffer in partials
            ]

    results = []
    for units, buffer in partials:
        units = units + [("seg", buffer)]
        results.extend(_expand_units(units, max_patterns - len(results)))
        if len(results) >= max_patterns:
            break

    unique = []
    for pattern in results:
        if pattern not in unique:
            unique.append(pattern)
    return unique[:max_patterns]


def _expand_units(units, limit):
    """Cartesian expansion of segment skip-choices within one unit list."""
    if limit <= 0:
        return []
    choices = [[]]
    for kind, payload in units:
        if kind == "nest":
            choices = [existing + [payload] for existing in choices]
        else:
            variants = _segment_variants(payload)
            choices = [
                existing + ([v] if v is not None else [])
                for existing in choices
                for v in variants
            ]
        if len(choices) > limit:
            choices = choices[:limit]
    return [concat(*parts) for parts in choices if parts]
