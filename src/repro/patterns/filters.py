"""Section-6 optimizations: constraint filtering for pattern generation.

Three filters, each corresponding to a result in the paper:

* **Trivial constraints** (Section 6.1 / Theorem 3): constraints whose
  conclusion is already part of the premise restrict nothing and induce
  no structural variation — skip them.
* **Conclusion-label relevance** (Section 6.2 / Proposition 6): an
  invertible transformation induced by ``phi -> (x, l, y)`` may only
  remove edges labeled ``l``; a sub-pattern not containing ``l`` is
  unaffected ("the algorithm ignores producing an RRE such as
  published-in . published-in-").  So a constraint is only relevant to an
  input pattern that mentions one of its conclusion labels.
* **Defining constraints** (Section 6.1, end): for a constraint
  ``phi -> (x1, l, x2)`` where ``l`` does *not* occur in ``phi``, the
  label ``l`` is definable from the rest of the schema; the paper says to
  replace ``l`` by the premise traversal instead of running the general
  machinery.  :func:`split_constraints` separates those out.
"""


def nontrivial(constraints):
    """Drop trivial constraints (premise already implies conclusion)."""
    return [c for c in constraints if not c.is_trivial()]


def relevant_to_pattern(constraints, pattern):
    """Constraints whose conclusion labels intersect the pattern's labels."""
    pattern_labels = pattern.labels()
    return [
        c for c in constraints if c.conclusion_labels() & pattern_labels
    ]


def split_constraints(constraints):
    """Partition into ``(recursive, defining)`` constraints.

    *Recursive* constraints mention a conclusion label in their premise
    (like the DBLP constraint, where ``r-a`` appears on both sides) and
    feed Algorithm 2's sub-pattern rewriting.  *Defining* constraints
    introduce a label purely derived from others (like BioMed's
    ``*-indirect`` labels) and are handled by direct label replacement.
    """
    recursive = []
    defining = []
    for constraint in constraints:
        if constraint.conclusion_labels() & constraint.premise_labels():
            recursive.append(constraint)
        else:
            defining.append(constraint)
    return recursive, defining


def select_constraints(constraints, pattern, use_filters=True):
    """The full Section-6 pipeline: trivial + relevance filtering.

    With ``use_filters=False`` only triviality is dropped (the algorithms
    genuinely cannot do anything with a trivial constraint), which is the
    "without optimization" configuration of the ablation benchmark.
    """
    constraints = nontrivial(constraints)
    if use_filters:
        constraints = relevant_to_pattern(constraints, pattern)
    return constraints
