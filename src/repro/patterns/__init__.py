"""Pattern generation: Algorithms 1 & 2 and the Section-6 filters."""

from repro.patterns.filters import (
    nontrivial,
    relevant_to_pattern,
    select_constraints,
    split_constraints,
)
from repro.patterns.generator import GenerationResult, generate_patterns
from repro.patterns.per_constraint import (
    Replacement,
    label_definitions,
    mod_pattern_refs,
)
from repro.patterns.traversal import enumerate_traversals

__all__ = [
    "GenerationResult",
    "Replacement",
    "enumerate_traversals",
    "generate_patterns",
    "label_definitions",
    "mod_pattern_refs",
    "nontrivial",
    "relevant_to_pattern",
    "select_constraints",
    "split_constraints",
]
