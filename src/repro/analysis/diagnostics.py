"""Severity-ranked, span-carrying diagnostics for pattern analysis.

The type checker (:mod:`repro.analysis.typecheck`) reports everything it
finds as a list of :class:`Diagnostic` objects rather than raising on
the first problem — a pattern author fixing a query wants the whole
story at once, and the serving layer wants a structured payload it can
put in an HTTP 400 body.  A diagnostic carries:

* ``severity`` — :data:`ERROR` (the pattern cannot mean what it says
  against this schema) or :data:`WARNING` (it means something, but a
  cheaper or saner spelling exists, or evaluation will be expensive);
* ``code`` — a stable machine-readable rule name (``unknown-label``,
  ``endpoint-mismatch``, ...) clients can filter on;
* ``span`` — a ``(start, end)`` character range into ``pattern_text``
  (the pattern's canonical rendering) locating the offending subterm;
* ``message`` — the human explanation, endpoint types spelled out.

Severity ordering is total (errors sort before warnings) so a
diagnostic list is presentable as-is after :func:`sort_diagnostics`.
"""

#: Severity levels, most severe first.  Values sort by rank.
ERROR = "error"
WARNING = "warning"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1}


class Diagnostic:
    """One finding of the pattern type checker.

    Immutable value object; compares structurally so tests can assert
    on exact diagnostic sets.
    """

    __slots__ = ("severity", "code", "message", "span", "pattern_text")

    def __init__(self, severity, code, message, span=None, pattern_text=None):
        if severity not in _SEVERITY_RANK:
            raise ValueError(
                "severity must be one of {}, got {!r}".format(
                    sorted(_SEVERITY_RANK), severity
                )
            )
        self.severity = severity
        self.code = code
        self.message = message
        self.span = tuple(span) if span is not None else None
        self.pattern_text = pattern_text

    @property
    def is_error(self):
        return self.severity == ERROR

    def to_dict(self):
        """A JSON-able dict (the HTTP 400 body / ``--json`` shape)."""
        payload = {
            "severity": self.severity,
            "code": self.code,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = list(self.span)
        if self.pattern_text is not None:
            payload["pattern"] = self.pattern_text
        return payload

    def format(self, caret=False):
        """``severity[code] at start..end: message`` (+ caret line).

        With ``caret`` and a span, adds the pattern text and a
        ``^^^^`` underline locating the subterm — the ``repro check``
        terminal rendering.
        """
        where = (
            " at {}..{}".format(self.span[0], self.span[1])
            if self.span is not None
            else ""
        )
        line = "{}[{}]{}: {}".format(
            self.severity, self.code, where, self.message
        )
        if caret and self.span is not None and self.pattern_text:
            start, end = self.span
            underline = " " * start + "^" * max(end - start, 1)
            line += "\n    {}\n    {}".format(self.pattern_text, underline)
        return line

    def __eq__(self, other):
        if not isinstance(other, Diagnostic):
            return NotImplemented
        return (
            self.severity == other.severity
            and self.code == other.code
            and self.message == other.message
            and self.span == other.span
            and self.pattern_text == other.pattern_text
        )

    def __hash__(self):
        return hash((self.severity, self.code, self.message, self.span))

    def __repr__(self):
        return "Diagnostic({})".format(self.format())


def sort_diagnostics(diagnostics):
    """Diagnostics ranked most severe first, then by span position."""
    return sorted(
        diagnostics,
        key=lambda d: (
            _SEVERITY_RANK[d.severity],
            d.span if d.span is not None else (1 << 30, 1 << 30),
            d.code,
        ),
    )


def has_errors(diagnostics):
    """True when any diagnostic is error-severity."""
    return any(d.is_error for d in diagnostics)
