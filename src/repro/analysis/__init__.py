"""Static analysis for similarity patterns.

Two consumers:

* the plan compiler and serving stack, which call
  :meth:`PatternTypeChecker.assert_well_typed` to reject ill-typed
  patterns *before* any matrix work (surfaced as
  :class:`repro.exceptions.PatternTypeError` carrying the diagnostic
  list — the CLI ``repro check`` verb and the HTTP 400 body both render
  it);
* humans running ``repro check``, who also get the warning tier
  (density estimates, redundant spellings).

The repo-invariant linter (dense-materialization, lock discipline,
index width, exception taxonomy) is a separate stdlib-``ast`` tool at
``tools/lint_repro.py`` — it checks this codebase, not patterns.
"""

from repro.analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    has_errors,
    sort_diagnostics,
)
from repro.analysis.typecheck import (
    ANY,
    Endpoints,
    PatternTypeChecker,
    render_with_spans,
)

__all__ = [
    "ANY",
    "ERROR",
    "WARNING",
    "Diagnostic",
    "Endpoints",
    "PatternTypeChecker",
    "has_errors",
    "render_with_spans",
    "sort_diagnostics",
]
