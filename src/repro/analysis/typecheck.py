"""Schema-aware static type checking for similarity patterns.

The paper's thesis is that similarity semantics should be derived from
the *schema*; this module applies the same standard to the queries.  A
pattern like ``p-in-.r-a`` is only meaningful when the target type of
``p-in-`` matches the source type of ``r-a`` — today a mistyped
composition sails through parse/expand/compile and surfaces as an empty
or nonsensical ranking.  :class:`PatternTypeChecker` infers a
``(source_type, target_type)`` endpoint set for every subterm of a
pattern AST and reports problems as spanned
:class:`~repro.analysis.diagnostics.Diagnostic` objects:

**Errors** (the pattern cannot mean what it says against this schema):

* ``unknown-label`` — an edge label the schema does not define;
* ``endpoint-mismatch`` — a concatenation whose left target types share
  nothing with the right source types;
* ``union-mismatch`` — union branches that share types on one endpoint
  but diverge on the other, so one candidate population would mix
  incomparable nodes (fully type-disjoint branches are *fine* — they
  build a block matrix, an idiom Algorithm-1 expansions rely on);
* ``statically-empty`` — a subterm whose endpoint set is provably empty
  (e.g. a conjunction of type-disjoint relationships).

**Warnings** (well-typed but expensive or redundantly spelled):

* ``star-blowup`` — a Kleene star whose operand's nnz estimate predicts
  a near-dense closure;
* ``density-budget`` — the whole pattern's estimated result density
  exceeds a configurable budget;
* ``redundant-reverse`` — a double reverse the canonicalizer collapses;
* ``redundant-union`` — duplicate union branches the canonicalizer
  deduplicates.

The endpoint algebra treats untyped labels (schemas without
``node_types`` — the common case in tests and ad-hoc graphs) as the
wildcard :data:`ANY`, which absorbs every operation, so an untyped
schema only ever produces ``unknown-label`` errors and density
warnings: the checker never invents a type constraint the schema did
not state.

Spans index into the pattern's canonical rendering (``str(pattern)``),
computed by a renderer that mirrors the AST pretty-printer exactly.

This module imports only the AST, the diagnostics value objects, and
the exception hierarchy — never the plan compiler or the engine — so
both of those can depend on it without cycles.  Density estimates are
therefore computed over the AST with the same uniform-sparsity
surrogate the chain planner uses (``nnz_A * nnz_B / n`` per product).
"""

from repro.analysis.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    has_errors,
    sort_diagnostics,
)
from repro.exceptions import PatternTypeError
from repro.lang.ast import (
    Concat,
    Conj,
    Epsilon,
    Label,
    Nested,
    Pattern,
    Reverse,
    Skip,
    Star,
    Union,
)


class _Any:
    """The wildcard endpoint set: no static constraint known."""

    def __repr__(self):
        return "ANY"


#: Endpoint set of an untyped label (and of anything composed with one).
ANY = _Any()


class Endpoints:
    """The inferred endpoint-type set of one subterm.

    ``pairs`` is either :data:`ANY` or a frozenset of
    ``(source_type, target_type)`` pairs; ``diag`` additionally admits
    ``(T, T)`` for *every* node type ``T`` — the identity component
    contributed by ``eps`` and by Kleene stars, which relate any node
    to itself regardless of type.
    """

    __slots__ = ("pairs", "diag")

    def __init__(self, pairs, diag=False):
        self.pairs = pairs if pairs is ANY else frozenset(pairs)
        self.diag = diag

    @property
    def is_any(self):
        return self.pairs is ANY

    @property
    def is_empty(self):
        """Provably empty: no pairs, no identity component, not ANY."""
        return not self.is_any and not self.diag and not self.pairs

    def source_types(self):
        """Possible source types, or :data:`ANY` when unconstrained."""
        if self.is_any or self.diag:
            return ANY
        return frozenset(s for s, _ in self.pairs)

    def target_types(self):
        if self.is_any or self.diag:
            return ANY
        return frozenset(t for _, t in self.pairs)

    def describe(self):
        if self.is_any:
            return "any"
        parts = sorted(
            "{}->{}".format(s, t) for s, t in self.pairs
        )
        if self.diag:
            parts.append("T->T")
        return "{" + ", ".join(parts) + "}" if parts else "{}"

    def __repr__(self):
        return "Endpoints({})".format(self.describe())


_ANY_ENDPOINTS = Endpoints(ANY)
_DIAG_ENDPOINTS = Endpoints((), diag=True)


def _swap(endpoints):
    if endpoints.is_any:
        return endpoints
    return Endpoints(
        ((t, s) for s, t in endpoints.pairs), diag=endpoints.diag
    )


def _compose(left, right):
    """Endpoints of ``left . right``; ``None`` pairs-set means mismatch.

    Returns ``(endpoints, ok)`` — ``ok`` is False when the composition
    is provably empty (the caller reports ``endpoint-mismatch`` and
    recovers with :data:`ANY` to suppress cascading errors).
    """
    if left.is_any or right.is_any:
        return _ANY_ENDPOINTS, True
    pairs = set()
    for s1, t1 in left.pairs:
        for s2, t2 in right.pairs:
            if t1 == s2:
                pairs.add((s1, t2))
    if left.diag:
        pairs.update(right.pairs)
    if right.diag:
        pairs.update(left.pairs)
    diag = left.diag and right.diag
    if not pairs and not diag:
        return Endpoints(()), False
    return Endpoints(pairs, diag=diag), True


def _intersect(left, right):
    """Endpoints of ``left & right`` (both must hold between u, v)."""
    if left.is_any:
        return right
    if right.is_any:
        return left
    pairs = set(left.pairs & right.pairs)
    if left.diag:
        pairs.update((s, t) for s, t in right.pairs if s == t)
    if right.diag:
        pairs.update((s, t) for s, t in left.pairs if s == t)
    return Endpoints(pairs, diag=left.diag and right.diag)


def _closure(endpoints):
    """Endpoints of ``p*``: transitive closure of ``p`` plus identity."""
    if endpoints.is_any:
        return _ANY_ENDPOINTS
    pairs = set(endpoints.pairs)
    changed = True
    while changed:
        changed = False
        for s1, t1 in list(pairs):
            for s2, t2 in list(pairs):
                if t1 == s2 and (s1, t2) not in pairs:
                    pairs.add((s1, t2))
                    changed = True
    return Endpoints(pairs, diag=True)


# ----------------------------------------------------------------------
# Span computation: mirror the AST pretty-printer, recording positions
# ----------------------------------------------------------------------
class _SpanRenderer:
    """Render a pattern exactly like ``str()`` while recording, for each
    subterm object, its ``(start, end)`` character span in the output.

    The AST keeps no source positions (the parser discards token
    offsets and the canonicalizer rewrites trees anyway), so spans are
    computed against the canonical rendering — which is also what users
    see echoed back in diagnostics, keeping the caret alignment honest.
    Spans are keyed by ``id(node)``; when one object occurs twice (a
    shared subterm), the last occurrence wins, which is fine for
    locating a problem.
    """

    def __init__(self):
        self.spans = {}
        self._chunks = []
        self._pos = 0

    def text(self):
        return "".join(self._chunks)

    def _emit(self, chunk):
        self._chunks.append(chunk)
        self._pos += len(chunk)

    def render(self, node):
        start = self._pos
        if isinstance(node, Epsilon):
            self._emit("eps")
        elif isinstance(node, Label):
            self._emit(node.name)
        elif isinstance(node, Reverse):
            self._child(node, node.operand)
            self._emit("-")
        elif isinstance(node, Star):
            self._child(node, node.operand)
            self._emit("*")
        elif isinstance(node, Nested):
            self._emit("[")
            self.render(node.operand)
            self._emit("]")
        elif isinstance(node, Skip):
            self._emit("<<")
            self.render(node.operand)
            self._emit(">>")
        elif isinstance(node, (Concat, Union, Conj)):
            sep = {Concat: ".", Union: "+", Conj: "&"}[type(node)]
            for index, part in enumerate(node.parts):
                if index:
                    self._emit(sep)
                self._child(node, part)
        else:
            raise TypeError("not a pattern: {!r}".format(node))
        self.spans[id(node)] = (start, self._pos)

    def _child(self, parent, child):
        if child.precedence < parent.precedence:
            self._emit("(")
            self.render(child)
            self._emit(")")
        else:
            self.render(child)


def render_with_spans(pattern):
    """``(text, spans)`` where ``spans[id(subterm)] = (start, end)``.

    ``text`` equals ``str(pattern)``.
    """
    renderer = _SpanRenderer()
    renderer.render(pattern)
    return renderer.text(), renderer.spans


class PatternTypeChecker:
    """Static analysis of pattern ASTs against one schema.

    Parameters
    ----------
    schema:
        The :class:`repro.graph.schema.Schema` to check against.  Its
        ``node_types`` drive endpoint inference; labels without types
        are treated as unconstrained (:data:`ANY`).
    stats:
        Optional source of graph statistics for density warnings.  Duck
        typed: needs ``num_nodes()`` and ``label_nnz(name)``.  Without
        it only structural checks run (no ``star-blowup`` /
        ``density-budget`` warnings) — which is what the compile-time
        fail-fast hook wants anyway, since warnings never block.
    density_budget:
        Warn when a pattern's estimated result density (nnz over n^2)
        exceeds this fraction.  Default 0.25: a quarter-dense
        similarity matrix at serving scale is already an incident.
    """

    def __init__(self, schema, stats=None, density_budget=0.25):
        self.schema = schema
        self.stats = stats
        self.density_budget = float(density_budget)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(self, pattern):
        """All diagnostics for ``pattern``, most severe first."""
        if not isinstance(pattern, Pattern):
            raise TypeError("expected a Pattern, got {!r}".format(pattern))
        text, spans = render_with_spans(pattern)
        sink = []
        endpoints = self._infer(pattern, text, spans, sink)
        if endpoints.is_empty and not has_errors(sink):
            sink.append(
                self._diag(
                    ERROR,
                    "statically-empty",
                    "pattern matches no node pair under this schema",
                    pattern,
                    text,
                    spans,
                )
            )
        self._check_density(pattern, text, spans, sink)
        self._check_redundancy(pattern, text, spans, sink)
        return sort_diagnostics(sink)

    def check_many(self, patterns):
        """``[(pattern, diagnostics), ...]`` for a pattern set."""
        return [(pattern, self.check(pattern)) for pattern in patterns]

    def assert_well_typed(self, pattern):
        """Raise :class:`PatternTypeError` when ``pattern`` has errors.

        Warnings never raise — they are surfaced by ``repro check`` and
        ``explain()``, not by the compile path.
        """
        diagnostics = self.check(pattern)
        if has_errors(diagnostics):
            raise PatternTypeError(diagnostics, pattern=pattern)
        return diagnostics

    def endpoints(self, pattern):
        """The inferred :class:`Endpoints` of ``pattern`` (no reporting)."""
        text, spans = render_with_spans(pattern)
        return self._infer(pattern, text, spans, [])

    # ------------------------------------------------------------------
    # Endpoint inference
    # ------------------------------------------------------------------
    def _diag(self, severity, code, message, node, text, spans):
        return Diagnostic(
            severity,
            code,
            message,
            span=spans.get(id(node)),
            pattern_text=text,
        )

    def _infer(self, node, text, spans, sink):
        if isinstance(node, Epsilon):
            return _DIAG_ENDPOINTS
        if isinstance(node, Label):
            if node.name not in self.schema.labels:
                sink.append(
                    self._diag(
                        ERROR,
                        "unknown-label",
                        "unknown edge label {!r} (schema labels: {})".format(
                            node.name, sorted(self.schema.labels)
                        ),
                        node,
                        text,
                        spans,
                    )
                )
                return _ANY_ENDPOINTS
            types = self.schema.node_types.get(node.name)
            if types is None:
                return _ANY_ENDPOINTS
            source, target = types
            return Endpoints([(source, target)])
        if isinstance(node, Reverse):
            return _swap(self._infer(node.operand, text, spans, sink))
        if isinstance(node, Star):
            return _closure(self._infer(node.operand, text, spans, sink))
        if isinstance(node, Skip):
            return self._infer(node.operand, text, spans, sink)
        if isinstance(node, Nested):
            inner = self._infer(node.operand, text, spans, sink)
            if inner.is_any or inner.diag:
                # Sources unconstrained -> the diagonal restriction is
                # unconstrained too; ANY keeps the algebra honest.
                return _ANY_ENDPOINTS
            if inner.is_empty:
                return inner
            return Endpoints((s, s) for s in inner.source_types())
        if isinstance(node, Concat):
            return self._infer_concat(node, text, spans, sink)
        if isinstance(node, Union):
            return self._infer_union(node, text, spans, sink)
        if isinstance(node, Conj):
            return self._infer_conj(node, text, spans, sink)
        raise TypeError("not a pattern: {!r}".format(node))

    def _infer_concat(self, node, text, spans, sink):
        acc = None
        for part in node.parts:
            part_endpoints = self._infer(part, text, spans, sink)
            if acc is None:
                acc = part_endpoints
                continue
            composed, ok = _compose(acc, part_endpoints)
            if not ok:
                sink.append(
                    self._diag(
                        ERROR,
                        "endpoint-mismatch",
                        "cannot compose: left side ends in type(s) "
                        "{} but {!r} starts from type(s) {}".format(
                            _describe_types(acc.target_types()),
                            str(part),
                            _describe_types(part_endpoints.source_types()),
                        ),
                        part,
                        text,
                        spans,
                    )
                )
                # Recover with ANY so one bad junction doesn't cascade
                # into a mismatch report at every later junction.
                acc = _ANY_ENDPOINTS
            else:
                acc = composed
        return acc

    def _infer_union(self, node, text, spans, sink):
        branch_endpoints = [
            self._infer(part, text, spans, sink) for part in node.parts
        ]
        # Two branches mismatch when they are *half-aligned*: they can
        # start from a common source type but necessarily end at
        # disjoint target types (one candidate row would then mix
        # incomparable node populations), or symmetrically share target
        # types while starting from disjoint sources.  Fully disjoint
        # branches are fine — they build a block matrix ("similar among
        # areas OR similar among papers"), an idiom the Algorithm-1
        # expansions rely on.
        for i in range(len(branch_endpoints)):
            for j in range(i + 1, len(branch_endpoints)):
                left, right = branch_endpoints[i], branch_endpoints[j]
                if left.is_empty or right.is_empty:
                    continue
                sources_overlap = _sets_overlap(
                    left.source_types(), right.source_types()
                )
                targets_overlap = _sets_overlap(
                    left.target_types(), right.target_types()
                )
                if sources_overlap != targets_overlap:
                    side = "source" if sources_overlap else "target"
                    other = "target" if sources_overlap else "source"
                    sink.append(
                        self._diag(
                            ERROR,
                            "union-mismatch",
                            "union branches {!r} ({}) and {!r} ({}) "
                            "share {} types but have disjoint {} "
                            "types; one candidate population would "
                            "mix incomparable nodes".format(
                                str(node.parts[i]),
                                left.describe(),
                                str(node.parts[j]),
                                right.describe(),
                                side,
                                other,
                            ),
                            node,
                            text,
                            spans,
                        )
                    )
                    return _ANY_ENDPOINTS
        pairs = set()
        diag = False
        for endpoints in branch_endpoints:
            if endpoints.is_any:
                return _ANY_ENDPOINTS
            pairs.update(endpoints.pairs)
            diag = diag or endpoints.diag
        return Endpoints(pairs, diag=diag)

    def _infer_conj(self, node, text, spans, sink):
        acc = _ANY_ENDPOINTS
        for part in node.parts:
            acc = _intersect(acc, self._infer(part, text, spans, sink))
        if acc.is_empty:
            sink.append(
                self._diag(
                    ERROR,
                    "statically-empty",
                    "conjunction branches have type-disjoint endpoint "
                    "sets; '&' requires both relationships between the "
                    "same node pair, so this pattern matches nothing",
                    node,
                    text,
                    spans,
                )
            )
            return _ANY_ENDPOINTS
        return acc

    # ------------------------------------------------------------------
    # Density estimation (warnings; needs stats)
    # ------------------------------------------------------------------
    def _check_density(self, pattern, text, spans, sink):
        if self.stats is None:
            return
        n = float(self.stats.num_nodes())
        if n <= 0:
            return
        budget_nnz = self.density_budget * n * n
        for star_node in _walk(pattern):
            if not isinstance(star_node, Star):
                continue
            estimate = self._estimate(star_node, n)
            if estimate > budget_nnz:
                sink.append(
                    self._diag(
                        WARNING,
                        "star-blowup",
                        "Kleene star closure estimated at ~{} nonzeros "
                        "({:.0%} dense over {} nodes); expect a "
                        "near-dense intermediate".format(
                            _fmt_count(estimate),
                            min(estimate / (n * n), 1.0),
                            _fmt_count(n),
                        ),
                        star_node,
                        text,
                        spans,
                    )
                )
        total = self._estimate(pattern, n)
        if total > budget_nnz:
            sink.append(
                self._diag(
                    WARNING,
                    "density-budget",
                    "estimated result density {:.0%} exceeds the "
                    "configured budget of {:.0%} ({} estimated "
                    "nonzeros over {} nodes)".format(
                        min(total / (n * n), 1.0),
                        self.density_budget,
                        _fmt_count(total),
                        _fmt_count(n),
                    ),
                    pattern,
                    text,
                    spans,
                )
            )

    def _estimate(self, node, n):
        """Estimated nnz of the subterm's matrix.

        The same uniform-sparsity surrogate the chain planner uses:
        a product of matrices with ``a`` and ``b`` nonzeros over ``n``
        nodes has expected nnz ``min(n^2, a * b / n)``.
        """
        dense = n * n
        if isinstance(node, Epsilon):
            return n
        if isinstance(node, Label):
            if node.name not in self.schema.labels:
                return 0.0
            return float(self.stats.label_nnz(node.name))
        if isinstance(node, Reverse):
            return self._estimate(node.operand, n)
        if isinstance(node, Skip):
            return self._estimate(node.operand, n)
        if isinstance(node, Nested):
            return min(self._estimate(node.operand, n), n)
        if isinstance(node, Star):
            operand = self._estimate(node.operand, n)
            degree = operand / n if n else 0.0
            if degree >= 1.0:
                # Average out-degree >= 1: the closure of the giant
                # component is effectively dense.
                return dense
            # Geometric series: nnz(I + M + M^2 + ...) under the
            # uniform surrogate with ratio `degree` < 1.
            return min(dense, n + operand / (1.0 - degree))
        if isinstance(node, Concat):
            acc = None
            for part in node.parts:
                part_nnz = self._estimate(part, n)
                if acc is None:
                    acc = part_nnz
                else:
                    acc = min(dense, acc * part_nnz / n if n else 0.0)
            return acc if acc is not None else 0.0
        if isinstance(node, Union):
            return min(
                dense, sum(self._estimate(part, n) for part in node.parts)
            )
        if isinstance(node, Conj):
            return min(self._estimate(part, n) for part in node.parts)
        raise TypeError("not a pattern: {!r}".format(node))

    # ------------------------------------------------------------------
    # Redundant spellings the canonicalizer collapses
    # ------------------------------------------------------------------
    def _check_redundancy(self, pattern, text, spans, sink):
        for node in _walk(pattern):
            if isinstance(node, Reverse) and isinstance(
                node.operand, Reverse
            ):
                sink.append(
                    self._diag(
                        WARNING,
                        "redundant-reverse",
                        "double reverse collapses to {!r}; drop both "
                        "'-' operators".format(str(node.operand.operand)),
                        node,
                        text,
                        spans,
                    )
                )
            elif isinstance(node, Union):
                seen = []
                for part in node.parts:
                    if part in seen:
                        sink.append(
                            self._diag(
                                WARNING,
                                "redundant-union",
                                "duplicate union branch {!r}; '+' is "
                                "set union, so the canonicalizer "
                                "drops the repeat".format(str(part)),
                                node,
                                text,
                                spans,
                            )
                        )
                        break
                    seen.append(part)


def _walk(pattern):
    yield pattern
    for child in pattern.children():
        yield from _walk(child)


def _sets_overlap(left, right):
    """Whether two source/target type sets intersect; ANY is universal."""
    if left is ANY:
        return right is ANY or bool(right)
    if right is ANY:
        return bool(left)
    return bool(left & right)


def _describe_types(types):
    if types is ANY:
        return "any"
    return "{" + ", ".join(sorted(types)) + "}" if types else "{}"


def _fmt_count(value):
    value = int(value)
    if value >= 10**9:
        return "{:.1f}B".format(value / 10**9)
    if value >= 10**6:
        return "{:.1f}M".format(value / 10**6)
    if value >= 10**4:
        return "{:.0f}k".format(value / 10**3)
    return str(value)
