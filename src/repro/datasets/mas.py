"""Synthetic Microsoft-Academic-Search-style databases (Section 7).

Entities: papers, conferences, research areas and keywords; edges:
``pub-in`` (paper in conference), ``p-area`` (paper in area), ``p-kw``
(paper has keyword), ``a-kw`` (area has keyword).  The paper uses MAS
both as an area-annotation source for DBLP and as an effectiveness
dataset; here it powers examples and extra effectiveness checks.

Keywords are shared between papers and their areas with probability
``keyword_affinity`` — that coherence is what makes keyword-based
similarity patterns informative.
"""

from repro.datasets.schemas import MAS_SCHEMA
from repro.datasets.synthetic import DatasetBundle, SeededGenerator
from repro.graph.database import GraphDatabase


def generate_mas(
    num_areas=10,
    num_confs=40,
    num_papers=400,
    num_keywords=120,
    keywords_per_area=6,
    keyword_affinity=0.7,
    seed=0,
):
    """Generate a MAS-style database.

    Each area owns a keyword vocabulary; papers draw most keywords from
    their area's vocabulary (with probability ``keyword_affinity``) and
    the rest uniformly, producing topic-coherent clusters.
    """
    gen = SeededGenerator(seed)
    database = GraphDatabase(MAS_SCHEMA)

    areas = gen.make_ids("area", num_areas)
    confs = gen.make_ids("conf", num_confs)
    papers = gen.make_ids("paper", num_papers)
    keywords = gen.make_ids("kw", num_keywords)

    for nodes, node_type in (
        (areas, "area"),
        (confs, "conf"),
        (papers, "paper"),
        (keywords, "keyword"),
    ):
        for node_id in nodes:
            database.add_node(node_id, node_type)

    area_keywords = {}
    for area in areas:
        vocabulary = gen.zipf_sample(keywords, keywords_per_area, exponent=0.4)
        area_keywords[area] = vocabulary
        for keyword in vocabulary:
            database.add_edge(area, "a-kw", keyword)

    conf_area = {
        conf: gen.zipf_choice(areas, exponent=0.6) for conf in confs
    }

    for paper in papers:
        conf = gen.zipf_choice(confs, exponent=0.8)
        area = conf_area[conf]
        database.add_edge(paper, "pub-in", conf)
        database.add_edge(paper, "p-area", area)
        for _ in range(gen.rng.randint(1, 4)):
            if gen.rng.random() < keyword_affinity:
                keyword = gen.rng.choice(area_keywords[area])
            else:
                keyword = gen.rng.choice(keywords)
            database.add_edge(paper, "p-kw", keyword)

    return DatasetBundle(
        database,
        info={
            "name": "MAS",
            "seed": seed,
            "num_areas": num_areas,
            "num_confs": num_confs,
            "num_papers": num_papers,
            "num_keywords": num_keywords,
        },
    )
