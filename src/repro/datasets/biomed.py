"""Synthetic BioMed-style biomedical databases (Figure 4 fragment).

Entities: phenotypes (arranged in an ``is-parent-of`` forest), anatomy
terms, proteins, DisOnt diseases, OMIM diseases, drugs, Reactome
pathways and microRNAs, with the association edges of the paper's
Figure 4.

The two *indirect* association labels are computed as the **exact**
derivation of the paper's tgds::

    (ph1, is-parent-of, ph2) & (ph1, ph-a-assoc, a)  -> (ph2, ph-a-indirect, a)
    (ph1, is-parent-of, ph2) & (dd, dd-ph-assoc, ph1) -> (dd, dd-ph-indirect, ph2)

so the BioMedT transformation (drop the indirect labels) is invertible on
the output by construction.

The generator also plants **ground truth** for the effectiveness study
(Table 3): for each of ``num_queries`` query diseases it wires one
*relevant drug* along the evaluation meta-path (disease -> indirectly
associated phenotype -> protein <- drug) with multiple supporting
proteins, standing in for the expert disease/drug relevance judgments of
the paper's NIH collaboration.
"""

from repro.datasets.schemas import BIOMED_SCHEMA
from repro.datasets.synthetic import DatasetBundle, SeededGenerator
from repro.graph.database import GraphDatabase


def generate_biomed(
    num_phenotypes=300,
    num_anatomy=100,
    num_proteins=500,
    num_diseases=150,
    num_drugs=120,
    num_pathways=60,
    num_microrna=80,
    num_omim=60,
    num_queries=30,
    signal_strength=3,
    seed=0,
):
    """Generate a BioMed-style database with planted drug relevance.

    Parameters
    ----------
    num_queries:
        How many diseases get a planted relevant drug (the paper uses a
        30-query expert workload).
    signal_strength:
        Number of shared proteins wiring each query disease to its
        relevant drug; higher means easier queries.
    """
    gen = SeededGenerator(seed)
    database = GraphDatabase(BIOMED_SCHEMA)

    phenotypes = gen.make_ids("phenotype", num_phenotypes)
    anatomy = gen.make_ids("anatomy", num_anatomy)
    proteins = gen.make_ids("protein", num_proteins)
    diseases = gen.make_ids("disease", num_diseases)
    drugs = gen.make_ids("drug", num_drugs)
    pathways = gen.make_ids("pathway", num_pathways)
    micrornas = gen.make_ids("microrna", num_microrna)
    omims = gen.make_ids("omim", num_omim)

    for nodes, node_type in (
        (phenotypes, "phenotype"),
        (anatomy, "anatomy"),
        (proteins, "protein"),
        (diseases, "disont-disease"),
        (drugs, "drug"),
        (pathways, "pathway"),
        (micrornas, "microrna"),
        (omims, "omim-disease"),
    ):
        for node_id in nodes:
            database.add_node(node_id, node_type)

    # Phenotype forest: each non-root gets one parent earlier in the list.
    for index, child in enumerate(phenotypes[1:], start=1):
        parent = phenotypes[gen.rng.randrange(0, index)]
        database.add_edge(parent, "is-parent-of", child)

    # Direct associations, popularity-skewed.
    def sprinkle(sources, label, targets, low, high, exponent=0.7):
        for source in sources:
            for target in gen.zipf_sample(
                targets, gen.rng.randint(low, high), exponent=exponent
            ):
                database.add_edge(source, label, target)

    sprinkle(phenotypes, "ph-a-assoc", anatomy, 0, 2)
    sprinkle(phenotypes, "ph-pr-assoc", proteins, 1, 3)
    sprinkle(phenotypes, "ph-m-assoc", micrornas, 0, 1)
    sprinkle(diseases, "dd-ph-assoc", phenotypes, 1, 3)
    sprinkle(proteins, "pr-dd-assoc", diseases, 0, 1)
    sprinkle(proteins, "is-member-of", pathways, 0, 2)
    sprinkle(proteins, "expressed-in", anatomy, 0, 2)
    sprinkle(proteins, "interacts-with", proteins, 0, 2)
    sprinkle(drugs, "targets", proteins, 1, 4)
    sprinkle(micrornas, "controls-expression-of", proteins, 0, 2)
    sprinkle(micrornas, "m-od-assoc", omims, 0, 1)

    # Plant the effectiveness ground truth before deriving indirect edges
    # so the planted paths get their indirect closure too.
    ground_truth = {}
    query_diseases = diseases[:num_queries]
    for index, disease in enumerate(query_diseases):
        drug = drugs[index % len(drugs)]
        parent = phenotypes[
            gen.rng.randrange(0, max(1, num_phenotypes // 2))
        ]
        children = sorted(database.successors(parent, "is-parent-of"))
        if not children:
            # Ensure the parent has a child so the indirect edge exists.
            child = phenotypes[
                gen.rng.randrange(num_phenotypes // 2, num_phenotypes)
            ]
            database.add_edge(parent, "is-parent-of", child)
        else:
            child = children[0]
        database.add_edge(disease, "dd-ph-assoc", parent)
        shared = gen.zipf_sample(proteins, signal_strength, exponent=0.3)
        for protein in shared:
            database.add_edge(child, "ph-pr-assoc", protein)
            database.add_edge(drug, "targets", protein)
        ground_truth[disease] = drug

    _derive_indirect_edges(database)

    return DatasetBundle(
        database,
        ground_truth=ground_truth,
        info={
            "name": "BioMed",
            "seed": seed,
            "num_phenotypes": num_phenotypes,
            "num_proteins": num_proteins,
            "num_diseases": num_diseases,
            "num_drugs": num_drugs,
            "num_queries": num_queries,
        },
    )


def _derive_indirect_edges(database):
    """Add exactly the closure of the two BioMed tgds (single step)."""
    parent_edges = list(database.edges("is-parent-of"))
    for parent, _, child in parent_edges:
        for anatomy_node in database.successors(parent, "ph-a-assoc"):
            database.add_edge(child, "ph-a-indirect", anatomy_node)
        for disease in database.predecessors(parent, "dd-ph-assoc"):
            database.add_edge(disease, "dd-ph-indirect", child)


def generate_biomed_small(seed=0, num_queries=30):
    """The small BioMed analogue used when SimRank/RWR must also run."""
    return generate_biomed(
        num_phenotypes=120,
        num_anatomy=40,
        num_proteins=180,
        num_diseases=60,
        num_drugs=50,
        num_pathways=25,
        num_microrna=30,
        num_omim=25,
        num_queries=num_queries,
        seed=seed,
    )
