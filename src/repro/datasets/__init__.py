"""Synthetic datasets following the paper's evaluation schemas."""

from repro.datasets.biomed import generate_biomed, generate_biomed_small
from repro.datasets.dblp import figure1_dblp, generate_dblp, generate_dblp_small
from repro.datasets.mas import generate_mas
from repro.datasets.scale import generate_dblp_scale
from repro.datasets.synthetic import (
    BUNDLE_VERSION,
    DatasetBundle,
    SeededGenerator,
)
from repro.datasets.workloads import sample_queries_by_degree, uniform_queries
from repro.datasets.wsu import generate_wsu

__all__ = [
    "BUNDLE_VERSION",
    "DatasetBundle",
    "SeededGenerator",
    "figure1_dblp",
    "generate_biomed",
    "generate_biomed_small",
    "generate_dblp",
    "generate_dblp_scale",
    "generate_dblp_small",
    "generate_mas",
    "generate_wsu",
    "sample_queries_by_degree",
    "uniform_queries",
]
