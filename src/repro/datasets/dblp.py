"""Synthetic DBLP-style bibliographic databases (Figure 2a).

Entities: authors, papers, proceedings, research areas.  Edges: ``w``
(author writes paper), ``p-in`` (paper published in proceedings), ``r-a``
(paper has research area).

The generator enforces the DBLP constraint by construction: research
areas are assigned to *proceedings*, and every paper inherits exactly its
proceedings' areas — hence any two papers of the same proceedings share
areas, and the DBLP2SIGM transformation is invertible on the output.
"""

from repro.datasets.schemas import DBLP_SCHEMA
from repro.datasets.synthetic import DatasetBundle, SeededGenerator
from repro.graph.database import GraphDatabase


def generate_dblp(
    num_areas=12,
    num_procs=60,
    num_papers=600,
    num_authors=300,
    max_areas_per_proc=3,
    max_papers_per_author=5,
    seed=0,
):
    """Generate a DBLP-style database.

    Every paper belongs to exactly one proceedings (as in real DBLP);
    proceedings are popularity-skewed; each proceedings draws 1 to
    ``max_areas_per_proc`` research areas, also popularity-skewed, so
    related venues overlap on areas the way SIGKDD and VLDB do in the
    paper's Figure 1.
    """
    gen = SeededGenerator(seed)
    database = GraphDatabase(DBLP_SCHEMA)

    areas = gen.make_ids("area", num_areas)
    procs = gen.make_ids("proc", num_procs)
    papers = gen.make_ids("paper", num_papers)
    authors = gen.make_ids("author", num_authors)

    for node, node_type in (
        (areas, "area"),
        (procs, "proc"),
        (papers, "paper"),
        (authors, "author"),
    ):
        for node_id in node:
            database.add_node(node_id, node_type)

    proc_areas = {}
    for proc in procs:
        count = gen.rng.randint(1, max_areas_per_proc)
        proc_areas[proc] = gen.zipf_sample(areas, count, exponent=0.8)

    for paper in papers:
        proc = gen.zipf_choice(procs, exponent=0.9)
        database.add_edge(paper, "p-in", proc)
        for area in proc_areas[proc]:
            database.add_edge(paper, "r-a", area)

    for author in authors:
        count = gen.rng.randint(1, max_papers_per_author)
        for paper in gen.zipf_sample(papers, count, exponent=0.5):
            database.add_edge(author, "w", paper)

    return DatasetBundle(
        database,
        info={
            "name": "DBLP",
            "seed": seed,
            "num_areas": num_areas,
            "num_procs": num_procs,
            "num_papers": num_papers,
            "num_authors": num_authors,
        },
    )


def generate_dblp_small(seed=0):
    """The "small DBLP" analogue used for SimRank-involving experiments."""
    return generate_dblp(
        num_areas=8,
        num_procs=25,
        num_papers=200,
        num_authors=100,
        seed=seed,
    )


def figure1_dblp():
    """The exact DBLP fragment of Figure 1(a), for worked examples/tests."""
    database = GraphDatabase(DBLP_SCHEMA)
    for area in ("SoftwareEngineering", "DataMining", "Databases"):
        database.add_node(area, "area")
    for paper in ("CodeMining", "PatternMining", "SimilarityMining"):
        database.add_node(paper, "paper")
    for proc in ("SIGKDD", "VLDB"):
        database.add_node(proc, "proc")
    database.add_edges(
        [
            ("CodeMining", "r-a", "SoftwareEngineering"),
            ("CodeMining", "r-a", "DataMining"),
            ("PatternMining", "r-a", "DataMining"),
            ("PatternMining", "r-a", "Databases"),
            ("SimilarityMining", "r-a", "DataMining"),
            ("SimilarityMining", "r-a", "Databases"),
            ("CodeMining", "p-in", "SIGKDD"),
            ("PatternMining", "p-in", "VLDB"),
            ("SimilarityMining", "p-in", "VLDB"),
        ]
    )
    return database
