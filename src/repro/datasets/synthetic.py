"""Shared utilities for the synthetic dataset generators.

The paper evaluates on real dumps (DBLP, MAS, WSU, BioMed) that we do not
have; the generators in this package produce seeded synthetic databases
over the *same schemas* that *satisfy the same constraints by
construction*, which is all the robustness theory depends on (see the
substitution notes in DESIGN.md).

Generators intentionally produce skewed (Zipf-ish) degree distributions:
the paper samples query workloads by node degree, and several baselines'
non-robustness is amplified by degree skew, so uniform graphs would make
the reproduction unrealistically tame.

.. data:: BUNDLE_VERSION

    Version tag of the generated-content stream.  The generators are
    deterministic per ``(seed, parameters, BUNDLE_VERSION)``; the tag is
    bumped whenever the sampling *implementation* changes the RNG
    consumption order, which re-versions every generated bundle at once
    instead of silently shifting content under a fixed seed.  Version 2
    replaced the O(count * |pool|) ``zipf_sample`` (per-pick list
    ``pop`` shifting) with cumulative-weight bisection.
"""

import bisect
import math
import random

#: Bumped when generator sampling changes RNG consumption (see module
#: docstring).  Stamped into every bundle's ``info`` dict.
BUNDLE_VERSION = 2


class SeededGenerator:
    """Base class carrying a deterministic RNG and id-minting helpers."""

    def __init__(self, seed=0):
        self.rng = random.Random(seed)
        # Cumulative Zipf weights, keyed by (pool size, exponent): the
        # generators draw from the same fixed pools thousands of times,
        # so the O(n) prefix-sum is paid once per pool, not per draw.
        self._zipf_cumulative = {}

    def make_ids(self, prefix, count):
        """``["prefix:0", ..., "prefix:count-1"]``."""
        return ["{}:{}".format(prefix, i) for i in range(count)]

    def _cumulative_weights(self, size, exponent):
        key = (size, exponent)
        cumulative = self._zipf_cumulative.get(key)
        if cumulative is None:
            total = 0.0
            cumulative = []
            for rank in range(size):
                total += 1.0 / ((rank + 1) ** exponent)
                cumulative.append(total)
            self._zipf_cumulative[key] = cumulative
        return cumulative

    def zipf_choice(self, items, exponent=1.0):
        """Pick one item with probability proportional to rank^-exponent.

        Items earlier in the list are "popular"; this is how conferences
        accumulate papers and proteins accumulate interactions.  One RNG
        draw plus a bisection over cached cumulative weights — the same
        arithmetic ``random.choices`` performs, without rebuilding the
        weight list per call.
        """
        cumulative = self._cumulative_weights(len(items), exponent)
        pick = bisect.bisect_right(
            cumulative, self.rng.random() * cumulative[-1]
        )
        return items[min(pick, len(items) - 1)]

    def zipf_sample(self, items, count, exponent=1.0):
        """Sample ``count`` *distinct* items, popularity-biased.

        Draws by bisection over cached cumulative weights, rejecting
        duplicates — O(count log n) expected when ``count`` is a small
        fraction of the pool.  When it is not (or rejection stalls on a
        pathologically skewed pool), the remainder falls back to one
        weighted pass without replacement (exponential sort keys), so a
        call never degrades past O(n log n).  Deterministic per seed;
        this implementation consumes the RNG differently from the
        quadratic pop-shift sampler it replaced, which is why
        ``BUNDLE_VERSION`` is 2.
        """
        count = min(count, len(items))
        if count <= 0:
            return []
        cumulative = self._cumulative_weights(len(items), exponent)
        total = cumulative[-1]
        chosen = []
        taken = set()
        if count * 4 <= len(items):
            # Rejection sampling: duplicates are rare while the sample
            # is a small fraction of the pool.  The attempt bound only
            # trips on extreme skew; the weighted pass below finishes.
            attempts_left = 16 * count + 32
            while len(chosen) < count and attempts_left:
                attempts_left -= 1
                pick = bisect.bisect_right(
                    cumulative, self.rng.random() * total
                )
                pick = min(pick, len(items) - 1)
                if pick not in taken:
                    taken.add(pick)
                    chosen.append(items[pick])
            if len(chosen) == count:
                return chosen
        # Dense fallback: weighted sampling without replacement via
        # exponential sort keys (Efraimidis-Spirakis) — rank i survives
        # with probability proportional to its Zipf weight.
        keyed = []
        for rank in range(len(items)):
            if rank in taken:
                continue
            weight = 1.0 / ((rank + 1) ** exponent)
            draw = 1.0 - self.rng.random()  # (0, 1]: log is finite
            keyed.append((-math.log(draw) / weight, rank))
        keyed.sort()
        chosen.extend(
            items[rank] for _, rank in keyed[: count - len(chosen)]
        )
        return chosen


class DatasetBundle:
    """A generated database plus the metadata experiments need.

    Attributes
    ----------
    database:
        The :class:`GraphDatabase`.
    ground_truth:
        Optional ``{query_node: relevant_node}`` mapping for MRR
        experiments (BioMed plants one relevant drug per query disease).
    info:
        Free-form dict with generation parameters, for reporting.
        Generators stamp ``bundle_version`` (see :data:`BUNDLE_VERSION`)
        so downstream golden files can tell which content stream they
        pinned.
    """

    def __init__(self, database, ground_truth=None, info=None):
        self.database = database
        self.ground_truth = dict(ground_truth or {})
        self.info = dict(info or {})
        self.info.setdefault("bundle_version", BUNDLE_VERSION)

    def __repr__(self):
        return "DatasetBundle({!r}, ground_truth={}, info={})".format(
            self.database, len(self.ground_truth), self.info
        )
