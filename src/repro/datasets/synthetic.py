"""Shared utilities for the synthetic dataset generators.

The paper evaluates on real dumps (DBLP, MAS, WSU, BioMed) that we do not
have; the generators in this package produce seeded synthetic databases
over the *same schemas* that *satisfy the same constraints by
construction*, which is all the robustness theory depends on (see the
substitution notes in DESIGN.md).

Generators intentionally produce skewed (Zipf-ish) degree distributions:
the paper samples query workloads by node degree, and several baselines'
non-robustness is amplified by degree skew, so uniform graphs would make
the reproduction unrealistically tame.
"""

import random


class SeededGenerator:
    """Base class carrying a deterministic RNG and id-minting helpers."""

    def __init__(self, seed=0):
        self.rng = random.Random(seed)

    def make_ids(self, prefix, count):
        """``["prefix:0", ..., "prefix:count-1"]``."""
        return ["{}:{}".format(prefix, i) for i in range(count)]

    def zipf_choice(self, items, exponent=1.0):
        """Pick one item with probability proportional to rank^-exponent.

        Items earlier in the list are "popular"; this is how conferences
        accumulate papers and proteins accumulate interactions.
        """
        weights = [
            1.0 / ((rank + 1) ** exponent) for rank in range(len(items))
        ]
        return self.rng.choices(items, weights=weights, k=1)[0]

    def zipf_sample(self, items, count, exponent=1.0):
        """Sample ``count`` *distinct* items, popularity-biased."""
        count = min(count, len(items))
        chosen = []
        pool = list(items)
        weights = [1.0 / ((rank + 1) ** exponent) for rank in range(len(pool))]
        for _ in range(count):
            pick = self.rng.choices(range(len(pool)), weights=weights, k=1)[0]
            chosen.append(pool.pop(pick))
            weights.pop(pick)
        return chosen


class DatasetBundle:
    """A generated database plus the metadata experiments need.

    Attributes
    ----------
    database:
        The :class:`GraphDatabase`.
    ground_truth:
        Optional ``{query_node: relevant_node}`` mapping for MRR
        experiments (BioMed plants one relevant drug per query disease).
    info:
        Free-form dict with generation parameters, for reporting.
    """

    def __init__(self, database, ground_truth=None, info=None):
        self.database = database
        self.ground_truth = dict(ground_truth or {})
        self.info = dict(info or {})

    def __repr__(self):
        return "DatasetBundle({!r}, ground_truth={}, info={})".format(
            self.database, len(self.ground_truth), self.info
        )
