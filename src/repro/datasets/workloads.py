"""Query workload sampling.

The paper samples query workloads "randomly ... based on their node
degrees" — high-degree entities are more likely queries, mirroring how
users mostly ask about prominent venues, courses or diseases.
"""

import random


def sample_queries_by_degree(database, node_type, count, seed=0):
    """Sample ``count`` distinct nodes of ``node_type``, degree-weighted.

    Nodes with zero degree are never sampled (a similarity query on an
    isolated node has no meaningful answers).  If fewer than ``count``
    candidates exist, all of them are returned (deterministic order).
    """
    candidates = [
        node
        for node in database.nodes_of_type(node_type)
        if database.degree(node) > 0
    ]
    if len(candidates) <= count:
        return sorted(candidates)
    rng = random.Random(seed)
    chosen = []
    pool = list(candidates)
    weights = [float(database.degree(node)) for node in pool]
    for _ in range(count):
        index = rng.choices(range(len(pool)), weights=weights, k=1)[0]
        chosen.append(pool.pop(index))
        weights.pop(index)
    return chosen


def uniform_queries(database, node_type, count, seed=0):
    """Uniformly sampled distinct queries of one node type."""
    candidates = [
        node
        for node in database.nodes_of_type(node_type)
        if database.degree(node) > 0
    ]
    if len(candidates) <= count:
        return sorted(candidates)
    rng = random.Random(seed)
    return rng.sample(candidates, count)
