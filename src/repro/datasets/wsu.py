"""Synthetic WSU-style course databases (Figure 3a).

Entities: instructors, course offerings, courses, subjects.  Edges:
``t`` (instructor teaches offering), ``co`` (offering of course), ``os``
(offering has subject).

The WSU constraint — offerings of the same course carry the same
subjects — holds by construction: subjects are a property of the course
and every offering inherits them.  WSUC2ALCH is therefore invertible on
the output.
"""

from repro.datasets.schemas import WSU_SCHEMA
from repro.datasets.synthetic import DatasetBundle, SeededGenerator
from repro.graph.database import GraphDatabase


def generate_wsu(
    num_subjects=15,
    num_courses=120,
    num_offers=450,
    num_instructors=80,
    max_subjects_per_course=2,
    seed=0,
):
    """Generate a WSU-style course database.

    The paper's real WSU dump has 1,124 nodes and 1,959 edges; the
    defaults here land in the same ballpark (665 nodes, ~1.5k edges) and
    scale linearly with the parameters.
    """
    gen = SeededGenerator(seed)
    database = GraphDatabase(WSU_SCHEMA)

    subjects = gen.make_ids("subject", num_subjects)
    courses = gen.make_ids("course", num_courses)
    offers = gen.make_ids("offer", num_offers)
    instructors = gen.make_ids("instructor", num_instructors)

    for nodes, node_type in (
        (subjects, "subject"),
        (courses, "course"),
        (offers, "offer"),
        (instructors, "instructor"),
    ):
        for node_id in nodes:
            database.add_node(node_id, node_type)

    course_subjects = {}
    for course in courses:
        count = gen.rng.randint(1, max_subjects_per_course)
        course_subjects[course] = gen.zipf_sample(
            subjects, count, exponent=0.7
        )

    for offer in offers:
        course = gen.zipf_choice(courses, exponent=0.8)
        database.add_edge(offer, "co", course)
        for subject in course_subjects[course]:
            database.add_edge(offer, "os", subject)
        instructor = gen.zipf_choice(instructors, exponent=0.5)
        database.add_edge(instructor, "t", offer)

    return DatasetBundle(
        database,
        info={
            "name": "WSU",
            "seed": seed,
            "num_subjects": num_subjects,
            "num_courses": num_courses,
            "num_offers": num_offers,
            "num_instructors": num_instructors,
        },
    )
