"""Schemas of the paper's four evaluation datasets and their variants.

Figures 2-4 of the paper, in this library's vocabulary:

* **DBLP** (Fig. 2a): ``w`` author->paper, ``p-in`` paper->proc,
  ``r-a`` paper->area.  Constraint: papers published in the same
  proceedings share their research areas (Example 1 / Section 7.1).
* **SIGMOD Record style** (Fig. 2b): ``r-a`` instead connects proc->area.
* **WSU** (Fig. 3a): ``t`` instructor->offer, ``co`` offer->course,
  ``os`` offer->subject.  Constraint: offerings of the same course have
  the same subjects.
* **Alchemy UW-CSE style** (Fig. 3b): ``cs`` course->subject replaces
  ``os``.
* **BioMed** (Fig. 4, representative fragment): phenotype/anatomy/
  protein/disease/drug/pathway/miRNA nodes; the two ``indirect-
  associated-with`` labels are derivable from ``is-parent-of`` plus the
  direct associations (the paper's two tgds).
* **MAS** (Section 7): papers, conferences, areas, keywords.
"""

from repro.constraints.tgd import parse_tgd
from repro.graph.schema import Schema

# ----------------------------------------------------------------------
# Bibliographic schemas (Figure 2)
# ----------------------------------------------------------------------
DBLP_CONSTRAINT = parse_tgd(
    "(x1, r-a, x3) & (x1, p-in, x4) & (x2, p-in, x4) -> (x2, r-a, x3)"
)

DBLP_SCHEMA = Schema(
    labels=["w", "p-in", "r-a"],
    constraints=[DBLP_CONSTRAINT],
    node_types={
        "w": ("author", "paper"),
        "p-in": ("paper", "proc"),
        "r-a": ("paper", "area"),
    },
)

SIGM_CONSTRAINT = parse_tgd(
    "(x1, p-in, x2) & (x1, p-in, x5) & (x5, r-a, x3) -> (x2, r-a, x3)"
)

SIGM_SCHEMA = Schema(
    labels=["w", "p-in", "r-a"],
    constraints=[SIGM_CONSTRAINT],
    node_types={
        "w": ("author", "paper"),
        "p-in": ("paper", "proc"),
        "r-a": ("proc", "area"),
    },
)

# DBLP2SIGMX adds publication-record nodes linking authors to proceedings.
SIGMX_SCHEMA = Schema(
    labels=["w", "p-in", "r-a", "rec-of", "rec-in"],
    constraints=[SIGM_CONSTRAINT],
    node_types={
        "w": ("author", "paper"),
        "p-in": ("paper", "proc"),
        "r-a": ("proc", "area"),
        "rec-of": ("pubrec", "author"),
        "rec-in": ("pubrec", "proc"),
    },
)

# ----------------------------------------------------------------------
# Course schemas (Figure 3)
# ----------------------------------------------------------------------
WSU_CONSTRAINT = parse_tgd(
    "(x1, os, x3) & (x1, co, x4) & (x2, co, x4) -> (x2, os, x3)"
)

WSU_SCHEMA = Schema(
    labels=["t", "co", "os"],
    constraints=[WSU_CONSTRAINT],
    node_types={
        "t": ("instructor", "offer"),
        "co": ("offer", "course"),
        "os": ("offer", "subject"),
    },
)

ALCH_CONSTRAINT = parse_tgd(
    "(x1, co, x2) & (x1, co, x5) & (x5, cs, x3) -> (x2, cs, x3)"
)

ALCH_SCHEMA = Schema(
    labels=["t", "co", "cs"],
    constraints=[ALCH_CONSTRAINT],
    node_types={
        "t": ("instructor", "offer"),
        "co": ("offer", "course"),
        "cs": ("course", "subject"),
    },
)

# ----------------------------------------------------------------------
# BioMed schemas (Figure 4 fragment)
# ----------------------------------------------------------------------
BIOMED_PH_A_CONSTRAINT = parse_tgd(
    "(x1, is-parent-of, x2) & (x1, ph-a-assoc, x3) -> (x2, ph-a-indirect, x3)"
)
BIOMED_DD_PH_CONSTRAINT = parse_tgd(
    "(x1, is-parent-of, x2) & (x3, dd-ph-assoc, x1) -> (x3, dd-ph-indirect, x2)"
)

_BIOMED_BASE_TYPES = {
    "interacts-with": ("protein", "protein"),
    "targets": ("drug", "protein"),
    "is-member-of": ("protein", "pathway"),
    "expressed-in": ("protein", "anatomy"),
    "controls-expression-of": ("microrna", "protein"),
    "is-parent-of": ("phenotype", "phenotype"),
    "ph-a-assoc": ("phenotype", "anatomy"),
    "ph-pr-assoc": ("phenotype", "protein"),
    "dd-ph-assoc": ("disont-disease", "phenotype"),
    "pr-dd-assoc": ("protein", "disont-disease"),
    "m-od-assoc": ("microrna", "omim-disease"),
    "ph-m-assoc": ("phenotype", "microrna"),
}

BIOMED_SCHEMA = Schema(
    labels=list(_BIOMED_BASE_TYPES) + ["ph-a-indirect", "dd-ph-indirect"],
    constraints=[BIOMED_PH_A_CONSTRAINT, BIOMED_DD_PH_CONSTRAINT],
    node_types={
        **_BIOMED_BASE_TYPES,
        "ph-a-indirect": ("phenotype", "anatomy"),
        "dd-ph-indirect": ("disont-disease", "phenotype"),
    },
)

# The BioMedT target: the derivable indirect labels are removed.
BIOMED_T_SCHEMA = Schema(
    labels=list(_BIOMED_BASE_TYPES),
    constraints=[],
    node_types=_BIOMED_BASE_TYPES,
)

# ----------------------------------------------------------------------
# MAS (Microsoft Academic Search subset; Section 7 effectiveness study)
# ----------------------------------------------------------------------
MAS_SCHEMA = Schema(
    labels=["pub-in", "p-area", "p-kw", "a-kw"],
    constraints=[],
    node_types={
        "pub-in": ("paper", "conf"),
        "p-area": ("paper", "area"),
        "p-kw": ("paper", "keyword"),
        "a-kw": ("area", "keyword"),
    },
)
