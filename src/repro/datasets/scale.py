"""Scale-parameterized DBLP-like generator (power-law degree skew).

The paper's figure-scale generators top out around 10^3 edges; proving
the engine survives |V| in the millions needs databases three to five
orders of magnitude larger, generated without quadratic blowup.  This
generator targets an *edge budget* (10^5 / 10^6 / 10^7) and derives the
entity counts from it, sampling every skewed assignment with vectorized
cumulative-weight bisection (O(E log V) total) instead of the per-draw
Python paths of the figure-scale generators.

Schema fidelity: same DBLP schema and the same structural constraint by
construction — research areas attach to *proceedings* and every paper
inherits exactly its proceedings' areas — so Algorithm-1 expansion and
the invertible-transformation machinery apply to the scale tiers
unchanged.

Skew calibration: venue popularity and author productivity are Zipf,
but with *milder* exponents than the figure-scale generators (0.3 and
0.4 by default).  With hard skew, venue-conditioned products such as
``p-in.p-in-`` grow a dense quadratic block under the top venue
(sum over venues of size^2); the default exponents keep meta-path
products sub-quadratic at every tier, which is what lets the scale
bench measure *engine* behavior rather than an artifact of one
pathological venue.  (The memory budget exists precisely for workloads
that do hit such products — see ``CommutingMatrixEngine``.)
"""

import numpy as np

from repro.datasets.schemas import DBLP_SCHEMA
from repro.datasets.synthetic import BUNDLE_VERSION, DatasetBundle
from repro.exceptions import ConfigurationError
from repro.graph.database import GraphDatabase


def _zipf_indices(rng, size, pool, exponent):
    """``size`` Zipf-skewed draws from ``range(pool)`` (vectorized)."""
    weights = np.arange(1, pool + 1, dtype=np.float64) ** -float(exponent)
    cumulative = np.cumsum(weights)
    draws = rng.random(size) * cumulative[-1]
    picks = np.searchsorted(cumulative, draws, side="right")
    return np.minimum(picks, pool - 1)


def generate_dblp_scale(
    num_edges,
    seed=0,
    proc_exponent=0.3,
    author_exponent=0.4,
    max_areas_per_proc=3,
    max_papers_per_author=5,
):
    """Generate a DBLP-like database with ~``num_edges`` edges.

    Entity counts are derived from the edge budget: one ``p-in`` and
    1-3 inherited ``r-a`` edges per paper, the remaining budget spent
    on ``w`` edges at ~3 papers per author.  Set semantics deduplicate
    repeated author-paper draws, so the realized edge count lands a few
    percent under the target; the exact figure is in
    ``bundle.info["num_edges"]``.

    ``bundle.info["suggested_queries"]`` holds the highest-authored
    papers (degree-biased query nodes, known from the sampling counts
    for free — no O(|V| * labels) degree scan at 10^7 edges).
    """
    if num_edges < 100:
        raise ConfigurationError(
            "generate_dblp_scale needs num_edges >= 100, got {}; use "
            "generate_dblp for figure-scale databases".format(num_edges)
        )
    rng = np.random.default_rng(seed)
    num_papers = num_edges // 5
    num_procs = max(2, num_papers // 64)
    num_areas = max(4, num_procs // 16)

    papers = ["paper:{}".format(i) for i in range(num_papers)]
    procs = ["proc:{}".format(i) for i in range(num_procs)]
    areas = ["area:{}".format(i) for i in range(num_areas)]

    database = GraphDatabase(DBLP_SCHEMA)
    for ids, node_type in ((areas, "area"), (procs, "proc")):
        for node in ids:
            database.add_node(node, node_type)
    for node in papers:
        database.add_node(node, "paper")

    # Venues draw 1..max_areas_per_proc research areas, popularity-
    # skewed; papers inherit their venue's areas (the DBLP constraint).
    area_counts = rng.integers(1, max_areas_per_proc + 1, size=num_procs)
    area_draws = _zipf_indices(
        rng, int(area_counts.sum()), num_areas, 0.8
    ).tolist()
    proc_areas = []
    offset = 0
    for count in area_counts.tolist():
        chosen = sorted(set(area_draws[offset : offset + count]))
        proc_areas.append([areas[i] for i in chosen])
        offset += count

    paper_proc = _zipf_indices(
        rng, num_papers, num_procs, proc_exponent
    ).tolist()
    database.add_edges_bulk(
        "p-in",
        zip(papers, (procs[i] for i in paper_proc)),
    )
    database.add_edges_bulk(
        "r-a",
        (
            (paper, area)
            for paper, proc_index in zip(papers, paper_proc)
            for area in proc_areas[proc_index]
        ),
    )

    remaining = max(num_edges - database.num_edges(), 1)
    mean_papers = (1 + max_papers_per_author) / 2.0
    num_authors = max(2, int(remaining / mean_papers))
    authors = ["author:{}".format(i) for i in range(num_authors)]
    for node in authors:
        database.add_node(node, "author")
    write_counts = rng.integers(
        1, max_papers_per_author + 1, size=num_authors
    )
    total_writes = int(write_counts.sum())
    author_index = np.repeat(np.arange(num_authors), write_counts)
    paper_index = _zipf_indices(
        rng, total_writes, num_papers, author_exponent
    )
    database.add_edges_bulk(
        "w",
        zip(
            (authors[i] for i in author_index.tolist()),
            (papers[i] for i in paper_index.tolist()),
        ),
    )

    # Degree-biased query candidates from the sampling counts we
    # already hold: the most-authored papers.
    authored = np.bincount(paper_index, minlength=num_papers)
    top = np.argsort(authored, kind="stable")[::-1][:64]
    suggested = [papers[i] for i in top.tolist() if authored[i] > 0]

    return DatasetBundle(
        database,
        info={
            "name": "DBLP-scale",
            "seed": seed,
            "bundle_version": BUNDLE_VERSION,
            "target_edges": num_edges,
            "num_edges": database.num_edges(),
            "num_nodes": database.num_nodes(),
            "num_areas": num_areas,
            "num_procs": num_procs,
            "num_papers": num_papers,
            "num_authors": num_authors,
            "proc_exponent": proc_exponent,
            "author_exponent": author_exponent,
            "suggested_queries": suggested,
        },
    )
