"""Graph schemas: a finite set of edge labels plus a set of constraints.

A schema in the paper (Section 2) is a pair ``(L, Gamma)`` where ``L`` is a
finite label set and ``Gamma`` a finite set of tgd/egd constraints.  The
constraint objects themselves live in :mod:`repro.constraints`; the schema
only stores them and answers membership questions, mirroring the paper's
"label in S" / "constraint in S" notation.
"""

from repro.exceptions import SchemaError, UnknownLabelError


class Schema:
    """A graph schema ``(labels, constraints)``.

    Parameters
    ----------
    labels:
        Iterable of edge-label strings.  Labels are case-sensitive and must
        be non-empty.
    constraints:
        Iterable of :class:`repro.constraints.tgd.Tgd` (or compatible)
        objects.  Every label mentioned by a constraint must be in
        ``labels``.
    node_types:
        Optional mapping from label to a ``(source_type, target_type)``
        pair.  Node types are *metadata* used by dataset generators and by
        HeteSim's asymmetric-path handling; the formal model in the paper
        does not type nodes, so everything works when this is empty.
    """

    def __init__(self, labels, constraints=(), node_types=None):
        self._labels = frozenset(labels)
        for label in self._labels:
            if not label or not isinstance(label, str):
                raise SchemaError(
                    "labels must be non-empty strings, got {!r}".format(label)
                )
        self._constraints = tuple(constraints)
        self._node_types = dict(node_types or {})
        for constraint in self._constraints:
            missing = constraint.labels() - self._labels
            if missing:
                raise SchemaError(
                    "constraint {} uses labels outside the schema: {}".format(
                        constraint, sorted(missing)
                    )
                )
        for label, endpoints in self._node_types.items():
            if label not in self._labels:
                raise UnknownLabelError(label, self._labels)
            if len(tuple(endpoints)) != 2:
                raise SchemaError(
                    "node_types[{!r}] must be a (source, target) pair".format(label)
                )

    @property
    def labels(self):
        """The frozen set of edge labels."""
        return self._labels

    @property
    def constraints(self):
        """The tuple of constraints attached to this schema."""
        return self._constraints

    @property
    def node_types(self):
        """Mapping label -> (source node type, target node type), may be empty."""
        return dict(self._node_types)

    def __contains__(self, item):
        """``label in schema`` or ``constraint in schema`` (paper's notation)."""
        if isinstance(item, str):
            return item in self._labels
        return item in self._constraints

    def require_label(self, label):
        """Raise :class:`UnknownLabelError` unless ``label`` is in the schema."""
        if label not in self._labels:
            raise UnknownLabelError(label, self._labels)

    def endpoint_types(self, label):
        """Return ``(source_type, target_type)`` for ``label`` or ``None``."""
        self.require_label(label)
        return self._node_types.get(label)

    def nontrivial_constraints(self):
        """Constraints that actually restrict instances (Section 6.1).

        Trivial constraints (premise logically equal to conclusion) induce
        no structural variation, so pattern generation skips them.
        """
        return tuple(c for c in self._constraints if not c.is_trivial())

    def with_constraints(self, constraints):
        """A copy of this schema with ``constraints`` replacing the old set."""
        return Schema(self._labels, constraints, self._node_types)

    def with_labels(self, extra_labels, extra_node_types=None):
        """A copy of this schema with additional labels (and optional types)."""
        node_types = dict(self._node_types)
        node_types.update(extra_node_types or {})
        return Schema(
            self._labels | frozenset(extra_labels), self._constraints, node_types
        )

    def __eq__(self, other):
        if not isinstance(other, Schema):
            return NotImplemented
        return (
            self._labels == other._labels
            and self._constraints == other._constraints
        )

    def __hash__(self):
        return hash((self._labels, self._constraints))

    def __repr__(self):
        return "Schema(labels={}, constraints={})".format(
            sorted(self._labels), len(self._constraints)
        )
