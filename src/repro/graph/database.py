"""The graph database engine.

A database ``D`` over a label set ``L`` is a directed graph ``(V, E)`` with
``E`` a subset of ``V x L x V`` (Section 2 of the paper).  We additionally
keep an optional *node type* per node — purely metadata used by dataset
generators, workload samplers and HeteSim; none of the formal machinery
depends on it.

Design notes
------------
* Node ids are arbitrary hashable values (the paper fixes a countable id
  universe).  Dataset generators use strings like ``"paper:17"``.
* Edges form a *set*: adding the same ``(u, a, v)`` twice is a no-op, which
  matches the paper's set-of-edges definition.  Parallel edges with
  different labels are of course allowed.
* Both directions are indexed so reverse traversal (``a-``) is O(1) per
  neighbor.
"""

from collections import defaultdict

from repro.exceptions import (
    NodeTypeConflictError,
    UnknownEdgeError,
    UnknownLabelError,
    UnknownNodeError,
)


class GraphDatabase:
    """A labeled directed graph with set semantics on edges.

    Parameters
    ----------
    schema:
        The :class:`repro.graph.schema.Schema` this database instantiates.
        Every added edge label is validated against it.
    """

    def __init__(self, schema):
        self._schema = schema
        self._nodes = {}
        # label -> {u -> set(v)} and the reverse orientation.
        self._out = defaultdict(lambda: defaultdict(set))
        self._in = defaultdict(lambda: defaultdict(set))
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self._schema

    def add_node(self, node, node_type=None):
        """Add ``node`` (idempotent).  Returns the node id for chaining.

        A node's type may be set once: re-adding with ``None`` or with
        the same type is a no-op, upgrading an untyped node to a type is
        allowed, but a *conflicting* non-None type raises
        :class:`~repro.exceptions.NodeTypeConflictError` instead of
        silently keeping the old type.
        """
        if node not in self._nodes:
            self._nodes[node] = node_type
        elif node_type is not None:
            existing = self._nodes[node]
            if existing is None:
                self._nodes[node] = node_type
            elif existing != node_type:
                raise NodeTypeConflictError(node, existing, node_type)
        return node

    def add_edge(self, source, label, target):
        """Add edge ``(source, label, target)``; endpoints are auto-added."""
        if label not in self._schema:
            raise UnknownLabelError(label, self._schema.labels)
        self.add_node(source)
        self.add_node(target)
        targets = self._out[label][source]
        if target not in targets:
            targets.add(target)
            self._in[label][target].add(source)
            self._edge_count += 1

    def add_edges(self, edges):
        """Add an iterable of ``(source, label, target)`` triples."""
        for source, label, target in edges:
            self.add_edge(source, label, target)

    def add_edges_bulk(self, label, pairs):
        """Add many ``(source, target)`` edges of one label at once.

        The bulk-construction path for the scale generators: one schema
        check for the whole batch and local bindings inside the loop
        instead of per-edge method dispatch (~2-3x over ``add_edge`` at
        millions of edges).  Semantics are identical to repeated
        :meth:`add_edge` calls — endpoints auto-added untyped, set
        semantics on duplicates.  Returns the number of edges actually
        added.
        """
        if label not in self._schema:
            raise UnknownLabelError(label, self._schema.labels)
        nodes = self._nodes
        out = self._out[label]
        backward = self._in[label]
        added = 0
        for source, target in pairs:
            if source not in nodes:
                nodes[source] = None
            if target not in nodes:
                nodes[target] = None
            targets = out[source]
            if target not in targets:
                targets.add(target)
                backward[target].add(source)
                added += 1
        self._edge_count += added
        return added

    def remove_edge(self, source, label, target):
        """Remove an edge.

        Raises :class:`~repro.exceptions.UnknownEdgeError` (a
        ``KeyError`` subclass, so existing guards keep working) when the
        edge is absent.
        """
        targets = self._out[label].get(source)
        if not targets or target not in targets:
            raise UnknownEdgeError(source, label, target)
        targets.discard(target)
        if not targets:
            del self._out[label][source]
        sources = self._in[label][target]
        sources.discard(source)
        if not sources:
            del self._in[label][target]
        self._edge_count -= 1

    def apply_delta(self, edges_added=(), edges_removed=(), nodes_added=()):
        """Validate and apply one batch delta; returns what actually changed.

        ``edges_added`` / ``edges_removed`` are ``(source, label, target)``
        triples and ``nodes_added`` holds node ids or ``(node, type)``
        pairs.  The whole batch is **validated before anything mutates**
        (unknown labels, absent or doubly-removed edges, node-type
        conflicts), so a failing delta raises with the database
        untouched — the atomicity the incremental serving path relies
        on.  Removals apply before additions (re-adding a removed edge
        in the same batch is legal and nets out).

        Returns ``(added, removed, new_nodes)``: the edges *actually*
        added (set semantics — re-adding a present edge is a no-op and
        is not reported), the edges removed, and the genuinely new node
        ids (explicit or auto-added endpoints) in insertion order.
        Exactly the information a :class:`~repro.graph.matrices.MatrixView`
        needs to patch itself instead of rebuilding.
        """
        edges_added = [tuple(edge) for edge in edges_added]
        edges_removed = [tuple(edge) for edge in edges_removed]
        nodes_added = [
            entry if isinstance(entry, tuple) else (entry, None)
            for entry in nodes_added
        ]
        # --- validate (nothing below may fail once mutation starts) ---
        for _, label, _ in edges_added:
            if label not in self._schema:
                raise UnknownLabelError(label, self._schema.labels)
        seen = set()
        for edge in edges_removed:
            if edge in seen or not self.has_edge(*edge):
                raise UnknownEdgeError(*edge)
            seen.add(edge)
        declared = {}
        for node, node_type in nodes_added:
            if node_type is None:
                continue
            existing = declared.get(node)
            if existing is None and self.has_node(node):
                existing = self.node_type(node)
            if existing is not None and existing != node_type:
                raise NodeTypeConflictError(node, existing, node_type)
            declared[node] = node_type
        # --- mutate ---
        new_nodes = []
        for node, node_type in nodes_added:
            if not self.has_node(node):
                new_nodes.append(node)
            self.add_node(node, node_type)
        for edge in edges_removed:
            self.remove_edge(*edge)
        added = []
        for source, label, target in edges_added:
            if self.has_edge(source, label, target):
                continue
            for endpoint in (source, target):
                # Added eagerly so a new self-loop endpoint (source is
                # target) is reported once, not twice.
                if not self.has_node(endpoint):
                    new_nodes.append(endpoint)
                    self.add_node(endpoint)
            self.add_edge(source, label, target)
            added.append((source, label, target))
        return added, edges_removed, new_nodes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes(self):
        """An iterator over node ids (insertion order)."""
        return iter(self._nodes)

    def node_type(self, node):
        """The node's type string, or ``None`` if untyped/unknown node."""
        if node not in self._nodes:
            raise UnknownNodeError(node)
        return self._nodes[node]

    def nodes_of_type(self, node_type):
        """All node ids whose type equals ``node_type`` (insertion order)."""
        return [n for n, t in self._nodes.items() if t == node_type]

    def edges(self, label=None):
        """Iterate ``(source, label, target)`` triples, optionally filtered."""
        labels = [label] if label is not None else list(self._out)
        for lab in labels:
            for source, targets in self._out[lab].items():
                for target in targets:
                    yield (source, lab, target)

    def adjacency_lists(self, label):
        """Iterate ``(source, set_of_targets)`` for one label.

        The bulk counterpart of :meth:`edges`: one yield per source
        instead of one per edge, so matrix construction can map a whole
        neighbor set through the node indexer at once.  The yielded sets
        are the live internal ones — callers must not mutate them.
        """
        if label not in self._schema:
            raise UnknownLabelError(label, self._schema.labels)
        return self._out[label].items()

    def has_node(self, node):
        return node in self._nodes

    def has_edge(self, source, label, target):
        return target in self._out[label].get(source, ())

    def successors(self, node, label):
        """Nodes ``v`` with an edge ``(node, label, v)``."""
        return set(self._out[label].get(node, ()))

    def predecessors(self, node, label):
        """Nodes ``u`` with an edge ``(u, label, node)``."""
        return set(self._in[label].get(node, ()))

    def degree(self, node):
        """Total degree (in + out) across all labels."""
        if node not in self._nodes:
            raise UnknownNodeError(node)
        total = 0
        for label in self._out:
            total += len(self._out[label].get(node, ()))
            total += len(self._in[label].get(node, ()))
        return total

    def num_nodes(self):
        return len(self._nodes)

    def num_edges(self):
        return self._edge_count

    def used_labels(self):
        """Labels that occur on at least one edge."""
        return {label for label in self._out if self._out[label]}

    def label_pairs(self, label):
        """The binary relation ``[[label]]_D`` as a set of ``(u, v)`` pairs."""
        if label not in self._schema:
            raise UnknownLabelError(label, self._schema.labels)
        return {
            (source, target)
            for source, targets in self._out[label].items()
            for target in targets
        }

    # ------------------------------------------------------------------
    # Copying / comparison
    # ------------------------------------------------------------------
    def copy(self, schema=None):
        """A deep copy, optionally re-homed onto a different schema.

        Bulk-copies the internal indexes instead of replaying
        ``add_edge`` per edge — the serving layer copies the database on
        every live update, so this is on the update hot path.  When
        re-homing onto a different schema, every used label is validated
        against it (the per-edge path would have raised on the first
        offending edge).
        """
        if schema is not None and schema is not self._schema:
            for label in self.used_labels():
                if label not in schema:
                    raise UnknownLabelError(label, schema.labels)
        clone = GraphDatabase(schema or self._schema)
        clone._nodes = dict(self._nodes)
        for label, adjacency in self._out.items():
            if adjacency:
                clone._out[label] = defaultdict(
                    set,
                    {
                        source: set(targets)
                        for source, targets in adjacency.items()
                    },
                )
        for label, adjacency in self._in.items():
            if adjacency:
                clone._in[label] = defaultdict(
                    set,
                    {
                        target: set(sources)
                        for target, sources in adjacency.items()
                    },
                )
        clone._edge_count = self._edge_count
        return clone

    def edge_set(self):
        """All edges as a frozenset of triples (for equality checks)."""
        return frozenset(self.edges())

    def same_content(self, other):
        """True when both databases have identical node and edge sets.

        This is the notion of database identity used for inverse
        transformations: ``Sigma_TS(Sigma_ST(I)) == I`` exactly.
        """
        return (
            set(self._nodes) == set(other._nodes)
            and self.edge_set() == other.edge_set()
        )

    def __repr__(self):
        return "GraphDatabase(nodes={}, edges={})".format(
            self.num_nodes(), self.num_edges()
        )
