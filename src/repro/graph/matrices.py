"""Sparse adjacency matrices for a graph database.

The commuting-matrix computation of Section 4.3 works on per-label
adjacency matrices ``A_l``.  This module provides a :class:`NodeIndexer`
(stable node-id <-> row index mapping) and a :class:`MatrixView` that
extracts and caches CSR matrices from a :class:`GraphDatabase`.

Matrices use float64: instance counts can exceed int32 on long patterns
and SciPy's sparse matmul is best-tuned for floats.  Counts are exact as
long as they stay below 2**53, which vastly exceeds anything a realistic
pattern produces.
"""

import threading

import numpy as np
import scipy.sparse as sp

from repro.exceptions import UnknownNodeError


class NodeIndexer:
    """A stable bijection between node ids and ``0..n-1`` matrix indices."""

    def __init__(self, nodes):
        self._ids = list(nodes)
        self._index = {node: i for i, node in enumerate(self._ids)}
        if len(self._index) != len(self._ids):
            raise ValueError("duplicate node ids passed to NodeIndexer")

    def __len__(self):
        return len(self._ids)

    def index_of(self, node):
        try:
            return self._index[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def node_at(self, index):
        return self._ids[index]

    def __contains__(self, node):
        return node in self._index

    @property
    def ids(self):
        return list(self._ids)


class MatrixView:
    """Per-label sparse adjacency matrices over a fixed node ordering.

    Parameters
    ----------
    database:
        The :class:`repro.graph.database.GraphDatabase` to project.
    indexer:
        Optional :class:`NodeIndexer`; defaults to the database's node
        insertion order.  Pass a shared indexer when comparing matrices
        across structural variants of the same database (node ids are
        preserved by invertible transformations, so a shared ordering makes
        entries directly comparable).

    The view is a *snapshot*: mutate the database afterwards and the cached
    matrices go stale.  Build a fresh view after mutation (or serve through
    :class:`~repro.api.service.SimilarityService`, which swaps snapshots
    for you).

    The view is thread-safe: the adjacency and candidate-index caches are
    lock-guarded with double-checked access (matrices are built outside
    the lock and published under it), so any number of threads can score
    against one shared view.
    """

    def __init__(self, database, indexer=None):
        self._database = database
        self._indexer = indexer or NodeIndexer(database.nodes())
        self._lock = threading.RLock()
        self._cache = {}
        self._candidates = {}
        self._candidate_node_count = database.num_nodes()

    @property
    def indexer(self):
        return self._indexer

    @property
    def database(self):
        return self._database

    def num_nodes(self):
        return len(self._indexer)

    def adjacency(self, label):
        """The CSR adjacency matrix ``A_label`` (entries are 0/1 counts)."""
        matrix = self._cache.get(label)
        if matrix is None:
            # Build outside the lock (edge iteration can be slow), then
            # publish under it; a concurrent duplicate build loses the
            # race and every caller gets the one published matrix.
            built = self._build(label)
            with self._lock:
                matrix = self._cache.get(label)
                if matrix is None:
                    matrix = self._cache.setdefault(label, built)
        return matrix

    def _build(self, label):
        self._database.schema.require_label(label)
        n = len(self._indexer)
        rows, cols = [], []
        for source, _, target in self._database.edges(label):
            if source in self._indexer and target in self._indexer:
                rows.append(self._indexer.index_of(source))
                cols.append(self._indexer.index_of(target))
        data = np.ones(len(rows), dtype=np.float64)
        matrix = sp.csr_matrix(
            (data, (rows, cols)), shape=(n, n), dtype=np.float64
        )
        matrix.sum_duplicates()
        return matrix

    def candidate_index(self, node_type=None):
        """Cached ``(nodes, columns)`` answer-candidate arrays for a type.

        ``nodes`` lists the eligible answer nodes sorted by ``str`` (the
        :class:`~repro.similarity.base.Ranking` tie-break order) and
        ``columns`` holds their indexer positions as one ``intp`` array,
        so candidate filtering in the array-native scoring path is a
        single fancy-index slice instead of a per-node dict loop.
        ``node_type`` is the resolved answer type of a query — ``None``
        means every node (untyped queries).

        A node of the requested type that is missing from the indexer
        raises :class:`~repro.exceptions.UnknownNodeError`: scoring a
        candidate the snapshot does not cover is an error, not a zero
        score.  The cache revalidates against the database's node count
        on every call, so a node added after the view was built raises
        the same error whether or not the index was already warm (no
        silently stale candidate list).  Other mutations — edge changes,
        retyping an existing node — follow the view's general snapshot
        rule: build a fresh view after mutating.
        """
        with self._lock:
            if self._database.num_nodes() != self._candidate_node_count:
                self._candidates.clear()
                self._candidate_node_count = self._database.num_nodes()
            key = ("type", node_type) if node_type is not None else ("all",)
            cached = self._candidates.get(key)
            if cached is None:
                if node_type is None:
                    eligible = list(self._database.nodes())
                else:
                    eligible = self._database.nodes_of_type(node_type)
                eligible.sort(key=str)
                columns = np.array(
                    [self._indexer.index_of(node) for node in eligible],
                    dtype=np.intp,
                )
                cached = (eligible, columns)
                self._candidates[key] = cached
        return cached

    def query_indices(self, nodes):
        """Indexer positions for ``nodes`` as one ``intp`` array.

        The shared node->index resolution step of every batch scoring
        path; a node outside the snapshot raises
        :class:`~repro.exceptions.UnknownNodeError` (scoring a node the
        snapshot does not cover is an error, not a zero score).
        """
        return np.array(
            [self._indexer.index_of(node) for node in nodes], dtype=np.intp
        )

    def identity(self):
        """The identity matrix (the ``epsilon`` pattern's matrix)."""
        return sp.identity(len(self._indexer), dtype=np.float64, format="csr")

    def zeros(self):
        return sp.csr_matrix(
            (len(self._indexer), len(self._indexer)), dtype=np.float64
        )

    def combined_adjacency(self, labels=None, symmetric=False):
        """Sum of per-label adjacencies; the graph RWR/SimRank walk on.

        Parameters
        ----------
        labels:
            Iterable of labels to include; defaults to every label used in
            the database.
        symmetric:
            When True, returns ``A + A.T`` — random-walk algorithms over
            heterogeneous graphs conventionally walk edges both ways.
        """
        if labels is None:
            labels = sorted(self._database.used_labels())
        total = self.zeros()
        for label in labels:
            total = total + self.adjacency(label)
        if symmetric:
            total = total + total.T
        return total.tocsr()


def dense_rows(matrix, indices):
    """``matrix[indices, :].toarray()`` via direct CSR buffer reads.

    SciPy's fancy-index row slice builds an intermediate CSR (index
    validation, dtype upcasting checks, format checks) before
    densifying; on the serving hot path that overhead dwarfs the actual
    copy.  Reading ``indptr``/``indices``/``data`` directly is an order
    of magnitude faster for the small row counts a query batch slices.

    ``matrix`` must be a canonical CSR (no duplicate entries —
    everything the engine caches is; call ``sum_duplicates()`` first
    otherwise, as duplicates would overwrite instead of summing here).
    """
    n = matrix.shape[1]
    rows = np.zeros((len(indices), n), dtype=matrix.dtype)
    indptr, columns, data = matrix.indptr, matrix.indices, matrix.data
    for i, row in enumerate(indices):
        start, end = indptr[row], indptr[row + 1]
        rows[i, columns[start:end]] = data[start:end]
    return rows


def boolean(matrix):
    """Elementwise ``matrix > 0`` as a 0/1 float CSR matrix (the paper's >).

    Used by the skip operator's commuting matrix ``M_<<p>> = M_p > 0``.
    """
    result = matrix.copy().tocsr()
    result.data = (result.data > 0).astype(np.float64)
    result.eliminate_zeros()
    return result


def diagonal_of(matrix):
    """``diag{X}``: zero out everything except the main diagonal."""
    diag = matrix.diagonal()
    return sp.diags(diag, format="csr", dtype=np.float64)


def row_normalize(matrix):
    """Row-stochastic version of ``matrix`` (zero rows stay zero)."""
    matrix = matrix.tocsr().astype(np.float64)
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.divide(
        1.0, sums, out=np.zeros_like(sums), where=sums > 0
    )
    return sp.diags(inverse, format="csr") @ matrix


def column_normalize(matrix):
    """Column-stochastic version of ``matrix`` (zero columns stay zero)."""
    return row_normalize(matrix.T).T.tocsr()
