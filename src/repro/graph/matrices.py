"""Sparse adjacency matrices for a graph database.

The commuting-matrix computation of Section 4.3 works on per-label
adjacency matrices ``A_l``.  This module provides a :class:`NodeIndexer`
(stable node-id <-> row index mapping) and a :class:`MatrixView` that
extracts and caches CSR matrices from a :class:`GraphDatabase`.

Matrices use float64: instance counts can exceed int32 on long patterns
and SciPy's sparse matmul is best-tuned for floats.  Counts are exact as
long as they stay below 2**53, which vastly exceeds anything a realistic
pattern produces.
"""

import itertools
import threading

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ConfigurationError, UnknownNodeError


class NodeIndexer:
    """A stable bijection between node ids and ``0..n-1`` matrix indices."""

    def __init__(self, nodes):
        self._ids = list(nodes)
        self._index = {node: i for i, node in enumerate(self._ids)}
        if len(self._index) != len(self._ids):
            raise ValueError("duplicate node ids passed to NodeIndexer")

    def __len__(self):
        return len(self._ids)

    def index_of(self, node):
        try:
            return self._index[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def node_at(self, index):
        return self._ids[index]

    def __contains__(self, node):
        return node in self._index

    @property
    def ids(self):
        return list(self._ids)


def resized(matrix, n):
    """``matrix`` with its square shape grown to ``(n, n)``.

    CSR growth is pure bookkeeping: appended rows extend ``indptr`` with
    the final offset, appended columns only change ``shape``.  The data
    and index buffers are *shared* with the input (nothing in the engine
    ever mutates them), so resizing a cached matrix after a node-adding
    delta costs O(new rows), not O(nnz).
    """
    old = matrix.shape[0]
    if old == n:
        return matrix
    if old > n:
        raise ValueError(
            "cannot shrink a matrix from {} to {} rows".format(old, n)
        )
    indptr = np.concatenate(
        [
            matrix.indptr,
            np.full(n - old, matrix.indptr[-1], dtype=matrix.indptr.dtype),
        ]
    )
    # Assembled around SciPy's constructor, which would copy (and
    # re-validate) the buffers.
    grown = sp.csr_matrix((n, n), dtype=matrix.dtype)
    grown.data = matrix.data
    grown.indices = matrix.indices
    grown.indptr = indptr
    if matrix.has_canonical_format:
        grown.has_canonical_format = True
    return grown


def identity_patch(indices, n):
    """Ones on the diagonal at ``indices`` — the ``I`` growth of eps/star.

    When a delta adds nodes, every matrix that embeds an identity term
    (``eps``, ``p*``) gains a 1 at each new node's diagonal position;
    everything else just gains zero rows/columns.  This is that patch.
    """
    indices = np.asarray(list(indices), dtype=np.intp)
    data = np.ones(len(indices), dtype=np.float64)
    return sp.csr_matrix((data, (indices, indices)), shape=(n, n))


class ViewDelta:
    """What one :meth:`MatrixView.apply_delta` call changed.

    ``patches`` maps each touched label to a ``(n, n)`` CSR matrix of
    ``+1``/``-1`` adjacency changes (net-zero labels are omitted);
    ``old_num_nodes``/``num_nodes`` bound the indexer growth and
    ``added_nodes`` lists the genuinely new node ids in indexer order.
    The engine consumes this to propagate the delta through cached
    commuting matrices.
    """

    __slots__ = ("patches", "old_num_nodes", "num_nodes", "added_nodes")

    def __init__(self, patches, old_num_nodes, num_nodes, added_nodes):
        self.patches = patches
        self.old_num_nodes = old_num_nodes
        self.num_nodes = num_nodes
        self.added_nodes = list(added_nodes)

    @property
    def grew(self):
        """True when the delta added nodes (matrix shapes changed)."""
        return self.num_nodes != self.old_num_nodes

    def __repr__(self):
        return "ViewDelta(labels={}, nodes +{})".format(
            sorted(self.patches), len(self.added_nodes)
        )


class MatrixView:
    """Per-label sparse adjacency matrices over a fixed node ordering.

    Parameters
    ----------
    database:
        The :class:`repro.graph.database.GraphDatabase` to project.
    indexer:
        Optional :class:`NodeIndexer`; defaults to the database's node
        insertion order.  Pass a shared indexer when comparing matrices
        across structural variants of the same database (node ids are
        preserved by invertible transformations, so a shared ordering makes
        entries directly comparable).

    The view is a *snapshot*: mutate the database afterwards and the cached
    matrices go stale.  Either build a fresh view after mutation, route
    the mutation through :meth:`apply_delta` (which patches the cached
    matrices in place instead of rebuilding them), or serve through
    :class:`~repro.api.service.SimilarityService`, which swaps patched
    snapshots for you.

    The view is thread-safe: the adjacency and candidate-index caches are
    lock-guarded with double-checked access (matrices are built outside
    the lock and published under it), so any number of threads can score
    against one shared view.
    """

    def __init__(self, database, indexer=None):
        self._database = database
        self._indexer = indexer or NodeIndexer(database.nodes())
        self._lock = threading.RLock()
        self._cache = {}
        self._candidates = {}
        self._candidate_node_count = database.num_nodes()

    @property
    def indexer(self):
        return self._indexer

    @property
    def database(self):
        return self._database

    def num_nodes(self):
        return len(self._indexer)

    def adjacency(self, label):
        """The CSR adjacency matrix ``A_label`` (entries are 0/1 counts)."""
        matrix = self._cache.get(label)
        if matrix is None:
            # Build outside the lock (edge iteration can be slow), then
            # publish under it; a concurrent duplicate build loses the
            # race and every caller gets the one published matrix.
            built = self._build(label)
            with self._lock:
                matrix = self._cache.get(label)
                if matrix is None:
                    matrix = self._cache.setdefault(label, built)
        return matrix

    def _build(self, label):
        # Bulk index construction: one adjacency-list visit per source
        # with whole neighbor sets mapped through the index dict in C
        # (`map`), instead of a per-edge generator frame plus `in` +
        # `index_of` calls.  ~5-10x at million-edge scale, and the
        # assembled CSR is bitwise-identical to the per-edge loop (the
        # COO->CSR conversion canonicalizes either way); see
        # tests/test_graph_matrices.py::test_build_matches_per_edge_loop.
        self._database.schema.require_label(label)
        n = len(self._indexer)
        index = self._indexer._index
        lookup = index.__getitem__
        rows, cols = [], []
        for source, targets in self._database.adjacency_lists(label):
            source_index = index.get(source)
            if source_index is None:
                continue
            try:
                hit = list(map(lookup, targets))
            except KeyError:
                # Shared-indexer case: the database variant has nodes
                # this view's ordering does not — skip them, exactly
                # like the historical per-edge membership test.
                hit = [index[t] for t in targets if t in index]
            cols.extend(hit)
            rows.extend(itertools.repeat(source_index, len(hit)))
        row_array = np.asarray(rows, dtype=np.intp)
        col_array = np.asarray(cols, dtype=np.intp)
        data = np.ones(len(row_array), dtype=np.float64)
        matrix = sp.csr_matrix(
            (data, (row_array, col_array)), shape=(n, n), dtype=np.float64
        )
        matrix.sum_duplicates()
        return matrix

    def install_adjacency(self, label, matrix):
        """Adopt a prebuilt adjacency matrix for ``label`` (trusted).

        The zero-copy attach path: a process worker reconstructs
        ``A_label`` over shared-memory buffers and installs it here, so
        the view never rebuilds from edge iteration what the parent
        already materialized.  The label must exist in the schema and
        the shape must match this view's node count; the matrix is
        adopted by reference (callers guarantee canonical CSR form,
        exactly as :meth:`adjacency` builds it).
        """
        self._database.schema.require_label(label)
        n = len(self._indexer)
        if matrix.shape != (n, n):
            raise ConfigurationError(
                "adjacency for {!r} has shape {}, view has {} "
                "nodes".format(label, matrix.shape, n)
            )
        with self._lock:
            self._cache[label] = matrix
        return matrix

    def fork(self, database):
        """A new view over ``database`` inheriting this view's caches.

        The incremental-update idiom: fork the serving view onto a
        private copy of its database, then :meth:`apply_delta` *on the
        fork* — the original view (and every matrix object it handed
        out) keeps serving the old snapshot untouched, because cached
        matrices are never mutated, only replaced.  The indexer is
        shared until the fork's ``apply_delta`` extends it.
        """
        clone = MatrixView.__new__(MatrixView)
        clone._database = database
        clone._indexer = self._indexer
        clone._lock = threading.RLock()
        clone._cache = dict(self._cache)
        clone._candidates = dict(self._candidates)
        clone._candidate_node_count = self._candidate_node_count
        return clone

    def apply_delta(self, edges_added=(), edges_removed=(), nodes_added=()):
        """Apply an edge/node delta to the database *and* this view, in place.

        The batch is validated and applied through
        :meth:`~repro.graph.database.GraphDatabase.apply_delta` (a
        failing delta raises with database and view untouched), then the
        view patches itself instead of going stale:

        * cached adjacencies get a sparse ``+1/-1`` patch per touched
          label (a new CSR object replaces the cache entry — anyone
          holding the old matrix keeps a consistent old snapshot);
        * when nodes were added, the indexer is *replaced* by an
          extended copy (the old indexer object stays frozen for old
          readers) and every cached matrix is resized;
        * candidate indexes are invalidated **scoped to affected
          types**: only the types of genuinely new nodes (plus the
          untyped "all nodes" list) are dropped; edge-only deltas leave
          every candidate list untouched.

        Returns a :class:`ViewDelta` with the per-label patches at the
        new shape — the input the engine's ``apply_delta`` propagates
        through cached commuting matrices.
        """
        nodes_added = [
            entry if isinstance(entry, tuple) else (entry, None)
            for entry in nodes_added
        ]
        added, removed, new_nodes = self._database.apply_delta(
            edges_added=edges_added,
            edges_removed=edges_removed,
            nodes_added=nodes_added,
        )
        with self._lock:
            old_n = len(self._indexer)
            if new_nodes:
                self._indexer = NodeIndexer(self._indexer.ids + new_nodes)
            n = len(self._indexer)
            entries = {}
            for (source, label, target), sign in [
                (edge, -1.0) for edge in removed
            ] + [(edge, 1.0) for edge in added]:
                rows, cols, vals = entries.setdefault(label, ([], [], []))
                rows.append(self._indexer.index_of(source))
                cols.append(self._indexer.index_of(target))
                vals.append(sign)
            patches = {}
            for label, (rows, cols, vals) in entries.items():
                patch = sp.csr_matrix(
                    (np.array(vals), (rows, cols)),
                    shape=(n, n),
                    dtype=np.float64,
                )
                patch.sum_duplicates()
                patch.eliminate_zeros()
                if patch.nnz:
                    patches[label] = patch
            for label, matrix in list(self._cache.items()):
                patched = resized(matrix, n)
                patch = patches.get(label)
                if patch is not None:
                    patched = (patched + patch).tocsr()
                    patched.eliminate_zeros()
                if patched is not matrix:
                    self._cache[label] = patched
            # Scoped candidate invalidation: types of genuinely new
            # nodes, plus every type explicitly declared in the batch —
            # nodes_added may *retype* an existing untyped node, which
            # joins that type's candidate list without changing the
            # node count.  The "all nodes" list only changes when
            # membership does.
            affected = {self._database.node_type(node) for node in new_nodes}
            affected.update(
                node_type
                for _, node_type in nodes_added
                if node_type is not None
            )
            for node_type in affected:
                self._candidates.pop(("type", node_type), None)
            if new_nodes:
                self._candidates.pop(("all",), None)
                self._candidate_node_count = self._database.num_nodes()
            return ViewDelta(patches, old_n, n, new_nodes)

    def candidate_index(self, node_type=None):
        """Cached ``(nodes, columns)`` answer-candidate arrays for a type.

        ``nodes`` lists the eligible answer nodes sorted by ``str`` (the
        :class:`~repro.similarity.base.Ranking` tie-break order) and
        ``columns`` holds their indexer positions as one ``intp`` array,
        so candidate filtering in the array-native scoring path is a
        single fancy-index slice instead of a per-node dict loop.
        ``node_type`` is the resolved answer type of a query — ``None``
        means every node (untyped queries).

        A node of the requested type that is missing from the indexer
        raises :class:`~repro.exceptions.UnknownNodeError`: scoring a
        candidate the snapshot does not cover is an error, not a zero
        score.  The cache revalidates against the database's node count
        on every call, so a node added after the view was built raises
        the same error whether or not the index was already warm (no
        silently stale candidate list).  Other mutations — edge changes,
        retyping an existing node — follow the view's general snapshot
        rule: build a fresh view after mutating.
        """
        with self._lock:
            if self._database.num_nodes() != self._candidate_node_count:
                self._candidates.clear()
                self._candidate_node_count = self._database.num_nodes()
            key = ("type", node_type) if node_type is not None else ("all",)
            cached = self._candidates.get(key)
            if cached is None:
                if node_type is None:
                    eligible = list(self._database.nodes())
                else:
                    eligible = self._database.nodes_of_type(node_type)
                eligible.sort(key=str)
                columns = np.array(
                    [self._indexer.index_of(node) for node in eligible],
                    dtype=np.intp,
                )
                cached = (eligible, columns)
                self._candidates[key] = cached
        return cached

    def query_indices(self, nodes):
        """Indexer positions for ``nodes`` as one ``intp`` array.

        The shared node->index resolution step of every batch scoring
        path; a node outside the snapshot raises
        :class:`~repro.exceptions.UnknownNodeError` (scoring a node the
        snapshot does not cover is an error, not a zero score).
        """
        return np.array(
            [self._indexer.index_of(node) for node in nodes], dtype=np.intp
        )

    def identity(self):
        """The identity matrix (the ``epsilon`` pattern's matrix)."""
        return sp.identity(len(self._indexer), dtype=np.float64, format="csr")

    def zeros(self):
        return sp.csr_matrix(
            (len(self._indexer), len(self._indexer)), dtype=np.float64
        )

    def combined_adjacency(self, labels=None, symmetric=False):
        """Sum of per-label adjacencies; the graph RWR/SimRank walk on.

        Parameters
        ----------
        labels:
            Iterable of labels to include; defaults to every label used in
            the database.
        symmetric:
            When True, returns ``A + A.T`` — random-walk algorithms over
            heterogeneous graphs conventionally walk edges both ways.
        """
        if labels is None:
            labels = sorted(self._database.used_labels())
        total = self.zeros()
        for label in labels:
            total = total + self.adjacency(label)
        if symmetric:
            total = total + total.T
        return total.tocsr()


def dense_rows(matrix, indices):
    """``matrix[indices, :].toarray()`` via direct CSR buffer reads.

    SciPy's fancy-index row slice builds an intermediate CSR (index
    validation, dtype upcasting checks, format checks) before
    densifying; on the serving hot path that overhead dwarfs the actual
    copy.  Reading ``indptr``/``indices``/``data`` directly is an order
    of magnitude faster for the small row counts a query batch slices.

    ``matrix`` must be a canonical CSR (no duplicate entries —
    everything the engine caches is; call ``sum_duplicates()`` first
    otherwise, as duplicates would overwrite instead of summing here).
    """
    n = matrix.shape[1]
    rows = np.zeros((len(indices), n), dtype=matrix.dtype)
    indptr, columns, data = matrix.indptr, matrix.indices, matrix.data
    for i, row in enumerate(indices):
        start, end = indptr[row], indptr[row + 1]
        rows[i, columns[start:end]] = data[start:end]
    return rows


def boolean(matrix):
    """Elementwise ``matrix > 0`` as a 0/1 float CSR matrix (the paper's >).

    Used by the skip operator's commuting matrix ``M_<<p>> = M_p > 0``.
    """
    result = matrix.copy().tocsr()
    result.data = (result.data > 0).astype(np.float64)
    result.eliminate_zeros()
    return result


def diagonal_of(matrix):
    """``diag{X}``: zero out everything except the main diagonal."""
    diag = matrix.diagonal()
    return sp.diags(diag, format="csr", dtype=np.float64)


def row_normalize(matrix):
    """Row-stochastic version of ``matrix`` (zero rows stay zero)."""
    matrix = matrix.tocsr().astype(np.float64)
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.divide(
        1.0, sums, out=np.zeros_like(sums), where=sums > 0
    )
    return sp.diags(inverse, format="csr") @ matrix


def column_normalize(matrix):
    """Column-stochastic version of ``matrix`` (zero columns stay zero)."""
    return row_normalize(matrix.T).T.tocsr()
