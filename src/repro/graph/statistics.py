"""Descriptive statistics of a graph database.

Used by the examples, the CLI, and EXPERIMENTS.md to report dataset
shapes the way the paper does ("DBLP consists of 1,227,602 nodes and
2,692,679 edges ...") plus the degree-distribution facts that matter for
degree-weighted query sampling.
"""

from collections import Counter


def label_histogram(database):
    """``{label: edge count}`` over labels that actually occur."""
    histogram = Counter()
    for _, label, _ in database.edges():
        histogram[label] += 1
    return dict(histogram)


def node_type_histogram(database):
    """``{node_type: node count}``; untyped nodes appear under ``None``."""
    histogram = Counter()
    for node in database.nodes():
        histogram[database.node_type(node)] += 1
    return dict(histogram)


def degree_statistics(database):
    """Min/mean/max/isolated-count over total node degree."""
    degrees = [database.degree(node) for node in database.nodes()]
    if not degrees:
        return {"min": 0, "mean": 0.0, "max": 0, "isolated": 0}
    return {
        "min": min(degrees),
        "mean": sum(degrees) / len(degrees),
        "max": max(degrees),
        "isolated": sum(1 for d in degrees if d == 0),
    }


def degree_distribution(database, buckets=(1, 2, 4, 8, 16, 32, 64)):
    """Counts of nodes per degree bucket.

    ``buckets`` are ascending lower bounds; a node lands in the bucket
    with the largest bound not exceeding its degree (the last bucket is
    open-ended).  Returns an ordered ``[(lower_bound, count), ...]``
    starting with a ``(0, isolated)`` entry.
    """
    counts = {bound: 0 for bound in buckets}
    isolated = 0
    for node in database.nodes():
        degree = database.degree(node)
        if degree == 0:
            isolated += 1
            continue
        eligible = [bound for bound in buckets if bound <= degree]
        # Degrees below the first bound are counted in the first bucket.
        counts[max(eligible) if eligible else buckets[0]] += 1
    return [(0, isolated)] + [(bound, counts[bound]) for bound in buckets]


def summarize(database, name=""):
    """A multi-line, paper-style summary string."""
    stats = degree_statistics(database)
    lines = []
    title = name or "database"
    lines.append(
        "{}: {} nodes, {} edges".format(
            title, database.num_nodes(), database.num_edges()
        )
    )
    lines.append(
        "degree: min={min} mean={mean:.2f} max={max} isolated={isolated}".format(
            **stats
        )
    )
    types = node_type_histogram(database)
    if types and set(types) != {None}:
        lines.append("node types:")
        for node_type in sorted(types, key=str):
            lines.append(
                "  {:<20s} {}".format(str(node_type), types[node_type])
            )
    lines.append("edge labels:")
    labels = label_histogram(database)
    for label in sorted(labels):
        lines.append("  {:<20s} {}".format(label, labels[label]))
    return "\n".join(lines)
