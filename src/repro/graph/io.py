"""Serialization of graph databases and schemas.

Two formats:

* **JSON** — self-contained: schema labels, node types, constraints (as
  pattern strings) and edges.  Round-trips exactly.
* **TSV** — one edge per line (``source<TAB>label<TAB>target``), plus an
  optional node-type file.  Interoperates with common graph tooling.
"""

import json

from repro.exceptions import ReproError
from repro.graph.database import GraphDatabase
from repro.graph.schema import Schema


def schema_to_dict(schema):
    """A JSON-ready dict for ``schema`` (constraints as strings)."""
    return {
        "labels": sorted(schema.labels),
        "node_types": {
            label: list(pair) for label, pair in schema.node_types.items()
        },
        "constraints": [str(c) for c in schema.constraints],
    }


def schema_from_dict(payload):
    """Rebuild a schema from :func:`schema_to_dict` output.

    Constraint strings are parsed with
    :func:`repro.constraints.tgd.parse_tgd`; imported lazily to avoid an
    import cycle (constraints depend on the pattern language which depends
    on nothing here, but tgd parsing needs the schema module).
    """
    from repro.constraints.tgd import parse_tgd

    labels = payload["labels"]
    node_types = {
        label: tuple(pair) for label, pair in payload.get("node_types", {}).items()
    }
    constraints = [parse_tgd(text) for text in payload.get("constraints", [])]
    return Schema(labels, constraints, node_types)


def database_to_dict(database):
    """A JSON-ready dict capturing schema, nodes and edges."""
    return {
        "schema": schema_to_dict(database.schema),
        "nodes": [
            {"id": node, "type": database.node_type(node)}
            for node in database.nodes()
        ],
        "edges": [list(edge) for edge in database.edges()],
    }


def database_from_dict(payload):
    """Rebuild a database from :func:`database_to_dict` output."""
    schema = schema_from_dict(payload["schema"])
    database = GraphDatabase(schema)
    for record in payload["nodes"]:
        database.add_node(record["id"], record.get("type"))
    for source, label, target in payload["edges"]:
        database.add_edge(source, label, target)
    return database


def database_to_json(database):
    """``database`` as a compact JSON string.

    The embedded-payload twin of :func:`save_json`: snapshot files
    (:mod:`repro.server.snapshot`) store the database as one JSON
    string next to the binary matrix buffers.  Key order is fixed, so
    equal databases serialize to equal strings.
    """
    return json.dumps(
        database_to_dict(database), sort_keys=True, separators=(",", ":")
    )


def database_from_json(text):
    """Rebuild a database from :func:`database_to_json` output."""
    return database_from_dict(json.loads(text))


def save_json(database, path):
    """Write ``database`` to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(database_to_dict(database), handle, indent=1, sort_keys=True)


def load_json(path):
    """Load a database previously written by :func:`save_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    return database_from_dict(payload)


def save_tsv(database, edges_path, nodes_path=None):
    """Write edges (and optionally node types) as tab-separated files."""
    with open(edges_path, "w") as handle:
        for source, label, target in database.edges():
            handle.write("{}\t{}\t{}\n".format(source, label, target))
    if nodes_path is not None:
        with open(nodes_path, "w") as handle:
            for node in database.nodes():
                node_type = database.node_type(node) or ""
                handle.write("{}\t{}\n".format(node, node_type))


def load_tsv(schema, edges_path, nodes_path=None):
    """Load a database from TSV files against a known ``schema``."""
    database = GraphDatabase(schema)
    if nodes_path is not None:
        with open(nodes_path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                parts = line.split("\t")
                if len(parts) not in (1, 2):
                    raise ReproError(
                        "bad node line {} in {}: {!r}".format(
                            line_number, nodes_path, line
                        )
                    )
                node = parts[0]
                node_type = parts[1] if len(parts) == 2 and parts[1] else None
                database.add_node(node, node_type)
    with open(edges_path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ReproError(
                    "bad edge line {} in {}: {!r}".format(
                        line_number, edges_path, line
                    )
                )
            database.add_edge(*parts)
    return database
