"""Graph database substrate: schemas, databases, and sparse matrix views."""

from repro.graph.database import GraphDatabase
from repro.graph.matrices import (
    MatrixView,
    NodeIndexer,
    boolean,
    column_normalize,
    diagonal_of,
    row_normalize,
)
from repro.graph.schema import Schema
from repro.graph.statistics import (
    degree_distribution,
    degree_statistics,
    label_histogram,
    node_type_histogram,
    summarize,
)

__all__ = [
    "GraphDatabase",
    "MatrixView",
    "NodeIndexer",
    "Schema",
    "boolean",
    "column_normalize",
    "degree_distribution",
    "degree_statistics",
    "label_histogram",
    "node_type_histogram",
    "summarize",
    "diagonal_of",
    "row_normalize",
]
