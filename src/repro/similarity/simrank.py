"""SimRank (Jeh & Widom, KDD 2002).

Two nodes are similar when their in-neighbors are similar::

    s(a, b) = C / (|I(a)| |I(b)|) * sum_{i in I(a), j in I(b)} s(i, j)

with ``s(a, a) = 1``.  We use the standard matrix iteration
``S <- max(C * P^T S P, I)`` where ``P`` is the column-normalized
adjacency matrix.  Following the paper's extension to multi-label graphs,
``P`` is built over the union of all edges (symmetrized by default so
direction conventions do not decide similarity).

SimRank is dense O(n^2) memory and O(n^3)-ish time — the very reason the
paper runs it only on dataset subsets ("it takes more than a day to run
SimRank ... over DBLP and BioMed"); we guard with ``max_nodes``.
"""

import numpy as np

from repro.exceptions import EvaluationError
from repro.graph.matrices import column_normalize
from repro.similarity.base import SimilarityAlgorithm, resolve_view


def simrank_matrix(
    adjacency, damping=0.8, iterations=10, tolerance=1e-6
):
    """All-pairs SimRank scores as a dense matrix.

    ``adjacency`` is any (sparse) adjacency matrix; iteration stops early
    when the largest entry change drops below ``tolerance``.
    """
    n = adjacency.shape[0]
    # Keep the transition matrix sparse: the scores are inherently a
    # dense n x n block, but P has O(|E|) nonzeros, so sparse-times-
    # dense products cost O(nnz * n) instead of O(n^3) and never
    # materialize a second n x n array for P itself.
    transition = column_normalize(adjacency).tocsr()
    transpose = transition.T.tocsr()
    scores = np.identity(n)
    identity = np.identity(n)
    for _ in range(iterations):
        updated = damping * np.asarray(transpose @ scores @ transition)
        np.fill_diagonal(updated, 1.0)
        delta = np.abs(updated - scores).max()
        scores = updated
        if delta < tolerance:
            break
    np.maximum(scores, identity, out=scores)
    return scores


class SimRank(SimilarityAlgorithm):
    """SimRank similarity over the full (symmetrized) topology.

    The all-pairs matrix is computed once at construction and reused for
    every query — that is also how the paper amortizes SimRank across a
    100-query workload.

    Parameters
    ----------
    damping:
        The decay factor ``C`` (paper setting: 0.8).
    max_nodes:
        Guard against accidentally asking for a dense n x n matrix on a
        large graph.
    engine:
        Optional shared :class:`CommutingMatrixEngine`; its matrix view
        (adjacency matrices + node indexing) is reused.
    """

    name = "SimRank"

    def __init__(
        self,
        database,
        damping=0.8,
        iterations=10,
        symmetric=True,
        answer_type=None,
        view=None,
        engine=None,
        max_nodes=5000,
    ):
        super().__init__(database, answer_type=answer_type)
        if not 0 < damping < 1:
            raise EvaluationError(
                "damping factor must be in (0, 1), got {}".format(damping)
            )
        self._view = resolve_view(database, view=view, engine=engine)
        n = self._view.num_nodes()
        if n > max_nodes:
            raise EvaluationError(
                "SimRank needs a dense {0}x{0} matrix; over max_nodes={1}. "
                "Run it on a subset, as the paper does.".format(n, max_nodes)
            )
        adjacency = self._view.combined_adjacency(symmetric=symmetric)
        self._scores = simrank_matrix(
            adjacency, damping=damping, iterations=iterations
        )

    def score_rows(self, queries):
        """Batch score rows from one slice of the precomputed dense matrix."""
        indices = self._view.query_indices(queries)
        return indices, self._scores[indices, :]
