"""Random walk with restart (Tong, Faloutsos & Pan, ICDM 2006).

The RWR score of ``v`` for query ``u`` is the steady-state probability of
a random walk that, at each step, returns to ``u`` with the restart
probability ``c`` and otherwise moves to a uniformly random neighbor.
Fixed point: ``r = c e_u + (1 - c) W^T r`` with ``W`` the row-stochastic
walk matrix.

The paper uses restart probability 0.8 and applies RWR to multi-label
graphs by walking the union of all edge (both directions — similarity
should not depend on edge orientation conventions).  Proposition 4's
pattern-constrained extension is in
:mod:`repro.similarity.pattern_constrained`.
"""

import numpy as np

from repro.exceptions import EvaluationError
from repro.graph.matrices import row_normalize
from repro.similarity.base import SimilarityAlgorithm, resolve_view


def rwr_vector(walk_matrix, start_index, restart=0.8, tolerance=1e-10,
               max_iterations=200):
    """Solve ``r = restart * e + (1 - restart) * W^T r`` by power iteration.

    ``walk_matrix`` must be row-stochastic (rows of all-zero are allowed:
    mass restarting from dead ends is returned to the query, the standard
    fix for dangling nodes).
    """
    n = walk_matrix.shape[0]
    restart_vector = np.zeros(n)
    restart_vector[start_index] = 1.0
    rank = restart_vector.copy()
    transpose = walk_matrix.T.tocsr()
    for _ in range(max_iterations):
        spread = transpose @ rank
        # Mass sitting at dangling nodes (all-zero rows) restarts too.
        lost = max(rank.sum() - spread.sum(), 0.0)
        updated = restart * restart_vector + (1.0 - restart) * spread
        updated[start_index] += (1.0 - restart) * lost
        if np.abs(updated - rank).sum() < tolerance:
            return updated
        rank = updated
    return rank


class RWR(SimilarityAlgorithm):
    """Random walk with restart over the full (symmetrized) topology.

    Parameters
    ----------
    restart:
        The restart probability ``c`` (paper setting: 0.8).
    symmetric:
        Walk edges in both directions (default True, the usual convention
        for similarity over heterogeneous graphs).
    engine:
        Optional shared :class:`CommutingMatrixEngine`; its matrix view
        (adjacency matrices + node indexing) is reused.
    """

    name = "RWR"

    def __init__(
        self,
        database,
        restart=0.8,
        symmetric=True,
        answer_type=None,
        view=None,
        engine=None,
        max_iterations=200,
    ):
        super().__init__(database, answer_type=answer_type)
        if not 0 < restart < 1:
            raise EvaluationError(
                "restart probability must be in (0, 1), got {}".format(restart)
            )
        self.restart = restart
        self._view = resolve_view(database, view=view, engine=engine)
        adjacency = self._view.combined_adjacency(symmetric=symmetric)
        self._walk = row_normalize(adjacency)
        self._max_iterations = max_iterations

    def score_rows(self, queries):
        """One power-iteration solve per query, stacked into score rows."""
        queries = list(queries)
        indices = self._view.query_indices(queries)
        rows = np.empty((len(queries), len(self._view.indexer)))
        for i, index in enumerate(indices):
            rows[i] = rwr_vector(
                self._walk,
                int(index),
                restart=self.restart,
                max_iterations=self._max_iterations,
            )
        return indices, rows
