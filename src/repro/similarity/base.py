"""Shared interface for similarity search algorithms.

A similarity query (Section 2) is a node id; the answer is a ranked list
of other node ids.  Every algorithm here implements::

    scores(query)            -> {node: score} over candidate nodes
    rank(query, top_k=None)  -> Ranking (sorted, deterministic ties)

Candidates default to nodes of the same type as the query (the paper
ranks proceedings against proceedings, courses against courses) unless an
``answer_type`` is fixed at construction (diseases ranked against drugs
in the BioMed study).

Every algorithm accepts an injected ``engine``
(:class:`~repro.lang.matrix_semantics.CommutingMatrixEngine`) so a
:class:`~repro.api.SimilaritySession` can share one set of materialized
matrices across all the algorithms it constructs; topology-based
algorithms that only need adjacency matrices reuse the engine's
:class:`~repro.graph.matrices.MatrixView`.

Array-native scoring
--------------------
Matrix-backed algorithms additionally implement :meth:`score_rows`,
which returns raw score *rows* (one dense vector of scores over the node
indexer per query) instead of per-candidate dicts.  ``rank`` and
``rank_many`` then stay inside NumPy end-to-end: candidate filtering is
one fancy-index slice over the view's cached per-type candidate index
(:meth:`~repro.graph.matrices.MatrixView.candidate_index`), and top-k
selection uses ``np.argpartition``-style selection so only the ``k``
winners are ever materialized as ``(node, score)`` pairs.  The dict
APIs (``scores``/``scores_many``) become thin adapters over
:meth:`score_rows` and remain contractually identical; the previous
dict-based ranking path is kept as :meth:`rank_many_via_scores` for
equivalence testing and benchmarking.

Candidates absent from the algorithm's snapshot indexer raise
:class:`~repro.exceptions.UnknownNodeError` uniformly — scoring a node
the snapshot does not cover is an error, not a zero score.  (Open a new
session/view after mutating the database, or serve through
:class:`~repro.api.service.SimilarityService`, which swaps snapshots.)

Prepared scoring state
----------------------
:meth:`SimilarityAlgorithm.prepare_scoring` pins whatever per-instance
state scoring would otherwise recompute or re-fetch per call (commuting
matrices, diagonals, column norms); once pinned the state is immutable,
which is what makes a prepared hot path safe to share across serving
threads.  :class:`~repro.api.prepared.PreparedQuery` calls it during
preparation.  Pinned state should come from the engine's caches
(``engine.matrix`` / ``engine.diagonal`` / ``engine.column_norms``)
rather than be derived ad hoc: those caches are *delta-maintained* —
``SimilarityService``'s incremental live updates patch them in place —
so re-pinning after an update is mostly identity reuse, recomputing
only the entries whose inputs actually changed.
"""

import numpy as np

from repro.graph.matrices import MatrixView


def resolve_view(database, view=None, engine=None):
    """The :class:`MatrixView` an algorithm should compute on.

    Preference order: an explicit ``view``, then the view of an injected
    ``engine`` (so session-constructed algorithms share adjacency
    matrices and node indexing), then a fresh view over ``database``.
    """
    if view is not None:
        return view
    if engine is not None:
        return engine.view
    return MatrixView(database)


class Ranking:
    """An ordered answer list with scores.

    Ties are broken by node id so that rankings are deterministic — a
    requirement for the robustness comparison to be meaningful (otherwise
    tie shuffling would masquerade as non-robustness).
    """

    def __init__(self, scored_nodes):
        self._items = sorted(
            scored_nodes, key=lambda item: (-item[1], str(item[0]))
        )
        self._lookup = None

    @classmethod
    def from_arrays(cls, nodes, scores):
        """Ranking from parallel node/score sequences (array-native path).

        Skips the intermediate per-candidate dict: callers pass the
        already-selected winners (typically the ``argpartition`` top-k),
        so the deterministic ``(-score, str(node))`` sort touches only
        ``k`` items instead of the full candidate set.
        """
        return cls(zip(nodes, (float(score) for score in scores)))

    def top(self, k=None):
        """The first ``k`` node ids (all of them when ``k`` is None)."""
        items = self._items if k is None else self._items[:k]
        return [node for node, _ in items]

    def items(self, k=None):
        """``(node, score)`` pairs, optionally truncated."""
        return list(self._items if k is None else self._items[:k])

    def _positions(self):
        # Built lazily on the first lookup: metric code calls
        # score_of/position_of once per candidate, and a linear scan per
        # call is quadratic over a workload.
        if self._lookup is None:
            self._lookup = {
                node: (position, score)
                for position, (node, score) in enumerate(self._items, start=1)
            }
        return self._lookup

    def score_of(self, node):
        entry = self._positions().get(node)
        return None if entry is None else entry[1]

    def position_of(self, node):
        """1-based rank of ``node``; ``None`` when absent."""
        entry = self._positions().get(node)
        return None if entry is None else entry[0]

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self.top())

    def __repr__(self):
        preview = ", ".join(
            "{}={:.4f}".format(node, score) for node, score in self._items[:3]
        )
        return "Ranking([{}{}])".format(
            preview, ", ..." if len(self._items) > 3 else ""
        )


class SimilarityAlgorithm:
    """Base class implementing candidate selection and ranking."""

    #: Human-readable name used in experiment reports.
    name = "base"

    #: Queries per ``score_rows``/``scores_many`` call inside
    #: ``rank_many``.  Batch implementations densify a
    #: (queries x nodes) block, so an unchunked million-query workload
    #: would allocate workload-sized dense arrays; per-row scores are
    #: independent, so chunking changes nothing but peak memory.
    batch_chunk_size = 512

    #: True when rankings are a pure function of the commuting/adjacency
    #: matrices of this algorithm's own patterns.  Pattern-local
    #: algorithms give standing-query subscriptions a label footprint:
    #: an edge delta touching none of those labels provably cannot
    #: change a ranking, so maintenance skips it in O(1).  Whole-graph
    #: algorithms (RWR, SimRank, Katz, common neighbors) keep the
    #: default and are treated as touched by every delta.
    pattern_local = False

    #: True when adding nodes alone (no edges on this algorithm's
    #: labels) can still perturb its scores — dense reductions and
    #: fixed-point solves change shape with the node count, so their
    #: float results are not bitwise-stable under padding.  Entry-local
    #: sparse scorers (PathSim-style) override this to False; plans
    #: embedding an identity term are handled separately via
    #: :func:`repro.lang.plan.pattern_footprint`.
    delta_growth_sensitive = True

    def __init__(self, database, answer_type=None):
        self._database = database
        self._answer_type = answer_type
        #: The MatrixView backing :meth:`score_rows`; array-native
        #: subclasses assign it at construction.
        self._view = None
        #: Reusable precomputed scoring state pinned by
        #: :meth:`prepare_scoring`; ``None`` until prepared.  Subclasses
        #: define its shape; once set it is treated as immutable, which
        #: is what makes a prepared hot path safe to share across
        #: threads.
        self._prepared_state = None

    @property
    def database(self):
        return self._database

    # ------------------------------------------------------------------
    # Prepared scoring state
    # ------------------------------------------------------------------
    def prepare_scoring(self):
        """Precompute and pin reusable scoring state (idempotent).

        Called once by :class:`~repro.api.prepared.PreparedQuery` so
        that every subsequent :meth:`rank`/:meth:`rank_many` call runs
        on warm, immutable state — no pattern compilation, no cache
        probing, no per-call recomputation of diagonals or norms.
        Subclasses with per-pattern state override this; algorithms
        that already precompute everything at construction (SimRank's
        dense solve, RWR's walk matrix, ...) inherit the no-op.
        Returns ``self`` for chaining.
        """
        return self

    @property
    def is_prepared(self):
        """True once :meth:`prepare_scoring` has pinned scoring state."""
        return self._prepared_state is not None

    def delta_rescore(self, query_index, plan_deltas):
        """``(columns, scores)`` for candidates a delta may have rescored.

        ``plan_deltas`` maps compiled plan nodes to the sparse delta the
        engine's incremental maintenance applied to each cached matrix
        (zero for untouched entries).  Implementations return a sorted
        index array of every candidate column whose score for
        ``query_index`` could differ from the pre-delta snapshot,
        paired with those candidates' *new* scores — computed with the
        exact same float operations as :meth:`score_rows`, so the
        values are bitwise comparable against a full re-rank.  Return
        ``None`` when a targeted rescore cannot be trusted for this
        delta (missing plan delta, unpinned state, non-entry-local
        scoring); the subscription layer then falls back to a full
        re-rank.  The default supports nothing.
        """
        return None

    def candidates(self, query):
        """Nodes eligible as answers for ``query`` (never the query).

        Candidates are read from the *live* database; scoring them goes
        through the algorithm's snapshot indexer, and a candidate the
        snapshot does not cover raises
        :class:`~repro.exceptions.UnknownNodeError` — uniformly across
        all algorithms (no algorithm silently skips it).  Mutating the
        database after constructing an algorithm is the only way to get
        into that state; open a fresh session/view instead.
        """
        if self._answer_type is not None:
            nodes = self._database.nodes_of_type(self._answer_type)
        else:
            query_type = self._database.node_type(query)
            if query_type is None:
                nodes = list(self._database.nodes())
            else:
                nodes = self._database.nodes_of_type(query_type)
        return [node for node in nodes if node != query]

    # ------------------------------------------------------------------
    # Array-native primitive
    # ------------------------------------------------------------------
    def score_rows(self, queries):
        """Batch scores as ``(query_indices, rows)`` over the node indexer.

        ``rows`` is a dense ``(len(queries), n)`` float array in which
        column ``j`` scores node ``indexer.node_at(j)``; row ``i``
        corresponds to ``queries[i]`` and ``query_indices[i]`` is that
        query's indexer position (used to mask the query out of its own
        candidate row).  Rows cover *all* nodes — candidate filtering
        happens in :meth:`rank_many` via the view's cached candidate
        index, so implementations stay a pure matrix slice.

        Matrix-backed algorithms implement this; algorithms without a
        vectorizable representation leave it unimplemented and the
        ranking methods fall back to the per-query dict path via
        :meth:`scores`.
        """
        raise NotImplementedError(
            "{} does not implement array-native scoring".format(
                type(self).__name__
            )
        )

    def _array_native(self):
        return type(self).score_rows is not SimilarityAlgorithm.score_rows

    def _candidate_arrays(self, query):
        """The cached ``(nodes, columns)`` candidate index for ``query``."""
        answer_type = self._answer_type
        if answer_type is None:
            answer_type = self._database.node_type(query)
        return self._view.candidate_index(answer_type)

    # ------------------------------------------------------------------
    # Dict APIs (thin adapters over score_rows when available)
    # ------------------------------------------------------------------
    def scores(self, query):
        """Mapping candidate -> similarity score.

        Array-native algorithms inherit this adapter over
        :meth:`score_rows`; others implement it directly.
        """
        if self._array_native():
            return self.scores_many([query])[query]
        raise NotImplementedError

    def scores_many(self, queries):
        """``{query: {candidate: score}}`` for a batch of queries.

        For array-native algorithms this is a thin adapter over
        :meth:`score_rows` — one matrix slice for the whole batch, then
        per-candidate dicts.  The default otherwise evaluates queries
        one at a time via :meth:`scores`.  Either way the result is
        contractually identical to per-query ``scores``.
        """
        queries = list(queries)
        if not queries:
            return {}
        if not self._array_native():
            return {query: self.scores(query) for query in queries}
        indices, rows = self.score_rows(queries)
        results = {}
        for i, query in enumerate(queries):
            nodes, columns = self._candidate_arrays(query)
            row = rows[i]
            results[query] = {
                node: float(row[column])
                for node, column in zip(nodes, columns)
                if column != indices[i]
            }
        return results

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def _as_ranking(self, scored_mapping, top_k):
        scored = [
            (node, score)
            for node, score in scored_mapping.items()
            if score > 0
        ]
        ranking = Ranking(scored)
        if top_k is None:
            return ranking
        return Ranking(ranking.items(top_k))

    def _ranking_from_row(self, query, row, query_index, top_k):
        """Array-native top-k: select winners before materializing pairs.

        Zero-score candidates are dropped (same contract as the dict
        path) and the query is masked out of its own row.  With a
        ``top_k``, an ``np.partition`` of the candidate scores finds the
        boundary value; everything strictly above it is in, and ties at
        the boundary are filled in ascending ``str(node)`` order — the
        candidate index is pre-sorted by ``str``, so this reproduces the
        dict path's deterministic tie-break exactly.
        """
        nodes, columns = self._candidate_arrays(query)
        scores = row[columns]
        valid = (scores > 0) & (columns != query_index)
        positions = np.flatnonzero(valid)
        if top_k is not None and top_k <= 0:
            positions = positions[:0]
        elif top_k is not None and len(positions) > top_k:
            candidate_scores = scores[positions]
            boundary = np.partition(
                candidate_scores, len(positions) - top_k
            )[len(positions) - top_k]
            above = positions[candidate_scores > boundary]
            at_boundary = positions[candidate_scores == boundary]
            positions = np.concatenate(
                (above, at_boundary[: top_k - len(above)])
            )
        return Ranking.from_arrays(
            [nodes[position] for position in positions], scores[positions]
        )

    def rank(self, query, top_k=None):
        """Ranked answers for ``query``.

        Zero-score candidates are not answers (a node with no instances
        of the relationship is "not similar", not "similar with score
        0"), and dropping them keeps ranked lists comparable across
        structural variants whose isolated-node sets differ.
        """
        if self._array_native():
            return self.rank_many([query], top_k=top_k)[query]
        return self._as_ranking(self.scores(query), top_k)

    def rank_many(self, queries, top_k=None):
        """``{query: Ranking}`` for a batch of queries.

        Array-native algorithms score each chunk with one
        :meth:`score_rows` call and finish with vectorized top-k
        selection; the rest go through :meth:`rank_many_via_scores`.
        Queries are processed in chunks of :attr:`batch_chunk_size` so
        the vectorized implementations keep bounded peak memory on
        arbitrarily large workloads.  Results are contractually
        identical to looping :meth:`rank`.
        """
        queries = list(queries)
        if not self._array_native():
            return self.rank_many_via_scores(queries, top_k=top_k)
        size = max(int(self.batch_chunk_size), 1)
        rankings = {}
        for start in range(0, len(queries), size):
            chunk = queries[start:start + size]
            indices, rows = self.score_rows(chunk)
            for i, query in enumerate(chunk):
                rankings[query] = self._ranking_from_row(
                    query, rows[i], indices[i], top_k
                )
        return rankings

    def rank_many_via_scores(self, queries, top_k=None):
        """``{query: Ranking}`` through the per-candidate dict path.

        The pre-array *ranking* implementation: build the full
        ``{candidate: score}`` dict per query, then sort the whole
        candidate list.  Raw scores still come from :meth:`scores_many`
        (hence :meth:`score_rows` where available) — what this measures
        and cross-checks against :meth:`rank_many` is everything
        downstream of scoring: dict materialization, zero filtering,
        sorting, truncation.  Score *values* are validated separately by
        the per-algorithm behavior tests.  Kept public as the reference
        for equivalence tests and as the baseline the efficiency
        benchmark compares the array-native path against.
        """
        queries = list(queries)
        size = max(int(self.batch_chunk_size), 1)
        rankings = {}
        for start in range(0, len(queries), size):
            chunk = queries[start:start + size]
            for query, scored in self.scores_many(chunk).items():
                rankings[query] = self._as_ranking(scored, top_k)
        return rankings
