"""Shared interface for similarity search algorithms.

A similarity query (Section 2) is a node id; the answer is a ranked list
of other node ids.  Every algorithm here implements::

    scores(query)            -> {node: score} over candidate nodes
    rank(query, top_k=None)  -> Ranking (sorted, deterministic ties)

Candidates default to nodes of the same type as the query (the paper
ranks proceedings against proceedings, courses against courses) unless an
``answer_type`` is fixed at construction (diseases ranked against drugs
in the BioMed study).
"""


class Ranking:
    """An ordered answer list with scores.

    Ties are broken by node id so that rankings are deterministic — a
    requirement for the robustness comparison to be meaningful (otherwise
    tie shuffling would masquerade as non-robustness).
    """

    def __init__(self, scored_nodes):
        self._items = sorted(
            scored_nodes, key=lambda item: (-item[1], str(item[0]))
        )

    def top(self, k=None):
        """The first ``k`` node ids (all of them when ``k`` is None)."""
        items = self._items if k is None else self._items[:k]
        return [node for node, _ in items]

    def items(self, k=None):
        """``(node, score)`` pairs, optionally truncated."""
        return list(self._items if k is None else self._items[:k])

    def score_of(self, node):
        for candidate, score in self._items:
            if candidate == node:
                return score
        return None

    def position_of(self, node):
        """1-based rank of ``node``; ``None`` when absent."""
        for position, (candidate, _) in enumerate(self._items, start=1):
            if candidate == node:
                return position
        return None

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self.top())

    def __repr__(self):
        preview = ", ".join(
            "{}={:.4f}".format(node, score) for node, score in self._items[:3]
        )
        return "Ranking([{}{}])".format(
            preview, ", ..." if len(self._items) > 3 else ""
        )


class SimilarityAlgorithm:
    """Base class implementing candidate selection and ranking."""

    #: Human-readable name used in experiment reports.
    name = "base"

    def __init__(self, database, answer_type=None):
        self._database = database
        self._answer_type = answer_type

    @property
    def database(self):
        return self._database

    def candidates(self, query):
        """Nodes eligible as answers for ``query`` (never the query)."""
        if self._answer_type is not None:
            nodes = self._database.nodes_of_type(self._answer_type)
        else:
            query_type = self._database.node_type(query)
            if query_type is None:
                nodes = list(self._database.nodes())
            else:
                nodes = self._database.nodes_of_type(query_type)
        return [node for node in nodes if node != query]

    def scores(self, query):
        """Mapping candidate -> similarity score.  Subclasses implement."""
        raise NotImplementedError

    def rank(self, query, top_k=None):
        """Ranked answers for ``query``.

        Zero-score candidates are not answers (a node with no instances
        of the relationship is "not similar", not "similar with score
        0"), and dropping them keeps ranked lists comparable across
        structural variants whose isolated-node sets differ.
        """
        scored = [
            (node, score)
            for node, score in self.scores(query).items()
            if score > 0
        ]
        ranking = Ranking(scored)
        if top_k is None:
            return ranking
        return Ranking(ranking.items(top_k))
