"""Shared interface for similarity search algorithms.

A similarity query (Section 2) is a node id; the answer is a ranked list
of other node ids.  Every algorithm here implements::

    scores(query)            -> {node: score} over candidate nodes
    rank(query, top_k=None)  -> Ranking (sorted, deterministic ties)

Candidates default to nodes of the same type as the query (the paper
ranks proceedings against proceedings, courses against courses) unless an
``answer_type`` is fixed at construction (diseases ranked against drugs
in the BioMed study).

Every algorithm accepts an injected ``engine``
(:class:`~repro.lang.matrix_semantics.CommutingMatrixEngine`) so a
:class:`~repro.api.SimilaritySession` can share one set of materialized
matrices across all the algorithms it constructs; topology-based
algorithms that only need adjacency matrices reuse the engine's
:class:`~repro.graph.matrices.MatrixView`.
"""

from repro.graph.matrices import MatrixView


def resolve_view(database, view=None, engine=None):
    """The :class:`MatrixView` an algorithm should compute on.

    Preference order: an explicit ``view``, then the view of an injected
    ``engine`` (so session-constructed algorithms share adjacency
    matrices and node indexing), then a fresh view over ``database``.
    """
    if view is not None:
        return view
    if engine is not None:
        return engine.view
    return MatrixView(database)


class Ranking:
    """An ordered answer list with scores.

    Ties are broken by node id so that rankings are deterministic — a
    requirement for the robustness comparison to be meaningful (otherwise
    tie shuffling would masquerade as non-robustness).
    """

    def __init__(self, scored_nodes):
        self._items = sorted(
            scored_nodes, key=lambda item: (-item[1], str(item[0]))
        )
        self._lookup = None

    def top(self, k=None):
        """The first ``k`` node ids (all of them when ``k`` is None)."""
        items = self._items if k is None else self._items[:k]
        return [node for node, _ in items]

    def items(self, k=None):
        """``(node, score)`` pairs, optionally truncated."""
        return list(self._items if k is None else self._items[:k])

    def _positions(self):
        # Built lazily on the first lookup: metric code calls
        # score_of/position_of once per candidate, and a linear scan per
        # call is quadratic over a workload.
        if self._lookup is None:
            self._lookup = {
                node: (position, score)
                for position, (node, score) in enumerate(self._items, start=1)
            }
        return self._lookup

    def score_of(self, node):
        entry = self._positions().get(node)
        return None if entry is None else entry[1]

    def position_of(self, node):
        """1-based rank of ``node``; ``None`` when absent."""
        entry = self._positions().get(node)
        return None if entry is None else entry[0]

    def __len__(self):
        return len(self._items)

    def __iter__(self):
        return iter(self.top())

    def __repr__(self):
        preview = ", ".join(
            "{}={:.4f}".format(node, score) for node, score in self._items[:3]
        )
        return "Ranking([{}{}])".format(
            preview, ", ..." if len(self._items) > 3 else ""
        )


class SimilarityAlgorithm:
    """Base class implementing candidate selection and ranking."""

    #: Human-readable name used in experiment reports.
    name = "base"

    #: Queries per ``scores_many`` call inside ``rank_many``.  Batch
    #: implementations densify a (queries x nodes) block, so an
    #: unchunked million-query workload would allocate workload-sized
    #: dense arrays; per-row scores are independent, so chunking
    #: changes nothing but peak memory.
    batch_chunk_size = 512

    def __init__(self, database, answer_type=None):
        self._database = database
        self._answer_type = answer_type

    @property
    def database(self):
        return self._database

    def candidates(self, query):
        """Nodes eligible as answers for ``query`` (never the query)."""
        if self._answer_type is not None:
            nodes = self._database.nodes_of_type(self._answer_type)
        else:
            query_type = self._database.node_type(query)
            if query_type is None:
                nodes = list(self._database.nodes())
            else:
                nodes = self._database.nodes_of_type(query_type)
        return [node for node in nodes if node != query]

    def scores(self, query):
        """Mapping candidate -> similarity score.  Subclasses implement."""
        raise NotImplementedError

    def scores_many(self, queries):
        """``{query: {candidate: score}}`` for a batch of queries.

        The default evaluates queries one at a time; matrix-backed
        algorithms override this with a single sparse row slice per
        pattern (``matrix[rows, :]``) so a workload costs one slice
        instead of one extraction per query.  Overrides must produce
        exactly the per-query scores — ``rank_many`` is contractually
        identical to looped ``rank``.
        """
        return {query: self.scores(query) for query in queries}

    def _as_ranking(self, scored_mapping, top_k):
        scored = [
            (node, score)
            for node, score in scored_mapping.items()
            if score > 0
        ]
        ranking = Ranking(scored)
        if top_k is None:
            return ranking
        return Ranking(ranking.items(top_k))

    def rank(self, query, top_k=None):
        """Ranked answers for ``query``.

        Zero-score candidates are not answers (a node with no instances
        of the relationship is "not similar", not "similar with score
        0"), and dropping them keeps ranked lists comparable across
        structural variants whose isolated-node sets differ.
        """
        return self._as_ranking(self.scores(query), top_k)

    def rank_many(self, queries, top_k=None):
        """``{query: Ranking}`` for a batch, via :meth:`scores_many`.

        Queries are fed to :meth:`scores_many` in chunks of
        :attr:`batch_chunk_size` so the vectorized implementations keep
        bounded peak memory on arbitrarily large workloads.
        """
        queries = list(queries)
        size = max(int(self.batch_chunk_size), 1)
        rankings = {}
        for start in range(0, len(queries), size):
            chunk = queries[start:start + size]
            for query, scored in self.scores_many(chunk).items():
                rankings[query] = self._as_ranking(scored, top_k)
        return rankings
