"""Pattern-constrained RWR and SimRank (Proposition 4).

The paper extends RWR and SimRank so that a "hop" is an instance of a
given relationship pattern instead of a single edge: build the weight
matrix ``W = M_p`` from the pattern's commuting matrix, then run the
ordinary algorithm on that weighted graph.  With RRE patterns, these
variants inherit RelSim's structural robustness (Proposition 4) — the
weight matrices are equal across invertible variations, so the walks are
identical.
"""

import numpy as np

from repro.lang.ast import Pattern
from repro.lang.matrix_semantics import CommutingMatrixEngine
from repro.lang.parser import parse_pattern
from repro.graph.matrices import row_normalize
from repro.similarity.base import SimilarityAlgorithm
from repro.similarity.rwr import rwr_vector
from repro.similarity.simrank import simrank_matrix


def _pattern_and_engine(database, pattern, engine):
    if isinstance(pattern, str):
        pattern = parse_pattern(pattern)
    if not isinstance(pattern, Pattern):
        raise TypeError("pattern must be a string or Pattern AST")
    engine = engine or CommutingMatrixEngine(database)
    return pattern, engine


class PatternRWR(SimilarityAlgorithm):
    """RWR whose hops follow instances of one RRE pattern.

    The walk matrix is the row-normalized commuting matrix of the
    pattern, symmetrized so the walk can follow the relationship both
    ways (``W = M_p + M_p^T`` before normalization).
    """

    name = "PatternRWR"

    # The walk only reaches nodes connected through the pattern, but the
    # dense power iteration's rounding depends on vector length, so the
    # inherited delta_growth_sensitive=True stays.
    pattern_local = True

    def __init__(
        self,
        database,
        pattern,
        restart=0.8,
        engine=None,
        answer_type=None,
        max_iterations=200,
    ):
        super().__init__(database, answer_type=answer_type)
        self.pattern, self.engine = _pattern_and_engine(
            database, pattern, engine
        )
        self._view = self.engine.view
        weights = self.engine.matrix(self.pattern)
        weights = weights + weights.T
        self._walk = row_normalize(weights)
        self.restart = restart
        self._max_iterations = max_iterations

    def score_rows(self, queries):
        """One power-iteration solve per query, stacked into score rows."""
        queries = list(queries)
        indices = self.engine.query_indices(queries)
        rows = np.empty((len(queries), len(self.engine.indexer)))
        for i, index in enumerate(indices):
            rows[i] = rwr_vector(
                self._walk,
                int(index),
                restart=self.restart,
                max_iterations=self._max_iterations,
            )
        return indices, rows


class PatternSimRank(SimilarityAlgorithm):
    """SimRank whose hops follow instances of one RRE pattern."""

    name = "PatternSimRank"

    # Hops are pattern instances, but the dense iteration multiplies
    # full n x n blocks (BLAS rounding varies with shape), so the
    # inherited delta_growth_sensitive=True stays.
    pattern_local = True

    def __init__(
        self,
        database,
        pattern,
        damping=0.8,
        iterations=10,
        engine=None,
        answer_type=None,
        max_nodes=5000,
    ):
        super().__init__(database, answer_type=answer_type)
        self.pattern, self.engine = _pattern_and_engine(
            database, pattern, engine
        )
        n = len(self.engine.indexer)
        if n > max_nodes:
            from repro.exceptions import EvaluationError

            raise EvaluationError(
                "PatternSimRank needs a dense {0}x{0} matrix; over "
                "max_nodes={1}".format(n, max_nodes)
            )
        self._view = self.engine.view
        weights = self.engine.matrix(self.pattern)
        weights = weights + weights.T
        self._scores = simrank_matrix(
            weights, damping=damping, iterations=iterations
        )

    def score_rows(self, queries):
        """Batch score rows from one slice of the precomputed dense matrix."""
        indices = self.engine.query_indices(queries)
        return indices, self._scores[indices, :]
