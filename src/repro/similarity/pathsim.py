"""PathSim (Sun et al., VLDB 2011) over commuting matrices.

Given a meta-path ``p``, PathSim scores
``sim_p(u, v) = 2 |u ~p~> v| / (|u ~p~> u| + |v ~p~> v|)`` (Equation 1).
The formula needs *round-trip* path counts on the diagonal, so it is only
meaningful for symmetric patterns whose endpoints share a node type; the
paper switches to HeteSim for asymmetric relationships (BioMed).

Our implementation accepts any RRE (that is precisely RelSim's trick —
see :mod:`repro.core.relsim`); classic PathSim corresponds to passing a
simple pattern.
"""

import numpy as np

from repro.exceptions import AsymmetricPatternError
from repro.lang.ast import Pattern, simple_steps
from repro.lang.matrix_semantics import (
    CommutingMatrixEngine,
    pathsim_columns,
    pathsim_rows,
)
from repro.lang.parser import parse_pattern
from repro.similarity.base import SimilarityAlgorithm


def is_symmetric_meta_path(pattern):
    """True when a simple pattern reads the same forward and backward.

    A meta-path ``l1 ... ln`` is symmetric when reversing it (and flipping
    each step's direction) reproduces the original — the condition for
    PathSim's diagonal terms to be round-trip counts.
    Non-simple patterns return False (symmetry is then undecidable
    syntactically; callers may still proceed, scores stay well-defined).
    """
    try:
        steps = simple_steps(pattern)
    except ValueError:
        return False
    flipped = [(name, not reversed_) for name, reversed_ in reversed(steps)]
    return steps == flipped


class PathSim(SimilarityAlgorithm):
    """PathSim similarity search for one relationship pattern.

    Parameters
    ----------
    database:
        The graph database to search.
    pattern:
        A simple pattern (meta-path) — string or AST.  Full RREs are
        accepted too; RelSim builds on this.
    engine:
        Optional pre-built :class:`CommutingMatrixEngine` (share one
        across algorithms to reuse materialized matrices).
    strict_symmetry:
        When True, reject patterns that are not symmetric meta-paths with
        :class:`AsymmetricPatternError` (the paper's reason for using
        HeteSim on BioMed).
    """

    name = "PathSim"

    pattern_local = True
    #: Equation 1 is entry-local sparse arithmetic over stored counts;
    #: padding the node set cannot move any existing score.
    delta_growth_sensitive = False

    def __init__(
        self,
        database,
        pattern,
        engine=None,
        answer_type=None,
        strict_symmetry=False,
    ):
        super().__init__(database, answer_type=answer_type)
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        if not isinstance(pattern, Pattern):
            raise TypeError("pattern must be a string or Pattern AST")
        if strict_symmetry and not is_symmetric_meta_path(pattern):
            raise AsymmetricPatternError(
                "pattern {} is not a symmetric meta-path; use HeteSim for "
                "asymmetric relationships".format(pattern)
            )
        self.pattern = pattern
        self.engine = engine or CommutingMatrixEngine(database)
        self._view = self.engine.view

    def prepare_scoring(self):
        """Pin the commuting matrix and its diagonal (idempotent).

        The diagonal comes from the engine's cache, which delta
        maintenance patches in place — re-pinning after a live update
        reuses it unless the pattern's matrix actually changed.
        """
        if self._prepared_state is None:
            matrix = self.engine.matrix(self.pattern)
            matrix.sum_duplicates()  # dense_rows needs canonical CSR
            self._prepared_state = (matrix, self.engine.diagonal(self.pattern))
        return self

    def delta_rescore(self, query_index, plan_deltas):
        """Targeted rescore of delta-touched candidates (see RelSim's).

        Single-pattern specialization: the affected columns are the
        delta's stored entries on the query row plus every node whose
        round-trip diagonal moved; a delta to the query's own diagonal
        moves every denominator and returns None (full re-rank).
        """
        state = self._prepared_state
        if state is None:
            return None
        d = plan_deltas.get(self.engine.compile(self.pattern))
        if d is None:
            return None
        if d.nnz == 0:
            return np.empty(0, dtype=np.intp), np.zeros(0)
        diagonal_delta = d.diagonal()
        if diagonal_delta[query_index] != 0:
            return None
        start, end = d.indptr[query_index], d.indptr[query_index + 1]
        affected = {int(col) for col in d.indices[start:end]}
        affected.update(int(row) for row in np.flatnonzero(diagonal_delta))
        if not affected:
            return np.empty(0, dtype=np.intp), np.zeros(0)
        columns = np.array(sorted(affected), dtype=np.intp)
        matrix, diagonal = state
        scores = pathsim_columns(
            matrix, query_index, diagonal, columns, np.zeros(len(columns))
        )
        return columns, scores

    def score_rows(self, queries):
        """Batch score rows from one sparse slice of the commuting matrix."""
        queries = list(queries)
        indices = self.engine.query_indices(queries)
        state = self._prepared_state
        if state is not None:
            matrix, diagonal = state
            return indices, pathsim_rows(matrix, indices, diagonal)
        return indices, self.engine.pathsim_scores_from_many(
            self.pattern, queries
        )
