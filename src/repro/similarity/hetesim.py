"""HeteSim (Shi et al., TKDE 2014): relevance for asymmetric meta-paths.

HeteSim models two random walkers starting from the two endpoints and
walking toward each other along the meta-path; the score is the cosine of
their mid-point arrival distributions::

    HeteSim(s, t | p) = U_L(s, :) . U_R(t, :)
                        / (|U_L(s, :)| |U_R(t, :)|)

where ``U_L`` multiplies the row-normalized transition matrices of the
first half of the path and ``U_R`` those of the reversed second half.
Odd-length paths are handled with the original paper's *edge
decomposition*: the middle relation ``E`` is split as ``E = E_out E_in``
through one artificial node per edge instance, which makes every path
even.

Because scores are cosine-normalized they also work when source and
target types differ — this is how the paper evaluates disease-to-drug
queries on BioMed where PathSim's formula is undefined.
"""

import numpy as np
import scipy.sparse as sp

from repro.exceptions import EvaluationError
from repro.graph.matrices import dense_rows, row_normalize
from repro.lang.ast import Pattern, simple_steps
from repro.lang.parser import parse_pattern
from repro.similarity.base import SimilarityAlgorithm, resolve_view


def _step_matrix(view, name, reversed_):
    matrix = view.adjacency(name)
    return matrix.T.tocsr() if reversed_ else matrix


def _edge_decomposition(matrix):
    """Split ``matrix`` into ``(out, in)`` through one node per edge.

    ``out`` is ``n x e`` and ``in`` is ``e x m`` with
    ``out @ in == matrix``; multiplicities are preserved by repeating
    edge columns, so an entry of ``c`` (a summed parallel edge)
    decomposes through ``c`` artificial nodes, exactly as HeteSim's
    original edge decomposition prescribes.
    """
    coo = matrix.tocoo()
    if not np.allclose(coo.data, np.rint(coo.data)):
        raise EvaluationError(
            "edge decomposition needs integer edge multiplicities; got "
            "fractional weights (min {:.4g})".format(coo.data.min())
        )
    multiplicities = np.asarray(
        np.rint(coo.data), dtype=np.int64
    ).clip(min=0)
    rows = np.repeat(coo.row, multiplicities)
    cols = np.repeat(coo.col, multiplicities)
    count = int(multiplicities.sum())
    data = np.ones(count)
    out = sp.csr_matrix(
        (data, (rows, np.arange(count))), shape=(matrix.shape[0], count)
    )
    into = sp.csr_matrix(
        (data, (np.arange(count), cols)), shape=(count, matrix.shape[1])
    )
    return out, into


class HeteSim(SimilarityAlgorithm):
    """HeteSim relevance search along a simple (possibly asymmetric) path.

    Parameters
    ----------
    pattern:
        A *simple* pattern — HeteSim is defined on meta-paths.  For RREs,
        use RelSim.
    answer_type:
        The node type to rank (e.g. ``"drug"`` for disease queries).
    """

    name = "HeteSim"

    pattern_local = True
    #: The halves are sparse products of row-normalized step matrices;
    #: node padding adds empty rows/columns without touching any stored
    #: entry, so existing scores are bitwise stable.
    delta_growth_sensitive = False

    def __init__(
        self, database, pattern, answer_type=None, view=None, engine=None
    ):
        super().__init__(database, answer_type=answer_type)
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        if not isinstance(pattern, Pattern):
            raise TypeError("pattern must be a string or Pattern AST")
        try:
            steps = simple_steps(pattern)
        except ValueError as error:
            raise EvaluationError(
                "HeteSim needs a simple meta-path: {}".format(error)
            ) from None
        if not steps:
            raise EvaluationError("HeteSim needs a non-empty meta-path")
        self.pattern = pattern
        self._view = resolve_view(database, view=view, engine=engine)
        self._left, self._right = self._build_halves(steps)
        self._target_norms = None

    def _build_halves(self, steps):
        matrices = [
            _step_matrix(self._view, name, reversed_)
            for name, reversed_ in steps
        ]
        if len(matrices) % 2 == 1:
            middle = len(matrices) // 2
            out, into = _edge_decomposition(matrices[middle])
            matrices = matrices[:middle] + [out, into] + matrices[middle + 1 :]
        half = len(matrices) // 2
        left = row_normalize(matrices[0])
        for matrix in matrices[1:half]:
            left = (left @ row_normalize(matrix)).tocsr()
        # Right half walks backwards from the target toward the middle.
        right = row_normalize(matrices[-1].T.tocsr())
        for matrix in reversed(matrices[half:-1]):
            right = (right @ row_normalize(matrix.T.tocsr())).tocsr()
        return left, right

    def _norms_of_right(self):
        if self._target_norms is None:
            squared = self._right.multiply(self._right).sum(axis=1)
            self._target_norms = np.sqrt(np.asarray(squared).ravel())
        return self._target_norms

    def prepare_scoring(self):
        """Warm the target-norm vector (the halves are built at init)."""
        if self._prepared_state is None:
            self._prepared_state = self._norms_of_right()
        return self

    def score_rows(self, queries):
        """Batch score rows via one left-row slice and one sparse product.

        ``score(q, v) = (L[q] . R[v]) / (|L[q]| |R[v]|)`` for all
        queries and nodes at once: ``L[rows, :] @ R^T`` replaces the
        per-candidate dot products, and the target norms are computed
        once per instance.  Scores with a zero source or target norm are
        0 (no walk reaches the midpoint from that endpoint).
        """
        queries = list(queries)
        indices = self._view.query_indices(queries)
        left_rows = self._left[indices, :].tocsr()
        squared = left_rows.multiply(left_rows).sum(axis=1)
        source_norms = np.sqrt(np.asarray(squared).ravel())
        product = (left_rows @ self._right.T).tocsr()
        products = dense_rows(product, range(product.shape[0]))
        target_norms = self._norms_of_right()
        denominator = source_norms[:, None] * target_norms[None, :]
        scores = np.zeros_like(products)
        defined = denominator > 0
        scores[defined] = products[defined] / denominator[defined]
        return indices, scores
