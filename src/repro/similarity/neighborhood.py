"""Neighborhood-based baselines: common neighbors and the Katz-beta index.

Section 4.1 lists these among the similarity measures that extend the
random-walk family ("common neighbors, Katz-beta measure, commute time,
and sampled random walks") and argues they inherit the same
non-robustness: both are functions of the raw topology, which invertible
transformations freely reshape.  They are included as additional
baselines for the robustness experiments.
"""

import numpy as np

from repro.exceptions import EvaluationError
from repro.graph.matrices import boolean, dense_rows
from repro.similarity.base import SimilarityAlgorithm, resolve_view


class CommonNeighbors(SimilarityAlgorithm):
    """Score = number of shared neighbors in the symmetrized topology.

    ``score(u, v) = | N(u) ∩ N(v) |`` with ``N`` taken over all labels in
    both directions.  Computed as a row of ``B @ B`` where ``B`` is the
    boolean symmetric adjacency.
    """

    name = "CommonNeighbors"

    def __init__(self, database, answer_type=None, view=None, engine=None):
        super().__init__(database, answer_type=answer_type)
        self._view = resolve_view(database, view=view, engine=engine)
        self._boolean = boolean(
            self._view.combined_adjacency(symmetric=True)
        )

    def score_rows(self, queries):
        """Batch score rows: one sparse slice-and-multiply for all queries.

        CSR matmul builds each output row from that row's nonzeros
        alone, so row ``i`` of ``B[rows, :] @ B`` is exactly the
        single-query product — the batch is a pure speedup.
        """
        queries = list(queries)
        indices = self._view.query_indices(queries)
        product = (self._boolean[indices, :] @ self._boolean).tocsr()
        counts = dense_rows(product, range(product.shape[0]))
        return indices, counts


class Katz(SimilarityAlgorithm):
    """The Katz-beta status index (Katz, Psychometrika 1953).

    ``score(u, v) = sum_k beta^k * (#walks of length k from u to v)``,
    i.e. row ``u`` of ``(I - beta A)^{-1} - I``.  Computed per query by
    the geometric power series, which converges when
    ``beta < 1 / lambda_max(A)``; we validate against the (cheap) upper
    bound ``lambda_max <= max degree`` and raise otherwise.
    """

    name = "Katz"

    def __init__(
        self,
        database,
        beta=0.005,
        max_iterations=1000,
        tolerance=1e-10,
        answer_type=None,
        view=None,
        engine=None,
    ):
        super().__init__(database, answer_type=answer_type)
        if beta <= 0:
            raise EvaluationError("beta must be positive, got {}".format(beta))
        self._view = resolve_view(database, view=view, engine=engine)
        adjacency = self._view.combined_adjacency(symmetric=True)
        max_degree = (
            adjacency.sum(axis=1).max() if adjacency.nnz else 0.0
        )
        if beta * max_degree >= 1.0:
            raise EvaluationError(
                "beta={} does not converge: beta * max_degree = {:.3f} >= 1; "
                "choose beta < {:.5f}".format(
                    beta, float(beta * max_degree), 1.0 / max(max_degree, 1)
                )
            )
        self._adjacency = adjacency.T.tocsr()
        self.beta = beta
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def _katz_vector(self, index):
        term = np.zeros(len(self._view.indexer))
        term[index] = 1.0
        total = np.zeros_like(term)
        for _ in range(self._max_iterations):
            term = self.beta * (self._adjacency @ term)
            total += term
            if term.sum() < self._tolerance:
                break
        return total

    def score_rows(self, queries):
        """One geometric power series per query, stacked into score rows."""
        queries = list(queries)
        indices = self._view.query_indices(queries)
        rows = np.empty((len(queries), len(self._view.indexer)))
        for i, index in enumerate(indices):
            rows[i] = self._katz_vector(int(index))
        return indices, rows
