"""Neighborhood-based baselines: common neighbors and the Katz-beta index.

Section 4.1 lists these among the similarity measures that extend the
random-walk family ("common neighbors, Katz-beta measure, commute time,
and sampled random walks") and argues they inherit the same
non-robustness: both are functions of the raw topology, which invertible
transformations freely reshape.  They are included as additional
baselines for the robustness experiments.
"""

import numpy as np

from repro.exceptions import EvaluationError
from repro.graph.matrices import boolean
from repro.similarity.base import SimilarityAlgorithm, resolve_view


class CommonNeighbors(SimilarityAlgorithm):
    """Score = number of shared neighbors in the symmetrized topology.

    ``score(u, v) = | N(u) ∩ N(v) |`` with ``N`` taken over all labels in
    both directions.  Computed as a row of ``B @ B`` where ``B`` is the
    boolean symmetric adjacency.
    """

    name = "CommonNeighbors"

    def __init__(self, database, answer_type=None, view=None, engine=None):
        super().__init__(database, answer_type=answer_type)
        self._view = resolve_view(database, view=view, engine=engine)
        self._boolean = boolean(
            self._view.combined_adjacency(symmetric=True)
        )

    def scores(self, query):
        indexer = self._view.indexer
        row = self._boolean[indexer.index_of(query), :]
        counts = np.asarray((row @ self._boolean).todense()).ravel()
        return {
            node: float(counts[indexer.index_of(node)])
            for node in self.candidates(query)
            if node in indexer
        }

    def scores_many(self, queries):
        """Batch scores: one sparse slice-and-multiply for all queries.

        CSR matmul builds each output row from that row's nonzeros
        alone, so row ``i`` of ``B[rows, :] @ B`` is exactly the
        single-query product — the batch is a pure speedup.
        """
        queries = list(queries)
        if not queries:
            return {}
        indexer = self._view.indexer
        indices = [indexer.index_of(query) for query in queries]
        counts = np.asarray(
            (self._boolean[indices, :] @ self._boolean).todense()
        )
        return {
            query: {
                node: float(counts[i, indexer.index_of(node)])
                for node in self.candidates(query)
                if node in indexer
            }
            for i, query in enumerate(queries)
        }


class Katz(SimilarityAlgorithm):
    """The Katz-beta status index (Katz, Psychometrika 1953).

    ``score(u, v) = sum_k beta^k * (#walks of length k from u to v)``,
    i.e. row ``u`` of ``(I - beta A)^{-1} - I``.  Computed per query by
    the geometric power series, which converges when
    ``beta < 1 / lambda_max(A)``; we validate against the (cheap) upper
    bound ``lambda_max <= max degree`` and raise otherwise.
    """

    name = "Katz"

    def __init__(
        self,
        database,
        beta=0.005,
        max_iterations=1000,
        tolerance=1e-10,
        answer_type=None,
        view=None,
        engine=None,
    ):
        super().__init__(database, answer_type=answer_type)
        if beta <= 0:
            raise EvaluationError("beta must be positive, got {}".format(beta))
        self._view = resolve_view(database, view=view, engine=engine)
        adjacency = self._view.combined_adjacency(symmetric=True)
        max_degree = (
            adjacency.sum(axis=1).max() if adjacency.nnz else 0.0
        )
        if beta * max_degree >= 1.0:
            raise EvaluationError(
                "beta={} does not converge: beta * max_degree = {:.3f} >= 1; "
                "choose beta < {:.5f}".format(
                    beta, float(beta * max_degree), 1.0 / max(max_degree, 1)
                )
            )
        self._adjacency = adjacency.T.tocsr()
        self.beta = beta
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def scores(self, query):
        indexer = self._view.indexer
        term = np.zeros(len(indexer))
        term[indexer.index_of(query)] = 1.0
        total = np.zeros_like(term)
        for _ in range(self._max_iterations):
            term = self.beta * (self._adjacency @ term)
            total += term
            if term.sum() < self._tolerance:
                break
        return {
            node: float(total[indexer.index_of(node)])
            for node in self.candidates(query)
            if node in indexer
        }
