"""Similarity search algorithms: PathSim, HeteSim, SimRank, RWR, and
pattern-constrained variants."""

from repro.similarity.base import Ranking, SimilarityAlgorithm
from repro.similarity.hetesim import HeteSim
from repro.similarity.neighborhood import CommonNeighbors, Katz
from repro.similarity.pathsim import PathSim, is_symmetric_meta_path
from repro.similarity.pattern_constrained import PatternRWR, PatternSimRank
from repro.similarity.rwr import RWR, rwr_vector
from repro.similarity.simrank import SimRank, simrank_matrix

__all__ = [
    "CommonNeighbors",
    "HeteSim",
    "Katz",
    "PathSim",
    "PatternRWR",
    "PatternSimRank",
    "RWR",
    "Ranking",
    "SimRank",
    "SimilarityAlgorithm",
    "is_symmetric_meta_path",
    "rwr_vector",
    "simrank_matrix",
]
