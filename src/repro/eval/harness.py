"""Experiment harnesses reproducing the Section-7 methodology.

* :class:`RobustnessExperiment` — run a workload with each algorithm on
  a database and on its transformed variant, and report average
  normalized Kendall tau at top-5/top-10 (Tables 1 and 2).
* :class:`EffectivenessExperiment` — MRR against ground truth on a
  database (and optionally its transformed variant; Table 3).
* :func:`time_queries` — average per-query wall time (Table 4/Figure 5).

Algorithms are supplied as *factories* ``factory(database) -> algorithm``
because each variant needs its own engine/matrices (and, for the
pattern-based methods, its own translated pattern).  Pass ``sessions``
(one :class:`~repro.api.SimilaritySession` per variant) and the
factories receive the session instead — every algorithm on a variant
then shares that variant's materialized matrices, which is the hot-path
saving: robustness runs stop rebuilding identical matrices per
algorithm.  Query workloads are scored through the batch path
(``rank_many``), one sparse row slice per pattern instead of one
extraction per query, finished with the array-native top-k selection
(``score_rows`` + ``np.argpartition``) rather than per-candidate dicts.
"""

import time

from repro.eval.metrics import average_top_k_tau, mean_reciprocal_rank


class RobustnessResult:
    """Average tau@k per algorithm for one transformation."""

    def __init__(self, transformation_name, taus):
        self.transformation_name = transformation_name
        #: ``{algorithm_name: {k: tau}}``
        self.taus = taus

    def tau(self, algorithm_name, k):
        return self.taus[algorithm_name][k]

    def __repr__(self):
        return "RobustnessResult({!r}, {})".format(
            self.transformation_name, self.taus
        )


class RobustnessExperiment:
    """Compare rankings across a database and its structural variant.

    Parameters
    ----------
    source_database:
        The original database ``I``.
    transformed_database:
        A member of ``Sigma(I)`` (apply the transformation yourself so
        the same variant can be reused across algorithms).
    algorithms:
        ``{name: (source_factory, target_factory)}`` — separate factories
        because pattern-based algorithms use the translated pattern on
        the target side.  Factories are called with the database — or,
        when ``sessions`` is given, with the corresponding session, so
        all algorithms on one side share an engine.
    queries:
        Query node ids (preserved by the transformation).
    sessions:
        Optional ``(source_session, target_session)`` pair of
        :class:`~repro.api.SimilaritySession` objects.
    """

    def __init__(
        self,
        source_database,
        transformed_database,
        algorithms,
        queries,
        top_ks=(5, 10),
        transformation_name="",
        sessions=None,
    ):
        self.source_database = source_database
        self.transformed_database = transformed_database
        self.algorithms = dict(algorithms)
        self.queries = [
            q
            for q in queries
            if source_database.has_node(q) and transformed_database.has_node(q)
        ]
        self.top_ks = tuple(top_ks)
        self.transformation_name = transformation_name
        self.sessions = tuple(sessions) if sessions is not None else None
        if self.sessions is not None and len(self.sessions) != 2:
            raise ValueError(
                "sessions must be a (source_session, target_session) pair"
            )

    def run(self):
        taus = {}
        max_k = max(self.top_ks)
        if self.sessions is not None:
            source_target = self.sessions
        else:
            source_target = (self.source_database, self.transformed_database)
        for name, (source_factory, target_factory) in self.algorithms.items():
            source_algorithm = source_factory(source_target[0])
            target_algorithm = target_factory(source_target[1])
            source_rankings = {
                query: ranking.top()
                for query, ranking in source_algorithm.rank_many(
                    self.queries, top_k=max_k
                ).items()
            }
            target_rankings = {
                query: ranking.top()
                for query, ranking in target_algorithm.rank_many(
                    self.queries, top_k=max_k
                ).items()
            }
            taus[name] = {
                k: average_top_k_tau(source_rankings, target_rankings, k)
                for k in self.top_ks
            }
        return RobustnessResult(self.transformation_name, taus)


class EffectivenessResult:
    """MRR per algorithm, per database variant."""

    def __init__(self, mrrs):
        #: ``{variant_name: {algorithm_name: mrr}}``
        self.mrrs = mrrs

    def mrr(self, variant_name, algorithm_name):
        return self.mrrs[variant_name][algorithm_name]

    def __repr__(self):
        return "EffectivenessResult({})".format(self.mrrs)


class EffectivenessExperiment:
    """MRR of several algorithms against planted/expert ground truth.

    Parameters
    ----------
    variants:
        ``{variant_name: database}`` — e.g. original BioMed and BioMed
        under BioMedT.
    algorithms:
        ``{algorithm_name: {variant_name: factory}}``.
    ground_truth:
        ``{query: relevant node(s)}``.
    """

    def __init__(self, variants, algorithms, ground_truth, top_k=None):
        self.variants = dict(variants)
        self.algorithms = dict(algorithms)
        self.ground_truth = dict(ground_truth)
        self.top_k = top_k

    def run(self):
        mrrs = {name: {} for name in self.variants}
        for algorithm_name, factories in self.algorithms.items():
            for variant_name, database in self.variants.items():
                factory = factories.get(variant_name)
                if factory is None:
                    continue
                algorithm = factory(database)
                present = [
                    query
                    for query in self.ground_truth
                    if database.has_node(query)
                ]
                rankings = {
                    query: ranking.top()
                    for query, ranking in algorithm.rank_many(
                        present, top_k=self.top_k
                    ).items()
                }
                # Restrict the ground truth to queries the variant can
                # answer: a query whose node the transformation dropped
                # would otherwise contribute a spurious RR of 0 and
                # deflate the variant's MRR.
                mrrs[variant_name][algorithm_name] = mean_reciprocal_rank(
                    rankings,
                    {query: self.ground_truth[query] for query in present},
                )
        return EffectivenessResult(mrrs)


def time_queries(algorithm, queries, repeat=1, top_k=10, batched=False,
                 dict_path=False):
    """Average seconds per query (the measure of Table 4 / Figure 5).

    The algorithm is constructed by the caller so that one-off setup cost
    (e.g. materialized matrices, SimRank's all-pairs solve) can be kept
    in or out of the measurement deliberately.

    Parameters
    ----------
    top_k:
        Ranking cutoff per query (the paper times top-10 retrieval).
    batched:
        When True, time the batch path (``rank_many`` over the whole
        workload) instead of one ``rank`` call per query — the number
        reported is still seconds *per query*.
    dict_path:
        When True, force the per-candidate dict implementation
        (``rank_many_via_scores``) instead of the array-native top-k
        path — the before/after baseline of the efficiency benchmark.
    """
    if not queries:
        return 0.0
    started = time.perf_counter()
    for _ in range(repeat):
        if batched:
            if dict_path:
                algorithm.rank_many_via_scores(queries, top_k=top_k)
            else:
                algorithm.rank_many(queries, top_k=top_k)
        elif dict_path:
            for query in queries:
                algorithm.rank_many_via_scores([query], top_k=top_k)
        else:
            for query in queries:
                algorithm.rank(query, top_k=top_k)
    elapsed = time.perf_counter() - started
    return elapsed / (repeat * len(queries))
