"""Experiment harnesses reproducing the Section-7 methodology.

* :class:`RobustnessExperiment` — run a workload with each algorithm on
  a database and on its transformed variant, and report average
  normalized Kendall tau at top-5/top-10 (Tables 1 and 2).
* :class:`EffectivenessExperiment` — MRR against ground truth on a
  database (and optionally its transformed variant; Table 3).
* :func:`time_queries` — average per-query wall time (Table 4/Figure 5).

Algorithms are supplied as *factories* ``factory(database) -> algorithm``
because each variant needs its own engine/matrices (and, for the
pattern-based methods, its own translated pattern).
"""

import time

from repro.eval.metrics import average_top_k_tau, mean_reciprocal_rank


class RobustnessResult:
    """Average tau@k per algorithm for one transformation."""

    def __init__(self, transformation_name, taus):
        self.transformation_name = transformation_name
        #: ``{algorithm_name: {k: tau}}``
        self.taus = taus

    def tau(self, algorithm_name, k):
        return self.taus[algorithm_name][k]

    def __repr__(self):
        return "RobustnessResult({!r}, {})".format(
            self.transformation_name, self.taus
        )


class RobustnessExperiment:
    """Compare rankings across a database and its structural variant.

    Parameters
    ----------
    source_database:
        The original database ``I``.
    transformed_database:
        A member of ``Sigma(I)`` (apply the transformation yourself so
        the same variant can be reused across algorithms).
    algorithms:
        ``{name: (source_factory, target_factory)}`` — separate factories
        because pattern-based algorithms use the translated pattern on
        the target side.
    queries:
        Query node ids (preserved by the transformation).
    """

    def __init__(
        self,
        source_database,
        transformed_database,
        algorithms,
        queries,
        top_ks=(5, 10),
        transformation_name="",
    ):
        self.source_database = source_database
        self.transformed_database = transformed_database
        self.algorithms = dict(algorithms)
        self.queries = [
            q
            for q in queries
            if source_database.has_node(q) and transformed_database.has_node(q)
        ]
        self.top_ks = tuple(top_ks)
        self.transformation_name = transformation_name

    def run(self):
        taus = {}
        max_k = max(self.top_ks)
        for name, (source_factory, target_factory) in self.algorithms.items():
            source_algorithm = source_factory(self.source_database)
            target_algorithm = target_factory(self.transformed_database)
            source_rankings = {}
            target_rankings = {}
            for query in self.queries:
                source_rankings[query] = source_algorithm.rank(
                    query, top_k=max_k
                ).top()
                target_rankings[query] = target_algorithm.rank(
                    query, top_k=max_k
                ).top()
            taus[name] = {
                k: average_top_k_tau(source_rankings, target_rankings, k)
                for k in self.top_ks
            }
        return RobustnessResult(self.transformation_name, taus)


class EffectivenessResult:
    """MRR per algorithm, per database variant."""

    def __init__(self, mrrs):
        #: ``{variant_name: {algorithm_name: mrr}}``
        self.mrrs = mrrs

    def mrr(self, variant_name, algorithm_name):
        return self.mrrs[variant_name][algorithm_name]

    def __repr__(self):
        return "EffectivenessResult({})".format(self.mrrs)


class EffectivenessExperiment:
    """MRR of several algorithms against planted/expert ground truth.

    Parameters
    ----------
    variants:
        ``{variant_name: database}`` — e.g. original BioMed and BioMed
        under BioMedT.
    algorithms:
        ``{algorithm_name: {variant_name: factory}}``.
    ground_truth:
        ``{query: relevant node(s)}``.
    """

    def __init__(self, variants, algorithms, ground_truth, top_k=None):
        self.variants = dict(variants)
        self.algorithms = dict(algorithms)
        self.ground_truth = dict(ground_truth)
        self.top_k = top_k

    def run(self):
        mrrs = {name: {} for name in self.variants}
        for algorithm_name, factories in self.algorithms.items():
            for variant_name, database in self.variants.items():
                factory = factories.get(variant_name)
                if factory is None:
                    continue
                algorithm = factory(database)
                rankings = {
                    query: algorithm.rank(query, top_k=self.top_k).top()
                    for query in self.ground_truth
                    if database.has_node(query)
                }
                mrrs[variant_name][algorithm_name] = mean_reciprocal_rank(
                    rankings, self.ground_truth
                )
        return EffectivenessResult(mrrs)


def time_queries(algorithm, queries, repeat=1):
    """Average seconds per query (the measure of Table 4 / Figure 5).

    The algorithm is constructed by the caller so that one-off setup cost
    (e.g. materialized matrices, SimRank's all-pairs solve) can be kept
    in or out of the measurement deliberately.
    """
    if not queries:
        return 0.0
    started = time.perf_counter()
    for _ in range(repeat):
        for query in queries:
            algorithm.rank(query, top_k=10)
    elapsed = time.perf_counter() - started
    return elapsed / (repeat * len(queries))
