"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper reports; these
helpers keep the formatting consistent (and the output diffable across
runs).
"""


def format_table(headers, rows, title=None, float_format="{:.3f}"):
    """Render a list-of-rows table with aligned columns.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Returns the string (callers print or log it).
    """
    def render(value):
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        ).rstrip()

    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    for row in rendered:
        parts.append(line(row))
    return "\n".join(parts)


def robustness_table(results, algorithms=None, title=None):
    """Tables 1/2 layout: algorithms x (transformation, top-5, top-10)."""
    headers = ["algorithm"]
    for result in results:
        headers.append("{} top5".format(result.transformation_name))
        headers.append("{} top10".format(result.transformation_name))
    if algorithms is None:
        algorithms = sorted(
            {name for result in results for name in result.taus}
        )
    rows = []
    for name in algorithms:
        row = [name]
        for result in results:
            taus = result.taus.get(name)
            if taus is None:
                row.extend(["-", "-"])
            else:
                row.extend([taus.get(5, float("nan")), taus.get(10, float("nan"))])
        rows.append(row)
    return format_table(headers, rows, title=title)


def effectiveness_table(result, title=None):
    """Table 3 layout: variants x algorithms, MRR values."""
    algorithms = sorted(
        {name for per_variant in result.mrrs.values() for name in per_variant}
    )
    headers = ["variant"] + algorithms
    rows = []
    for variant_name in sorted(result.mrrs):
        row = [variant_name]
        for algorithm in algorithms:
            value = result.mrrs[variant_name].get(algorithm)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title)


def timing_table(timings, title=None, float_format="{:.4f}"):
    """Table 4 layout: ``{row_name: {column: seconds}}``."""
    columns = sorted(
        {column for per_row in timings.values() for column in per_row}
    )
    headers = ["algorithm"] + columns
    rows = []
    for row_name in sorted(timings):
        row = [row_name]
        for column in columns:
            value = timings[row_name].get(column)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
