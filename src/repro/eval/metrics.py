"""Ranking comparison metrics used in Section 7.

* :func:`normalized_kendall_tau` — the paper's robustness measure:
  normalized Kendall's tau between two top-k lists, 0 when identical, 1
  when reversed.  Top-k lists over different structural variants may not
  contain the same elements, so we use the Fagin-Kumar-Sivakumar
  extension: elements absent from a list are treated as tied below
  position k, and a pair that cannot be ordered in either list
  contributes the neutral penalty 1/2.
* :func:`reciprocal_rank` / :func:`mean_reciprocal_rank` — the
  effectiveness measure of Table 3.
"""


def _positions(items):
    return {item: index for index, item in enumerate(items)}


def kendall_tau_distance(list_a, list_b, penalty=0.5):
    """Unnormalized Kendall distance between two (top-k) lists.

    For every unordered pair ``{x, y}`` of elements appearing in either
    list:

    * both ordered in both lists, same order — 0; opposite — 1;
    * ordered in one list only, and the other list's information (one
      element present, one absent => present one ranks higher) agrees — 0,
      disagrees — 1;
    * both missing from one of the lists (so that list says nothing) —
      ``penalty``.
    """
    if list_a == list_b:
        return 0.0
    pos_a = _positions(list_a)
    pos_b = _positions(list_b)
    universe = sorted(set(pos_a) | set(pos_b), key=str)
    distance = 0.0
    for i, x in enumerate(universe):
        for y in universe[i + 1 :]:
            distance += _pair_penalty(x, y, pos_a, pos_b, penalty)
    return distance


def _pair_penalty(x, y, pos_a, pos_b, penalty):
    in_a = (x in pos_a, y in pos_a)
    in_b = (x in pos_b, y in pos_b)

    def order(pos, x_in, y_in):
        """-1: x before y, 1: y before x, 0: unknown."""
        if x_in and y_in:
            return -1 if pos[x] < pos[y] else 1
        if x_in:
            return -1  # present beats absent (absent means rank > k)
        if y_in:
            return 1
        return 0

    order_a = order(pos_a, *in_a)
    order_b = order(pos_b, *in_b)
    if order_a == 0 or order_b == 0:
        # At least one list carries no information about this pair; the
        # neutral penalty (Fagin et al.'s K^(p) with p = 1/2 by default).
        return penalty
    return 0.0 if order_a == order_b else 1.0


def normalized_kendall_tau(list_a, list_b, penalty=0.5):
    """Kendall distance normalized to [0, 1].

    0 means the lists are identical; 1 means one is the exact reverse of
    the other (the paper's convention).  Two empty lists are identical.
    """
    if not list_a and not list_b:
        return 0.0
    pairs = len(set(list_a) | set(list_b))
    total = pairs * (pairs - 1) / 2.0
    if total == 0:
        return 0.0
    return kendall_tau_distance(list_a, list_b, penalty=penalty) / total


def reciprocal_rank(ranked, relevant):
    """``1/p`` for the first position of a relevant answer (0 if absent).

    ``relevant`` may be a single node or a collection.
    """
    if not isinstance(relevant, (set, frozenset, list, tuple)):
        relevant = {relevant}
    else:
        relevant = set(relevant)
    for position, node in enumerate(ranked, start=1):
        if node in relevant:
            return 1.0 / position
    return 0.0


def mean_reciprocal_rank(rankings, ground_truth):
    """Average RR over queries.

    Parameters
    ----------
    rankings:
        ``{query: [ranked nodes...]}``.
    ground_truth:
        ``{query: relevant node (or collection)}``.
    """
    if not ground_truth:
        return 0.0
    total = 0.0
    for query, relevant in ground_truth.items():
        total += reciprocal_rank(rankings.get(query, []), relevant)
    return total / len(ground_truth)


def average_top_k_tau(rankings_a, rankings_b, k, penalty=0.5):
    """Mean normalized tau@k across a query workload.

    ``rankings_a``/``rankings_b`` map query -> full ranked list; lists
    are truncated to ``k`` here.
    """
    queries = sorted(set(rankings_a) & set(rankings_b), key=str)
    if not queries:
        return 0.0
    total = 0.0
    for query in queries:
        total += normalized_kendall_tau(
            list(rankings_a[query])[:k],
            list(rankings_b[query])[:k],
            penalty=penalty,
        )
    return total / len(queries)
