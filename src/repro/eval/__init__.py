"""Evaluation: ranking metrics, experiment harnesses, report tables."""

from repro.eval.harness import (
    EffectivenessExperiment,
    EffectivenessResult,
    RobustnessExperiment,
    RobustnessResult,
    time_queries,
)
from repro.eval.metrics import (
    average_top_k_tau,
    kendall_tau_distance,
    mean_reciprocal_rank,
    normalized_kendall_tau,
    reciprocal_rank,
)
from repro.eval.reporting import (
    effectiveness_table,
    format_table,
    robustness_table,
    timing_table,
)

__all__ = [
    "EffectivenessExperiment",
    "EffectivenessResult",
    "RobustnessExperiment",
    "RobustnessResult",
    "average_top_k_tau",
    "effectiveness_table",
    "format_table",
    "kendall_tau_distance",
    "mean_reciprocal_rank",
    "normalized_kendall_tau",
    "reciprocal_rank",
    "robustness_table",
    "time_queries",
    "timing_table",
]
