"""Tests for PreparedQuery: parity, warming, and the adapter paths."""

import pytest

from repro.api import PreparedQuery, SimilaritySession, register_algorithm
from repro.api.registry import (
    _PARAMETERS_CACHE,
    algorithm_parameters,
    unregister_algorithm,
)
from repro.core import RelSim
from repro.exceptions import EvaluationError, UnknownNodeError
from repro.similarity import SimilarityAlgorithm

PATTERN = "r-a-.p-in.p-in-.r-a"

SEED_ALGORITHMS = (
    "relsim",
    "pathsim",
    "hetesim",
    "rwr",
    "simrank",
    "pattern-rwr",
    "pattern-simrank",
    "common-neighbors",
    "katz",
)


def _constructor_options(name):
    if name in ("relsim", "pathsim", "hetesim", "pattern-rwr",
                "pattern-simrank"):
        return {"pattern": PATTERN}
    return {}


# ----------------------------------------------------------------------
# Parity: prepared results == one-shot results, all 9 seed algorithms
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SEED_ALGORITHMS)
def test_prepared_run_matches_query_builder_top(fig1, name):
    session = SimilaritySession(fig1)
    options = _constructor_options(name)
    prepared = session.prepare(algorithm=name, top_k=10, **options)
    queries = ["DataMining", "Databases", "SoftwareEngineering"]
    for query in queries:
        expected = session.query(query).using(name, **options).top(10)
        assert prepared.run(query).items() == expected.items()


@pytest.mark.parametrize("name", SEED_ALGORITHMS)
def test_prepared_run_many_matches_session_rank_many(fig1, name):
    session = SimilaritySession(fig1)
    options = _constructor_options(name)
    prepared = session.prepare(algorithm=name, top_k=5, **options)
    queries = ["DataMining", "Databases"]
    batch = prepared.run_many(queries)
    expected = session.rank_many(
        queries, algorithm=name, top_k=5, **options
    )
    assert set(batch) == set(expected)
    for query in queries:
        assert batch[query].items() == expected[query].items()


@pytest.mark.parametrize("scoring", ("pathsim", "count", "cosine"))
def test_prepared_matches_unprepared_for_every_scoring(dblp_small, scoring):
    database = dblp_small.database
    session = SimilaritySession(database)
    queries = [n for n in database.nodes_of_type("area")][:4]
    prepared = session.prepare(
        algorithm="relsim", pattern=PATTERN, scoring=scoring, top_k=5
    )
    unprepared = session.algorithm(
        "relsim", pattern=PATTERN, scoring=scoring
    )
    assert prepared.algorithm.is_prepared
    assert not unprepared.is_prepared
    for query in queries:
        assert (
            prepared.run(query).items()
            == unprepared.rank(query, top_k=5).items()
        )


def test_prepared_expansion_matches_builder_expansion(dblp_small):
    database = dblp_small.database
    session = SimilaritySession(database)
    query = next(iter(database.nodes_of_type("area")))
    prepared = session.prepare(
        algorithm="relsim",
        pattern="p-in.p-in-",
        expand={"max_patterns": 8},
        top_k=5,
    )
    builder = (
        session.query(query)
        .using("relsim", pattern="p-in.p-in-")
        .expand_patterns(max_patterns=8)
    )
    assert prepared.run(query).items() == builder.rank(top_k=5).items()
    assert prepared.patterns == builder.patterns_used
    assert len(prepared.patterns) >= 1


# ----------------------------------------------------------------------
# Preparation semantics
# ----------------------------------------------------------------------
def test_prepare_warms_matrices_hot_path_hits_no_engine_misses(fig1):
    session = SimilaritySession(fig1)
    prepared = session.prepare(algorithm="relsim", pattern=PATTERN, top_k=5)
    misses = session.cache_info()["misses"]
    prepared.run("DataMining")
    prepared.run("Databases")
    assert session.cache_info()["misses"] == misses


def test_prepare_top_k_default_and_override(fig1):
    session = SimilaritySession(fig1)
    prepared = session.prepare(algorithm="relsim", pattern=PATTERN, top_k=2)
    assert prepared.top_k == 2
    assert len(prepared.run("DataMining")) <= 2
    full = prepared.run("DataMining", top_k=None)
    assert len(full) >= len(prepared.run("DataMining"))


def test_prepared_explain_reuses_plan_report(fig1):
    session = SimilaritySession(fig1)
    prepared = session.prepare(algorithm="relsim", pattern=PATTERN)
    report = prepared.explain()
    assert "canonical:" in report
    assert "order:" in report
    with pytest.raises(EvaluationError):
        session.prepare(algorithm="rwr").explain()


def test_prepared_from_instance_and_rejections(fig1):
    session = SimilaritySession(fig1)
    instance = session.algorithm("relsim", pattern=PATTERN)
    prepared = session.prepare(algorithm=instance, top_k=5)
    assert prepared.algorithm is instance
    assert prepared.algorithm_name is None
    with pytest.raises(TypeError):
        session.prepare(algorithm=instance, pattern=PATTERN)
    with pytest.raises(EvaluationError):
        session.prepare(algorithm=instance, expand=True)
    with pytest.raises(EvaluationError):
        prepared.rebind(SimilaritySession(fig1))


def test_prepared_rebind_switches_snapshot(fig1):
    session = SimilaritySession(fig1)
    prepared = session.prepare(algorithm="relsim", pattern=PATTERN, top_k=5)
    before = prepared.run("DataMining")
    other = SimilaritySession(fig1)
    old_algorithm = prepared.algorithm
    prepared.rebind(other)
    assert prepared.session is other
    assert prepared.algorithm is not old_algorithm
    assert prepared.run("DataMining").items() == before.items()


def test_prepared_expand_normalization_errors(fig1):
    session = SimilaritySession(fig1)
    with pytest.raises(EvaluationError):
        session.prepare(algorithm="relsim", pattern=PATTERN,
                        expand={"bogus": 1})
    with pytest.raises(TypeError):
        session.prepare(algorithm="relsim", pattern=PATTERN, expand=42)
    with pytest.raises(EvaluationError):
        session.prepare(algorithm="rwr", expand=True)


def test_prepared_unknown_query_raises(fig1):
    session = SimilaritySession(fig1)
    prepared = session.prepare(algorithm="relsim", pattern=PATTERN)
    with pytest.raises(UnknownNodeError):
        prepared.run("ghost")


def test_prepare_scoring_is_idempotent(fig1):
    algorithm = RelSim(fig1, PATTERN)
    algorithm.prepare_scoring()
    state = algorithm._prepared_state
    algorithm.prepare_scoring()
    assert algorithm._prepared_state is state


def test_prepare_scoring_respects_lru_cap(fig1):
    session = SimilaritySession(fig1, max_cached_matrices=1)
    prepared = session.prepare(
        algorithm="relsim", patterns=[PATTERN, "r-a-.r-a"], top_k=5
    )
    # Pinning 2 matrices under a cap of 1 would defeat the cap; the
    # prepared query degrades to the per-call path with identical
    # results.
    assert not prepared.algorithm.is_prepared
    unprepared = session.algorithm("relsim", patterns=[PATTERN, "r-a-.r-a"])
    assert (
        prepared.run("DataMining", top_k=5).items()
        == unprepared.rank("DataMining", top_k=5).items()
    )


def test_rank_many_does_not_pin_state_on_caller_instances(fig1):
    session = SimilaritySession(fig1, max_cached_matrices=2)
    instance = session.algorithm("relsim", pattern=PATTERN)
    looped = {
        q: instance.rank(q, top_k=5) for q in ("DataMining", "Databases")
    }
    batch = session.rank_many(
        ["DataMining", "Databases"], algorithm=instance, top_k=5
    )
    # One-shot batching on a caller-supplied instance must not pin
    # prepared state (strong matrix refs outliving the engine LRU).
    assert not instance.is_prepared
    for query, ranking in looped.items():
        assert batch[query].items() == ranking.items()


def test_session_prepare_warm_false_binds_without_pinning(fig1):
    session = SimilaritySession(fig1)
    prepared = session.prepare(
        algorithm="relsim", pattern=PATTERN, top_k=5, warm=False
    )
    assert not prepared.algorithm.is_prepared
    warm = session.prepare(algorithm="relsim", pattern=PATTERN, top_k=5)
    assert (
        prepared.run("DataMining").items() == warm.run("DataMining").items()
    )


def test_builder_prepare_upgrade_path(fig1):
    session = SimilaritySession(fig1)
    builder = session.query("DataMining").using("relsim", pattern=PATTERN)
    prepared = builder.prepare(top_k=5)
    assert isinstance(prepared, PreparedQuery)
    assert prepared.algorithm.is_prepared
    assert prepared.run("DataMining").items() == builder.top(5).items()


# ----------------------------------------------------------------------
# Registry parameter cache (satellite)
# ----------------------------------------------------------------------
def test_algorithm_parameters_cached_per_class():
    first = algorithm_parameters("relsim")
    assert RelSim in _PARAMETERS_CACHE
    second = algorithm_parameters("relsim")
    assert first == second
    # Returned lists are copies; mutating one must not poison the cache.
    first.append("bogus")
    assert "bogus" not in algorithm_parameters("relsim")


def test_algorithm_parameters_cache_invalidated_on_replace(fig1):
    class First(SimilarityAlgorithm):
        def __init__(self, database, alpha=1.0):
            super().__init__(database)

        def scores(self, query):
            return {node: 1.0 for node in self.candidates(query)}

    class Second(First):
        def __init__(self, database, beta=2.0):
            super().__init__(database)

    register_algorithm("cache-probe", First)
    try:
        assert "alpha" in algorithm_parameters("cache-probe")
        register_algorithm("cache-probe", Second, replace=True)
        assert First not in _PARAMETERS_CACHE
        assert "beta" in algorithm_parameters("cache-probe")
        assert "alpha" not in algorithm_parameters("cache-probe")
    finally:
        unregister_algorithm("cache-probe")
    assert Second not in _PARAMETERS_CACHE
