"""Unit tests for CRPQ evaluation and constraint satisfaction."""

import pytest

from repro.constraints import (
    Atom,
    match_conjunctive,
    parse_tgd,
    rpq_pairs,
    satisfies,
    violating_matches,
)
from repro.graph import GraphDatabase, Schema
from repro.lang import parse_pattern


def test_rpq_pairs_single_label(tiny_db):
    assert rpq_pairs(tiny_db, parse_pattern("a")) == {
        (1, 2),
        (1, 3),
        (2, 2),
    }


def test_rpq_pairs_concat(tiny_db):
    assert rpq_pairs(tiny_db, parse_pattern("a.b")) == {(1, 4), (2, 4)}


def test_rpq_pairs_reverse(tiny_db):
    assert (2, 1) in rpq_pairs(tiny_db, parse_pattern("a-"))


def test_rpq_pairs_union(tiny_db):
    pairs = rpq_pairs(tiny_db, parse_pattern("a+b"))
    assert (1, 2) in pairs  # both a and b: appears once
    assert (2, 4) in pairs  # b only


def test_rpq_pairs_star_handles_cycles(tiny_db):
    # c is the 4 <-> 5 cycle; closure terminates and includes both hops.
    pairs = rpq_pairs(tiny_db, parse_pattern("c*"))
    assert (4, 4) in pairs
    assert (4, 5) in pairs
    assert (5, 4) in pairs
    assert (1, 1) in pairs  # eps component


def test_rpq_pairs_skip_is_reachability(tiny_db):
    assert rpq_pairs(tiny_db, parse_pattern("<<a.b>>")) == rpq_pairs(
        tiny_db, parse_pattern("a.b")
    )


def test_rpq_pairs_nested_diagonal(tiny_db):
    pairs = rpq_pairs(tiny_db, parse_pattern("[a]"))
    assert pairs == {(1, 1), (2, 2)}


def test_match_conjunctive_single_atom(tiny_db):
    matches = match_conjunctive(tiny_db, [Atom("x", "b", "y")])
    assert {(m["x"], m["y"]) for m in matches} == {(1, 2), (2, 4), (3, 4)}


def test_match_conjunctive_join(tiny_db):
    atoms = [Atom("x", "a", "y"), Atom("y", "b", "z")]
    matches = match_conjunctive(tiny_db, atoms)
    assert {(m["x"], m["y"], m["z"]) for m in matches} == {
        (1, 2, 4),
        (1, 3, 4),
        (2, 2, 4),
    }


def test_match_conjunctive_shared_variable_self(tiny_db):
    # (x, a, x) matches only the self loop at 2.
    matches = match_conjunctive(tiny_db, [Atom("x", "a", "x")])
    assert [m["x"] for m in matches] == [2]


def test_match_conjunctive_with_initial_binding(tiny_db):
    matches = match_conjunctive(
        tiny_db, [Atom("x", "a", "y")], initial={"x": 1}
    )
    assert {m["y"] for m in matches} == {2, 3}


def test_match_conjunctive_initial_binding_preserved(tiny_db):
    matches = match_conjunctive(
        tiny_db, [Atom("x", "a", "y")], initial={"q": 99, "x": 1}
    )
    assert all(m["q"] == 99 for m in matches)


def test_match_conjunctive_empty_atoms(tiny_db):
    assert match_conjunctive(tiny_db, []) == [{}]


def test_match_conjunctive_no_matches(tiny_db):
    atoms = [Atom("x", "b", "y"), Atom("y", "a", "x")]
    # b then a back: 1-b->2, 2-a->1? no such edge... check emptiness or not
    matches = match_conjunctive(tiny_db, atoms)
    assert {(m["x"], m["y"]) for m in matches} == set()


def test_match_conjunctive_disconnected_premise(tiny_db):
    atoms = [Atom("x", "c", "y"), Atom("u", "b", "v")]
    matches = match_conjunctive(tiny_db, atoms)
    # cartesian product of 2 c-edges and 3 b-edges
    assert len(matches) == 6


def test_satisfies_full_tgd(tiny_db):
    # every a-edge from 1 has a parallel ... build a constraint that holds:
    # (x, c, y) -> (y, c, x) holds because c forms a 2-cycle.
    assert satisfies(tiny_db, parse_tgd("(x, c, y) -> (y, c, x)"))


def test_violates_full_tgd(tiny_db):
    assert not satisfies(tiny_db, parse_tgd("(x, a, y) -> (y, a, x)"))


def test_satisfies_existential_tgd(tiny_db):
    # every a-edge source has some outgoing b? 1 has b to 2: yes; 2 has b to 4.
    assert satisfies(tiny_db, parse_tgd("(x, a, y) -> (x, b, z)"))


def test_violates_existential_tgd(tiny_db):
    # every b-target has an outgoing a: 4 has none.
    assert not satisfies(tiny_db, parse_tgd("(x, b, y) -> (y, a, z)"))


def test_satisfies_egd(tiny_db):
    # every node has at most one outgoing c edge -> egd holds.
    assert satisfies(tiny_db, parse_tgd("(x, c, y) & (x, c, z) -> y = z"))


def test_violates_egd(tiny_db):
    # node 1 has two outgoing a edges.
    assert not satisfies(tiny_db, parse_tgd("(x, a, y) & (x, a, z) -> y = z"))


def test_satisfies_vacuously_on_empty_relation(tiny_db):
    schema = Schema(["a", "b", "c"])
    empty = GraphDatabase(schema)
    assert satisfies(empty, parse_tgd("(x, a, y) -> (y, a, x)"))


def test_violating_matches(tiny_db):
    tgd = parse_tgd("(x, a, y) -> (y, a, x)")
    violations = violating_matches(tiny_db, tgd)
    assert {(m["x"], m["y"]) for m in violations} == {(1, 2), (1, 3)}


def test_violating_matches_limit(tiny_db):
    tgd = parse_tgd("(x, a, y) -> (y, a, x)")
    assert len(violating_matches(tiny_db, tgd, limit=1)) == 1


def test_satisfies_rejects_unknown_constraint_type(tiny_db):
    from repro.exceptions import ConstraintError

    with pytest.raises(ConstraintError):
        satisfies(tiny_db, "not a constraint")


def test_dblp_generator_satisfies_schema_constraint(dblp_small):
    db = dblp_small.database
    for constraint in db.schema.constraints:
        assert satisfies(db, constraint)


def test_wsu_generator_satisfies_schema_constraint(wsu_bundle):
    db = wsu_bundle.database
    for constraint in db.schema.constraints:
        assert satisfies(db, constraint)


def test_biomed_generator_satisfies_schema_constraints(biomed_bundle):
    db = biomed_bundle.database
    for constraint in db.schema.constraints:
        assert satisfies(db, constraint)
