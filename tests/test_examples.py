"""Smoke tests: every example script must run to completion.

Each example contains its own assertions (e.g. RelSim rankings identical
across variants), so a zero exit code means the demonstrated claims held.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize(
    "script, marker",
    [
        ("quickstart.py", "RelSim is structurally robust"),
        ("course_catalog.py", "identical lists on both catalog shapes"),
        ("drug_repurposing.py", "Top-5 drugs"),
        ("custom_schema_mapping.py", "robust across the custom transformation"),
    ],
)
def test_example_runs_and_reaches_conclusion(script, marker):
    result = run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert marker in result.stdout
