"""Unit tests for repro.graph.schema."""

import pytest

from repro.constraints import parse_tgd
from repro.exceptions import SchemaError, UnknownLabelError
from repro.graph import Schema


def test_labels_are_frozen_set():
    schema = Schema(["a", "b"])
    assert schema.labels == frozenset({"a", "b"})


def test_label_membership_uses_in_operator():
    schema = Schema(["a", "b"])
    assert "a" in schema
    assert "z" not in schema


def test_constraint_membership_uses_in_operator():
    tgd = parse_tgd("(x, a, y) -> (x, b, y)")
    schema = Schema(["a", "b"], [tgd])
    assert tgd in schema
    other = parse_tgd("(x, b, y) -> (x, a, y)")
    assert other not in schema


def test_empty_label_rejected():
    with pytest.raises(SchemaError):
        Schema(["a", ""])


def test_non_string_label_rejected():
    with pytest.raises(SchemaError):
        Schema(["a", 3])


def test_constraint_with_unknown_label_rejected():
    tgd = parse_tgd("(x, z, y) -> (x, a, y)")
    with pytest.raises(SchemaError):
        Schema(["a"], [tgd])


def test_require_label_raises_with_suggestions():
    schema = Schema(["a"])
    with pytest.raises(UnknownLabelError) as excinfo:
        schema.require_label("b")
    assert "b" in str(excinfo.value)
    assert excinfo.value.schema_labels == {"a"}


def test_node_types_validated_against_labels():
    with pytest.raises(UnknownLabelError):
        Schema(["a"], node_types={"b": ("x", "y")})


def test_node_types_must_be_pairs():
    with pytest.raises(SchemaError):
        Schema(["a"], node_types={"a": ("x", "y", "z")})


def test_endpoint_types():
    schema = Schema(["a"], node_types={"a": ("s", "t")})
    assert schema.endpoint_types("a") == ("s", "t")


def test_endpoint_types_none_when_untyped():
    schema = Schema(["a"])
    assert schema.endpoint_types("a") is None


def test_nontrivial_constraints_drops_trivial():
    trivial = parse_tgd("(x, a, y) -> (x, a, y)")
    real = parse_tgd("(x, a, y) -> (x, b, y)")
    schema = Schema(["a", "b"], [trivial, real])
    assert schema.nontrivial_constraints() == (real,)


def test_with_constraints_replaces():
    schema = Schema(["a", "b"])
    tgd = parse_tgd("(x, a, y) -> (x, b, y)")
    updated = schema.with_constraints([tgd])
    assert updated.constraints == (tgd,)
    assert schema.constraints == ()


def test_with_labels_extends():
    schema = Schema(["a"], node_types={"a": ("s", "t")})
    extended = schema.with_labels(["b"], {"b": ("u", "v")})
    assert "b" in extended
    assert extended.endpoint_types("b") == ("u", "v")
    assert extended.endpoint_types("a") == ("s", "t")


def test_equality_ignores_node_types():
    assert Schema(["a"]) == Schema(["a"], node_types={"a": ("s", "t")})
    assert Schema(["a"]) != Schema(["a", "b"])


def test_schema_hashable():
    assert len({Schema(["a"]), Schema(["a"]), Schema(["b"])}) == 2
