"""Tests for algebraic pattern simplification.

Every rewrite must preserve the commuting matrix; the final test checks
that on random patterns via the matrix engine.
"""

import pytest

from repro.lang import CommutingMatrixEngine, parse_pattern, simplify
from repro.lang.simplify import size


def simp(text):
    return str(simplify(parse_pattern(text)))


def test_double_reverse_collapses():
    assert simp("a--") == "a"
    assert simp("a----") == "a"


def test_reverse_pushed_through_concat():
    assert simp("(a.b)-") == "b-.a-"


def test_reverse_pushed_through_union():
    assert simp("(a+b)-") == "a-+b-"


def test_reverse_of_nested_is_dropped():
    assert simp("[a]-") == "[a]"


def test_skip_of_single_label():
    assert simp("<<a>>") == "a"
    assert simp("<<a->>") == "a-"


def test_skip_of_skip():
    assert simp("<<<<a.b>>>>") == "<<a.b>>"


def test_skip_of_composite_kept():
    assert simp("<<a.b>>") == "<<a.b>>"


def test_skip_of_epsilon():
    assert simp("<<eps>>") == "eps"


def test_nested_of_epsilon():
    assert simp("[eps]") == "eps"


def test_epsilon_dropped_from_concat():
    assert simp("a.eps.b") == "a.b"
    assert simp("eps.a") == "a"


def test_duplicate_disjuncts_deduplicated():
    assert simp("a+a") == "a"
    assert simp("a+b+a") == "a+b"


def test_star_of_star():
    assert simp("a**") == "a*"


def test_star_of_epsilon():
    assert simp("eps*") == "eps"


def test_recursive_simplification():
    assert simp("[<<a>>.eps]") == "[a]"
    assert simp("(<<b->>+<<b->>).a--") == "b-.a"


def test_idempotent():
    pattern = parse_pattern("<<(a.b)->>.[c--]")
    once = simplify(pattern)
    assert simplify(once) == once


def test_simple_patterns_untouched():
    assert simp("a.b-.c") == "a.b-.c"


def test_size_metric():
    assert size(parse_pattern("a")) == 1
    assert size(parse_pattern("a.b")) == 3
    assert size(parse_pattern("[a.b]")) == 4


def test_simplification_never_grows():
    for text in ["<<a>>.b--", "(a+a).(b.eps)", "[<<a->>]", "((a.b)-)-"]:
        pattern = parse_pattern(text)
        assert size(simplify(pattern)) <= size(pattern)


def test_rejects_non_pattern():
    with pytest.raises(TypeError):
        simplify("a")


@pytest.mark.parametrize(
    "text",
    [
        "a--",
        "(a.b)-",
        "<<a>>",
        "<<<<a.b>>>>",
        "a.eps.b",
        "a+a",
        "[eps]",
        "[<<a>>.b]",
        "(a+b)-.c",
        "<<a->>.[b--]",
    ],
)
def test_simplification_preserves_commuting_matrix(tiny_db, text):
    engine = CommutingMatrixEngine(tiny_db)
    original = parse_pattern(text)
    simplified = simplify(original)
    assert abs(engine.matrix(original) - engine.matrix(simplified)).max() == 0
