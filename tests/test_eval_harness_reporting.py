"""Tests for experiment harnesses and table rendering."""

import pytest

from repro.core import RelSim
from repro.datasets import figure1_dblp
from repro.eval import (
    EffectivenessExperiment,
    RobustnessExperiment,
    effectiveness_table,
    format_table,
    robustness_table,
    time_queries,
    timing_table,
)
from repro.similarity import RWR, PathSim
from repro.transform import dblp2sigm, map_pattern
from repro.lang import parse_pattern


@pytest.fixture
def fig1_pair():
    db = figure1_dblp()
    mapping = dblp2sigm()
    return db, mapping.apply(db), mapping


def test_robustness_experiment_relsim_zero(fig1_pair):
    db, variant, mapping = fig1_pair
    p_src = parse_pattern("r-a-.p-in.p-in-.r-a")
    p_tgt = map_pattern(mapping, p_src)
    experiment = RobustnessExperiment(
        db,
        variant,
        {
            "RelSim": (
                lambda d: RelSim(d, p_src),
                lambda d: RelSim(d, p_tgt),
            ),
            "RWR": (lambda d: RWR(d), lambda d: RWR(d)),
        },
        queries=["DataMining", "Databases"],
        transformation_name="DBLP2SIGM",
    )
    result = experiment.run()
    assert result.tau("RelSim", 5) == 0.0
    assert result.tau("RelSim", 10) == 0.0
    assert result.taus["RWR"][5] >= 0.0


def test_robustness_experiment_drops_missing_queries(fig1_pair):
    db, variant, _ = fig1_pair
    experiment = RobustnessExperiment(
        db,
        variant,
        {},
        queries=["DataMining", "not-a-node"],
    )
    assert experiment.queries == ["DataMining"]


def test_effectiveness_experiment(fig1_pair):
    db, variant, mapping = fig1_pair
    truth = {"DataMining": "Databases"}
    experiment = EffectivenessExperiment(
        variants={"original": db},
        algorithms={
            "PathSim": {
                "original": lambda d: PathSim(d, "r-a-.p-in.p-in-.r-a")
            }
        },
        ground_truth=truth,
    )
    result = experiment.run()
    assert result.mrr("original", "PathSim") == 1.0


def test_effectiveness_skips_unconfigured_variant(fig1_pair):
    db, variant, _ = fig1_pair
    experiment = EffectivenessExperiment(
        variants={"original": db, "transformed": variant},
        algorithms={
            "PathSim": {
                "original": lambda d: PathSim(d, "r-a-.p-in.p-in-.r-a")
            }
        },
        ground_truth={"DataMining": "Databases"},
    )
    result = experiment.run()
    assert "PathSim" not in result.mrrs["transformed"]


def test_time_queries_positive(fig1_pair):
    db, _, _ = fig1_pair
    algorithm = PathSim(db, "r-a-.r-a")
    seconds = time_queries(algorithm, ["DataMining"], repeat=2)
    assert seconds > 0.0


def test_time_queries_empty_workload(fig1_pair):
    db, _, _ = fig1_pair
    assert time_queries(PathSim(db, "r-a-.r-a"), []) == 0.0


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["name", "value"], [["x", 1.23456], ["longer", 7]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.235" in text
    assert "longer" in text


def test_format_table_with_title():
    text = format_table(["a"], [[1.0]], title="My Table")
    assert text.splitlines()[0] == "My Table"
    assert text.splitlines()[1] == "========"


def test_robustness_table_layout(fig1_pair):
    db, variant, mapping = fig1_pair
    experiment = RobustnessExperiment(
        db,
        variant,
        {"RWR": (lambda d: RWR(d), lambda d: RWR(d))},
        queries=["DataMining"],
        transformation_name="T",
    )
    text = robustness_table([experiment.run()])
    assert "T top5" in text
    assert "RWR" in text


def test_robustness_table_missing_algorithm(fig1_pair):
    db, variant, _ = fig1_pair
    result = RobustnessExperiment(
        db, variant, {}, queries=["DataMining"], transformation_name="T"
    ).run()
    text = robustness_table([result], algorithms=["Ghost"])
    assert "-" in text


def test_effectiveness_table_layout():
    from repro.eval import EffectivenessResult

    result = EffectivenessResult(
        {"original": {"RelSim": 0.5}, "transformed": {"RelSim": 0.5}}
    )
    text = effectiveness_table(result, title="Table 3")
    assert "RelSim" in text
    assert "original" in text
    assert "0.500" in text


def test_timing_table_layout():
    text = timing_table(
        {"RelSim": {"DBLP": 0.035, "BioMed": 0.473}},
        title="Table 4",
    )
    assert "0.0350" in text
    assert "BioMed" in text


def test_effectiveness_mrr_ignores_queries_missing_from_variant(fig1_pair):
    db, _, _ = fig1_pair
    # "PhantomArea" is not a node of this variant: its RR must not be
    # averaged in as a spurious 0 (the old code passed the *full* ground
    # truth to mean_reciprocal_rank and deflated the variant's MRR).
    truth = {"DataMining": "Databases", "PhantomArea": "Databases"}
    experiment = EffectivenessExperiment(
        variants={"original": db},
        algorithms={
            "PathSim": {
                "original": lambda d: PathSim(d, "r-a-.p-in.p-in-.r-a")
            }
        },
        ground_truth=truth,
    )
    result = experiment.run()
    assert result.mrr("original", "PathSim") == 1.0
