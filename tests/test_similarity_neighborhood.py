"""Tests for the common-neighbors and Katz baselines."""

import pytest

from repro.exceptions import EvaluationError
from repro.graph import GraphDatabase, Schema
from repro.similarity import CommonNeighbors, Katz


def test_common_neighbors_counts_shared(fig1):
    scores = CommonNeighbors(fig1).scores("DataMining")
    # DataMining shares 2 papers with Databases, 1 with SE.
    assert scores["Databases"] == 2.0
    assert scores["SoftwareEngineering"] == 1.0


def test_common_neighbors_symmetric(fig1):
    algorithm = CommonNeighbors(fig1)
    ab = algorithm.scores("DataMining")["Databases"]
    ba = algorithm.scores("Databases")["DataMining"]
    assert ab == ba


def test_common_neighbors_isolated_node():
    db = GraphDatabase(Schema(["e"]))
    db.add_node("a", "t")
    db.add_node("b", "t")
    db.add_edge("c", "e", "b")
    algorithm = CommonNeighbors(db)
    assert algorithm.scores("a")["b"] == 0.0


def test_katz_prefers_many_short_walks(fig1):
    scores = Katz(fig1, beta=0.05).scores("DataMining")
    assert scores["Databases"] > scores["SoftwareEngineering"] > 0.0


def test_katz_beta_validation(fig1):
    with pytest.raises(EvaluationError):
        Katz(fig1, beta=0.5)  # beta * max_degree >= 1
    with pytest.raises(EvaluationError):
        Katz(fig1, beta=-1.0)


def test_katz_scores_grow_with_beta(fig1):
    low = Katz(fig1, beta=0.01).scores("DataMining")["Databases"]
    high = Katz(fig1, beta=0.05).scores("DataMining")["Databases"]
    assert high > low


def test_katz_deterministic(fig1):
    assert (
        Katz(fig1, beta=0.02).scores("DataMining")
        == Katz(fig1, beta=0.02).scores("DataMining")
    )


def test_neighborhood_baselines_not_robust(dblp_small):
    """Section 4.1's claim: these measures inherit non-robustness."""
    from repro.datasets import sample_queries_by_degree
    from repro.transform import dblp2sigm

    db = dblp_small.database
    variant = dblp2sigm().apply(db)
    queries = sample_queries_by_degree(db, "proc", 10, seed=4)
    changed = 0
    for query in queries:
        before = CommonNeighbors(db).rank(query, top_k=5).top()
        after = CommonNeighbors(variant).rank(query, top_k=5).top()
        if before != after:
            changed += 1
    assert changed > 0
