"""Parity tests for the dense-materialization fixes.

The static-analysis PR replaced unguarded ``.toarray()`` calls with
sparse-native equivalents: ``dense_rows`` buffer reads for the k x n
batch slices (CommonNeighbors, HeteSim), CSR indptr row support for the
nested-pattern diagonal, and sparse matmuls for SimRank's iteration.
Each test pins a replacement to the dense formulation it displaced.
The first three are bitwise-identical by construction; SimRank's sparse
product is allowed float ulp jitter but must stay within 1e-12 of the
dense iteration.
"""

import numpy as np
import scipy.sparse as sp

from repro.constraints.evaluation import rpq_boolean_matrix
from repro.graph.matrices import MatrixView, column_normalize
from repro.lang.parser import parse_pattern
from repro.similarity import CommonNeighbors, HeteSim
from repro.similarity.simrank import simrank_matrix


def _dense_nested_reference(inner):
    """The pre-fix Nested diagonal: dense row-max, then sp.diags."""
    diagonal = inner.max(axis=1).toarray().ravel()
    return sp.diags((diagonal > 0).astype(float), format="csr")


def test_nested_diagonal_matches_dense_reference(tiny_db):
    view = MatrixView(tiny_db)
    for text in ["[a]", "[a.b]", "[c*]", "[a+b]", "[b-]"]:
        pattern = parse_pattern(text)
        inner = rpq_boolean_matrix(view, pattern.operand)
        expected = _dense_nested_reference(inner)
        actual = rpq_boolean_matrix(view, pattern)
        assert actual.shape == expected.shape
        assert np.array_equal(actual.toarray(), expected.toarray()), text
        assert actual.dtype == np.float64


def test_nested_diagonal_stores_no_explicit_zeros(tiny_db):
    # The old sp.diags construction stored a zero for every unsupported
    # row; the indptr-support rebuild must store only the true support
    # (downstream indptr reads rely on stored-nonzero == nonzero).
    view = MatrixView(tiny_db)
    matrix = rpq_boolean_matrix(view, parse_pattern("[a.b]"))
    assert (matrix.data != 0).all()
    assert matrix.nnz == np.count_nonzero(matrix.diagonal())


def test_nested_diagonal_empty_support(tiny_db):
    # No c-then-a path exists in tiny_db: support is empty and the
    # diagonal must come back as an all-zero sparse matrix, not crash.
    view = MatrixView(tiny_db)
    matrix = rpq_boolean_matrix(view, parse_pattern("[c.a]"))
    assert matrix.nnz == 0
    assert matrix.shape == (tiny_db.num_nodes(),) * 2


def test_common_neighbors_rows_match_dense_reference(fig1):
    algorithm = CommonNeighbors(fig1)
    queries = ["DataMining", "Databases", "SoftwareEngineering"]
    indices, counts = algorithm.score_rows(queries)
    boolean = algorithm._boolean
    expected = (boolean[indices, :] @ boolean).toarray()
    assert counts.dtype == expected.dtype
    assert np.array_equal(counts, expected)


def test_hetesim_rows_match_dense_reference(fig1):
    algorithm = HeteSim(fig1, "r-a-.p-in")
    queries = ["DataMining", "Databases", "SoftwareEngineering"]
    indices, scores = algorithm.score_rows(queries)
    # The pre-fix formulation, recomputed from the same halves.
    left_rows = algorithm._left[indices, :].tocsr()
    squared = left_rows.multiply(left_rows).sum(axis=1)
    source_norms = np.sqrt(np.asarray(squared).ravel())
    products = (left_rows @ algorithm._right.T).toarray()
    target_norms = algorithm._norms_of_right()
    denominator = source_norms[:, None] * target_norms[None, :]
    expected = np.zeros_like(products)
    defined = denominator > 0
    expected[defined] = products[defined] / denominator[defined]
    assert np.array_equal(scores, expected)


def _dense_simrank_reference(
    adjacency, damping=0.8, iterations=10, tolerance=1e-6
):
    """The pre-fix SimRank loop over a densified transition matrix."""
    n = adjacency.shape[0]
    transition = column_normalize(adjacency).toarray()
    scores = np.identity(n)
    for _ in range(iterations):
        updated = damping * (transition.T @ scores @ transition)
        np.fill_diagonal(updated, 1.0)
        delta = np.abs(updated - scores).max()
        scores = updated
        if delta < tolerance:
            break
    np.maximum(scores, np.identity(n), out=scores)
    return scores


def test_simrank_matches_dense_iteration(fig1):
    view = MatrixView(fig1)
    adjacency = view.combined_adjacency(symmetric=True)
    sparse_scores = simrank_matrix(adjacency)
    dense_scores = _dense_simrank_reference(adjacency)
    # Sparse and dense matmuls associate differently, so exact bitwise
    # equality is not achievable here — but 1e-12 is orders of magnitude
    # below any score gap that could reorder a ranking on this graph.
    assert np.allclose(sparse_scores, dense_scores, rtol=0, atol=1e-12)
    assert np.array_equal(np.diag(sparse_scores), np.ones(adjacency.shape[0]))
    # Ranking parity: identical candidate order for every query row once
    # scores are quantized past the ulp jitter.
    order_sparse = np.argsort(-sparse_scores.round(9), axis=1, kind="stable")
    order_dense = np.argsort(-dense_scores.round(9), axis=1, kind="stable")
    assert np.array_equal(order_sparse, order_dense)
