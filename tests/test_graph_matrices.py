"""Unit tests for repro.graph.matrices."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import UnknownNodeError
from repro.graph import (
    GraphDatabase,
    MatrixView,
    NodeIndexer,
    Schema,
    boolean,
    column_normalize,
    diagonal_of,
    row_normalize,
)


def test_indexer_roundtrip():
    indexer = NodeIndexer(["x", "y", "z"])
    assert len(indexer) == 3
    for i, node in enumerate(["x", "y", "z"]):
        assert indexer.index_of(node) == i
        assert indexer.node_at(i) == node


def test_indexer_rejects_duplicates():
    with pytest.raises(ValueError):
        NodeIndexer(["x", "x"])


def test_indexer_unknown_node():
    indexer = NodeIndexer(["x"])
    with pytest.raises(UnknownNodeError):
        indexer.index_of("nope")


def test_indexer_contains():
    indexer = NodeIndexer(["x"])
    assert "x" in indexer
    assert "y" not in indexer


@pytest.fixture
def view(tiny_db):
    return MatrixView(tiny_db)


def test_adjacency_entries(view, tiny_db):
    matrix = view.adjacency("a")
    indexer = view.indexer
    for source, _, target in tiny_db.edges("a"):
        assert matrix[indexer.index_of(source), indexer.index_of(target)] == 1
    assert matrix.sum() == len(list(tiny_db.edges("a")))


def test_adjacency_cached(view):
    assert view.adjacency("a") is view.adjacency("a")


def test_identity_and_zeros(view):
    n = view.num_nodes()
    assert (view.identity() != sp.identity(n)).nnz == 0
    assert view.zeros().nnz == 0


def test_combined_adjacency_sums_labels(view, tiny_db):
    combined = view.combined_adjacency()
    assert combined.sum() == tiny_db.num_edges()


def test_combined_adjacency_symmetric(view):
    combined = view.combined_adjacency(symmetric=True)
    assert (combined != combined.T).nnz == 0


def test_shared_indexer_across_views(tiny_db):
    view1 = MatrixView(tiny_db)
    view2 = MatrixView(tiny_db.copy(), indexer=view1.indexer)
    assert (view1.adjacency("a") != view2.adjacency("a")).nnz == 0


def test_shared_indexer_ignores_extra_nodes(tiny_db):
    indexer = MatrixView(tiny_db).indexer
    bigger = tiny_db.copy()
    bigger.add_edge(99, "a", 98)
    view = MatrixView(bigger, indexer=indexer)
    # edges among indexed nodes only
    assert view.adjacency("a").sum() == len(list(tiny_db.edges("a")))


def test_boolean_thresholds_counts():
    matrix = sp.csr_matrix(np.array([[0.0, 2.0], [3.0, 0.0]]))
    result = boolean(matrix)
    assert result.toarray().tolist() == [[0.0, 1.0], [1.0, 0.0]]


def test_diagonal_of():
    matrix = sp.csr_matrix(np.array([[1.0, 2.0], [3.0, 4.0]]))
    assert diagonal_of(matrix).toarray().tolist() == [[1.0, 0.0], [0.0, 4.0]]


def test_row_normalize_rows_sum_to_one():
    matrix = sp.csr_matrix(np.array([[1.0, 3.0], [0.0, 0.0]]))
    normalized = row_normalize(matrix)
    rows = np.asarray(normalized.sum(axis=1)).ravel()
    assert rows[0] == pytest.approx(1.0)
    assert rows[1] == 0.0  # zero rows stay zero


def test_column_normalize_columns_sum_to_one():
    matrix = sp.csr_matrix(np.array([[1.0, 0.0], [3.0, 0.0]]))
    normalized = column_normalize(matrix)
    cols = np.asarray(normalized.sum(axis=0)).ravel()
    assert cols[0] == pytest.approx(1.0)
    assert cols[1] == 0.0


# ----------------------------------------------------------------------
# Vectorized _build parity (referenced from MatrixView._build)
# ----------------------------------------------------------------------
def _reference_build(database, indexer, label):
    """The historical per-edge loop, kept as the parity oracle."""
    rows, cols = [], []
    for source, _, target in database.edges(label):
        if source in indexer and target in indexer:
            rows.append(indexer.index_of(source))
            cols.append(indexer.index_of(target))
    n = len(indexer)
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix(
        (data, (rows, cols)), shape=(n, n), dtype=np.float64
    )
    matrix.sum_duplicates()
    return matrix


def test_build_matches_per_edge_loop(tiny_db, dblp_small):
    for database in (tiny_db, dblp_small.database):
        view = MatrixView(database)
        for label in sorted(database.used_labels()):
            built = view.adjacency(label)
            expected = _reference_build(database, view.indexer, label)
            assert np.array_equal(built.indptr, expected.indptr), label
            assert np.array_equal(built.indices, expected.indices), label
            assert np.array_equal(built.data, expected.data), label


def test_build_matches_per_edge_loop_shared_indexer(tiny_db, tiny_schema):
    # Shared-indexer case: the database has nodes the view's ordering
    # lacks; the bulk path must skip them exactly like the old loop.
    indexer = NodeIndexer(tiny_db.nodes())
    bigger = tiny_db.copy()
    bigger.add_edges([(99, "a", 1), (1, "a", 98), (99, "b", 98)])
    view = MatrixView(bigger, indexer=indexer)
    for label in sorted(bigger.used_labels()):
        built = view.adjacency(label)
        expected = _reference_build(bigger, indexer, label)
        assert np.array_equal(built.indptr, expected.indptr), label
        assert np.array_equal(built.indices, expected.indices), label
        assert np.array_equal(built.data, expected.data), label
