"""Tests for RWR, SimRank, HeteSim, and the pattern-constrained variants."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import EvaluationError
from repro.graph import GraphDatabase, Schema
from repro.similarity import (
    RWR,
    HeteSim,
    PatternRWR,
    PatternSimRank,
    SimRank,
    rwr_vector,
    simrank_matrix,
)


# ----------------------------------------------------------------------
# RWR
# ----------------------------------------------------------------------
def test_rwr_vector_is_distribution():
    walk = sp.csr_matrix(
        np.array([[0.0, 1.0, 0.0], [0.5, 0.0, 0.5], [0.0, 1.0, 0.0]])
    )
    vector = rwr_vector(walk, 0, restart=0.5)
    assert vector.sum() == pytest.approx(1.0)
    assert (vector >= 0).all()


def test_rwr_vector_handles_dangling_nodes():
    walk = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
    vector = rwr_vector(walk, 0, restart=0.5)
    assert vector.sum() == pytest.approx(1.0)


def test_rwr_restart_mass_concentrates_at_query(fig1):
    scores = RWR(fig1, restart=0.95).scores("DataMining")
    assert max(scores.values()) < 0.05  # nearly all mass stays at query


def test_rwr_prefers_closer_nodes(fig1):
    scores = RWR(fig1).scores("DataMining")
    assert scores["Databases"] > scores["SoftwareEngineering"]


def test_rwr_invalid_restart(fig1):
    with pytest.raises(EvaluationError):
        RWR(fig1, restart=1.5)


def test_rwr_deterministic(fig1):
    assert RWR(fig1).scores("DataMining") == RWR(fig1).scores("DataMining")


# ----------------------------------------------------------------------
# SimRank
# ----------------------------------------------------------------------
def test_simrank_matrix_diagonal_is_one():
    adjacency = sp.csr_matrix(np.array([[0, 1], [1, 0]], dtype=float))
    scores = simrank_matrix(adjacency)
    assert scores[0, 0] == 1.0
    assert scores[1, 1] == 1.0


def test_simrank_matrix_symmetric_graph_symmetric_scores():
    adjacency = sp.csr_matrix(
        np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=float)
    )
    scores = simrank_matrix(adjacency)
    assert np.allclose(scores, scores.T)


def test_simrank_structural_equivalence_scores_high():
    # Nodes 1 and 2 have identical in-neighborhoods {0}.
    adjacency = sp.csr_matrix(
        np.array([[0, 1, 1], [0, 0, 0], [0, 0, 0]], dtype=float)
    )
    scores = simrank_matrix(adjacency, damping=0.8)
    assert scores[1, 2] == pytest.approx(0.8)


def test_simrank_node_guard():
    db = GraphDatabase(Schema(["e"]))
    for i in range(20):
        db.add_edge(i, "e", i + 1)
    with pytest.raises(EvaluationError):
        SimRank(db, max_nodes=10)


def test_simrank_fig1_ordering(fig1):
    scores = SimRank(fig1).scores("DataMining")
    assert scores["Databases"] > scores["SoftwareEngineering"]


def test_simrank_invalid_damping(fig1):
    with pytest.raises(EvaluationError):
        SimRank(fig1, damping=0.0)


# ----------------------------------------------------------------------
# HeteSim
# ----------------------------------------------------------------------
def test_hetesim_even_path_scores_in_unit_interval(biomed_bundle):
    db = biomed_bundle.database
    algorithm = HeteSim(
        db, "dd-ph-assoc.ph-pr-assoc.targets-.targets", answer_type="drug"
    )
    query = next(iter(biomed_bundle.ground_truth))
    scores = algorithm.scores(query)
    assert all(-1e-9 <= s <= 1.0 + 1e-9 for s in scores.values())


def test_hetesim_odd_path_via_edge_decomposition(biomed_bundle):
    db = biomed_bundle.database
    algorithm = HeteSim(
        db, "dd-ph-assoc.ph-pr-assoc.targets-", answer_type="drug"
    )
    query = next(iter(biomed_bundle.ground_truth))
    scores = algorithm.scores(query)
    assert any(s > 0 for s in scores.values())


def test_hetesim_self_relevance_is_one(fig1):
    # Symmetric path: HeteSim(u, u) should be 1 for nodes with instances.
    algorithm = HeteSim(fig1, "r-a-.r-a")
    scores_matrix_query = algorithm.scores("DataMining")
    # Self excluded from answers; verify a perfect-overlap pair instead:
    # Databases and DataMining share exactly VLDB papers? Compare bounds.
    assert all(0 <= s <= 1 + 1e-9 for s in scores_matrix_query.values())


def test_hetesim_rejects_rre():
    db = GraphDatabase(Schema(["a"]))
    db.add_edge(1, "a", 2)
    with pytest.raises(EvaluationError):
        HeteSim(db, "[a]")


def test_hetesim_rejects_empty_path():
    db = GraphDatabase(Schema(["a"]))
    db.add_edge(1, "a", 2)
    with pytest.raises(EvaluationError):
        HeteSim(db, "eps")


def test_hetesim_zero_row_gives_zero_scores(biomed_bundle):
    db = biomed_bundle.database
    algorithm = HeteSim(
        db, "dd-ph-assoc.ph-pr-assoc.targets-", answer_type="drug"
    )
    isolated = [
        d
        for d in db.nodes_of_type("disont-disease")
        if not db.successors(d, "dd-ph-assoc")
    ]
    if isolated:
        scores = algorithm.scores(isolated[0])
        assert all(s == 0.0 for s in scores.values())


# ----------------------------------------------------------------------
# Pattern-constrained variants (Proposition 4)
# ----------------------------------------------------------------------
def test_pattern_rwr_follows_pattern_only(fig1):
    algorithm = PatternRWR(fig1, "r-a-.p-in.p-in-.r-a")
    scores = algorithm.scores("DataMining")
    # Databases shares two VLDB papers with Data Mining; Software
    # Engineering only the single SIGKDD paper — the pattern walk ranks
    # them accordingly.
    assert scores["Databases"] > scores["SoftwareEngineering"] > 0.0


def test_pattern_simrank_runs(fig1):
    algorithm = PatternSimRank(fig1, "r-a-.p-in.p-in-.r-a")
    scores = algorithm.scores("DataMining")
    assert scores["Databases"] >= scores["SoftwareEngineering"]


def test_pattern_simrank_node_guard(fig1):
    with pytest.raises(EvaluationError):
        PatternSimRank(fig1, "r-a-.r-a", max_nodes=2)


def test_pattern_algorithms_reject_bad_pattern(fig1):
    with pytest.raises(TypeError):
        PatternRWR(fig1, 3.14)


# ----------------------------------------------------------------------
# Edge decomposition multiplicities (multigraph regression)
# ----------------------------------------------------------------------
def test_edge_decomposition_preserves_multiplicities():
    from repro.similarity.hetesim import _edge_decomposition

    # A summed parallel edge (count 2) must decompose through *two*
    # artificial nodes so that out @ in reproduces the matrix; the old
    # decomposition used all-ones data and collapsed it to 1.
    matrix = sp.csr_matrix(
        np.array([[0.0, 2.0, 1.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
    )
    out, into = _edge_decomposition(matrix)
    assert out.shape == (3, 3)  # one artificial node per edge *instance*
    assert into.shape == (3, 3)
    assert ((out @ into) != matrix).nnz == 0


def test_edge_decomposition_unit_counts_unchanged():
    from repro.similarity.hetesim import _edge_decomposition

    matrix = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
    out, into = _edge_decomposition(matrix)
    assert out.shape == (2, 2)
    assert ((out @ into) != matrix).nnz == 0


def test_hetesim_multigraph_odd_path_scores():
    from repro.graph.matrices import MatrixView

    # GraphDatabase has set semantics on edges, so a summed parallel
    # edge only arises through an injected view (e.g. matrices summed by
    # a structural transformation).  Prime the adjacency cache with the
    # multigraph matrix the same way such a variant would supply it.
    db = GraphDatabase(Schema(["e"]))
    for node in ("s", "t", "u"):
        db.add_node(node, "n")
    db.add_edge("s", "e", "t")
    db.add_edge("s", "e", "u")
    view = MatrixView(db)
    order = [view.indexer.index_of(n) for n in ("s", "t", "u")]
    assert order == [0, 1, 2]
    view._cache["e"] = sp.csr_matrix(
        np.array([[0.0, 2.0, 1.0], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
    )

    # Odd-length (length-1) meta-path: the middle relation "e" is
    # decomposed.  With the s->t multiplicity of 2 preserved, walker
    # mass from s splits over *three* artificial nodes, two of which
    # reach t:  U_L(s) = [1/3, 1/3, 1/3], U_R(t) = [1/2, 1/2, 0],
    # U_R(u) = [0, 0, 1].
    scores = HeteSim(db, "e", view=view).scores("s")
    assert scores["t"] == pytest.approx(np.sqrt(6) / 3)  # ~0.8165
    assert scores["u"] == pytest.approx(1 / np.sqrt(3))  # ~0.5774
    # The doubled edge must outrank the single one.
    assert scores["t"] > scores["u"]


def test_edge_decomposition_rejects_fractional_weights():
    from repro.similarity.hetesim import _edge_decomposition

    matrix = sp.csr_matrix(np.array([[0.0, 0.5], [0.0, 0.0]]))
    with pytest.raises(EvaluationError):
        _edge_decomposition(matrix)
