"""Tests for the schema-aware pattern type checker.

Covers the endpoint algebra, every diagnostic code with its span, the
fail-fast wiring through engine/session/prepared, the Algorithm-1 seed
corpus staying clean, and a property test: any pattern the checker
accepts must evaluate without error on a schema-conforming graph (and
any pattern it rejects must be refused by the engine).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis import (
    ANY,
    Diagnostic,
    Endpoints,
    PatternTypeChecker,
    has_errors,
    render_with_spans,
)
from repro.datasets import schemas as S
from repro.exceptions import PatternTypeError
from repro.graph import GraphDatabase, Schema
from repro.lang import CommutingMatrixEngine
from repro.lang.ast import Concat, Label, Nested, Reverse, Skip, Union
from repro.lang.parser import parse_pattern
from repro.transform.catalog import EXPERIMENT_PATTERNS


def check(text, schema=None, **kwargs):
    checker = PatternTypeChecker(schema or S.DBLP_SCHEMA, **kwargs)
    return checker.check(parse_pattern(text))


def codes(diagnostics):
    return [d.code for d in diagnostics]


def endpoints_of(text, schema=None):
    checker = PatternTypeChecker(schema or S.DBLP_SCHEMA)
    return checker.endpoints(parse_pattern(text))


# -- endpoint algebra --------------------------------------------------


def test_label_endpoints_come_from_schema():
    assert endpoints_of("w").pairs == frozenset({("author", "paper")})
    assert endpoints_of("w-").pairs == frozenset({("paper", "author")})


def test_concat_composes_endpoints():
    # author -w-> paper -p-in-> proc
    assert endpoints_of("w.p-in").pairs == frozenset({("author", "proc")})


def test_epsilon_is_the_identity_component():
    eps = endpoints_of("eps")
    assert eps.diag and not eps.pairs
    assert eps.source_types() is ANY


def test_star_closure_adds_identity():
    closure = endpoints_of("(w.w-)*")
    assert closure.diag
    assert ("author", "author") in closure.pairs


def test_nested_restricts_to_source_diagonal():
    assert endpoints_of("[p-in-.r-a]").pairs == frozenset({("proc", "proc")})


def test_union_merges_disjoint_blocks():
    pairs = endpoints_of("r-a-.r-a+p-in.p-in-").pairs
    assert pairs == frozenset({("area", "area"), ("paper", "paper")})


def test_untyped_schema_is_wildcard():
    schema = Schema(["a", "b"])
    endpoints = endpoints_of("a.b-", schema=schema)
    assert endpoints.is_any


def test_endpoints_describe():
    assert endpoints_of("w").describe() == "{author->paper}"
    assert Endpoints(ANY).describe() == "any"


# -- error diagnostics -------------------------------------------------


def test_unknown_label():
    diagnostics = check("zzz")
    assert codes(diagnostics) == ["unknown-label"]
    assert diagnostics[0].span == (0, 3)
    assert "'zzz'" in diagnostics[0].message


def test_unknown_label_span_inside_concat():
    diagnostics = check("p-in.zzz")
    assert codes(diagnostics) == ["unknown-label"]
    assert diagnostics[0].span == (5, 8)
    assert diagnostics[0].pattern_text == "p-in.zzz"


def test_endpoint_mismatch():
    # w ends at paper, but a second w starts from author.
    diagnostics = check("w.w")
    assert codes(diagnostics) == ["endpoint-mismatch"]
    assert "{paper}" in diagnostics[0].message
    assert "{author}" in diagnostics[0].message
    # The span points at the offending right-hand part.
    assert diagnostics[0].span == (2, 3)


def test_endpoint_mismatch_does_not_cascade():
    # One bad junction recovers to ANY: later junctions are not blamed.
    diagnostics = check("w.w.p-in")
    assert codes(diagnostics) == ["endpoint-mismatch"]


def test_union_mismatch_on_half_aligned_branches():
    # Both start from author, but end at paper vs proc.
    diagnostics = check("w+w.p-in")
    assert codes(diagnostics) == ["union-mismatch"]
    assert "source" in diagnostics[0].message


def test_union_of_fully_disjoint_branches_is_legal():
    # The block-matrix idiom: area-area similarity OR proc-proc
    # similarity; populations never mix.
    assert check("r-a-.r-a+p-in.p-in-") == []


def test_statically_empty_conjunction():
    # w relates author->paper, r-a relates paper->area: no node pair
    # can satisfy both.
    diagnostics = check("w&r-a")
    assert codes(diagnostics) == ["statically-empty"]


def test_errors_sort_before_warnings():
    diagnostics = check("zzz.w--")
    assert [d.severity for d in diagnostics] == ["error", "warning"]


# -- warning diagnostics -----------------------------------------------


class FakeStats:
    def __init__(self, n, nnz):
        self._n = n
        self._nnz = dict(nnz)

    def num_nodes(self):
        return self._n

    def label_nnz(self, name):
        return self._nnz[name]


def test_star_blowup_warning():
    # Average out-degree 1.5 >= 1: the closure estimate is dense.
    stats = FakeStats(100, {"w": 150, "p-in": 10, "r-a": 10})
    diagnostics = check("(w.w-)*", stats=stats)
    assert "star-blowup" in codes(diagnostics)
    assert all(d.severity == "warning" for d in diagnostics)


def test_density_budget_warning_and_knob():
    stats = FakeStats(100, {"w": 150, "p-in": 10, "r-a": 10})
    loose = check("(w.w-)*", stats=stats, density_budget=1.1)
    assert "density-budget" not in codes(loose)
    tight = check("(w.w-)*", stats=stats, density_budget=0.25)
    assert "density-budget" in codes(tight)


def test_sparse_pattern_has_no_density_warnings():
    stats = FakeStats(1000, {"w": 50, "p-in": 50, "r-a": 50})
    assert check("w.p-in", stats=stats) == []


def test_redundant_reverse_warning():
    diagnostics = check("w--")
    assert codes(diagnostics) == ["redundant-reverse"]
    assert "'w'" in diagnostics[0].message


def test_redundant_union_warning():
    # The parser dedups union branches, so build the AST directly.
    checker = PatternTypeChecker(S.DBLP_SCHEMA)
    diagnostics = checker.check(Union([Label("w"), Label("w")]))
    assert codes(diagnostics) == ["redundant-union"]


def test_warnings_do_not_raise():
    checker = PatternTypeChecker(S.DBLP_SCHEMA)
    diagnostics = checker.assert_well_typed(parse_pattern("w--"))
    assert codes(diagnostics) == ["redundant-reverse"]


# -- assert_well_typed / diagnostics payloads --------------------------


def test_assert_well_typed_raises_with_diagnostics():
    checker = PatternTypeChecker(S.DBLP_SCHEMA)
    with pytest.raises(PatternTypeError) as excinfo:
        checker.assert_well_typed(parse_pattern("w.w"))
    error = excinfo.value
    assert codes(error.diagnostics) == ["endpoint-mismatch"]
    assert "w.w" in str(error)


def test_diagnostic_to_dict_round_trip():
    diagnostic = check("zzz")[0]
    payload = diagnostic.to_dict()
    assert payload["severity"] == "error"
    assert payload["code"] == "unknown-label"
    assert payload["span"] == [0, 3]
    assert payload["pattern"] == "zzz"


def test_diagnostic_caret_rendering():
    diagnostic = check("p-in.zzz")[0]
    rendered = diagnostic.format(caret=True)
    lines = rendered.splitlines()
    assert lines[1].endswith("p-in.zzz")
    assert lines[2].endswith("     ^^^")


def test_render_with_spans_matches_str():
    for text in ["w.p-in", "(w+r-a)*", "[w-.w]", "<<w.w->>", "w&w"]:
        pattern = parse_pattern(text)
        rendered, spans = render_with_spans(pattern)
        assert rendered == str(pattern)
        assert spans[id(pattern)] == (0, len(rendered))


# -- fail-fast wiring --------------------------------------------------


def _typed_dblp():
    db = GraphDatabase(S.DBLP_SCHEMA)
    for author in ("ann", "bob"):
        db.add_node(author, "author")
    for paper in ("p1", "p2"):
        db.add_node(paper, "paper")
    db.add_node("vldb", "proc")
    db.add_node("dbs", "area")
    db.add_edges(
        [
            ("ann", "w", "p1"),
            ("bob", "w", "p2"),
            ("p1", "p-in", "vldb"),
            ("p2", "p-in", "vldb"),
            ("p1", "r-a", "dbs"),
        ]
    )
    return db


def test_engine_rejects_ill_typed_pattern():
    engine = CommutingMatrixEngine(_typed_dblp())
    with pytest.raises(PatternTypeError):
        engine.matrix(parse_pattern("w.w"))


def test_engine_check_surfaces_diagnostics():
    engine = CommutingMatrixEngine(_typed_dblp())
    results = engine.check([parse_pattern("w.w-"), parse_pattern("zzz")])
    assert results[0][1] == []
    assert codes(results[1][1]) == ["unknown-label"]


def test_session_prepare_fails_fast():
    from repro.api import SimilaritySession

    session = SimilaritySession(_typed_dblp())
    with pytest.raises(PatternTypeError):
        session.prepare("relsim", patterns=["w.w"])
    # Well-typed patterns still prepare fine.
    session.prepare("relsim", patterns=["w.w-"])


def test_materialize_prunes_ill_typed_meta_paths():
    from repro.api import SimilaritySession

    session = SimilaritySession(_typed_dblp())
    cached = session.materialize(max_length=2)
    assert cached > 0
    # 6 steps (3 labels x 2 directions) would give 6 + 36 = 42 chains
    # untyped; the typed schema admits far fewer (w.w is ill-typed,
    # w.p-in is fine, ...), and every cached one type-checks clean.
    assert cached < 42
    state = session.engine.export_cache()
    checker = PatternTypeChecker(S.DBLP_SCHEMA)
    from repro.lang.parser import parse_pattern as parse

    for text, _matrix in state["matrices"]:
        assert not has_errors(checker.check(parse(text))), text


def test_session_check_method():
    from repro.api import SimilaritySession

    session = SimilaritySession(_typed_dblp())
    results = session.check("w.w")
    assert codes(results[0][1]) == ["endpoint-mismatch"]


# -- the seed corpus type-checks clean ---------------------------------

_CORPUS = [
    ("DBLP2SIGM", "relsim_source", S.DBLP_SCHEMA),
    ("DBLP2SIGM", "pathsim_source", S.DBLP_SCHEMA),
    ("DBLP2SIGM", "pathsim_target", S.SIGM_SCHEMA),
    ("WSUC2ALCH", "relsim_source", S.WSU_SCHEMA),
    ("WSUC2ALCH", "pathsim_source", S.WSU_SCHEMA),
    ("WSUC2ALCH", "pathsim_target", S.ALCH_SCHEMA),
    ("BioMedT", "relsim_source", S.BIOMED_SCHEMA),
    ("BioMedT", "pathsim_source", S.BIOMED_SCHEMA),
    ("BioMedT", "pathsim_target", S.BIOMED_T_SCHEMA),
]


@pytest.mark.parametrize("experiment,key,schema", _CORPUS)
def test_experiment_corpus_is_clean(experiment, key, schema):
    text = EXPERIMENT_PATTERNS[experiment][key]
    checker = PatternTypeChecker(schema)
    diagnostics = checker.check(parse_pattern(text))
    assert not has_errors(diagnostics), [d.format() for d in diagnostics]


# -- property: accepted <=> evaluable ----------------------------------

_TYPE_POPULATIONS = {
    "author": ["a0", "a1", "a2"],
    "paper": ["p0", "p1", "p2", "p3"],
    "proc": ["v0", "v1"],
    "area": ["r0", "r1"],
}


@st.composite
def typed_graphs(draw):
    db = GraphDatabase(S.DBLP_SCHEMA)
    for node_type, nodes in _TYPE_POPULATIONS.items():
        for node in nodes:
            db.add_node(node, node_type)
    for label in sorted(S.DBLP_SCHEMA.labels):
        source_type, target_type = S.DBLP_SCHEMA.node_types[label]
        edges = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(_TYPE_POPULATIONS[source_type]),
                    st.sampled_from(_TYPE_POPULATIONS[target_type]),
                ),
                max_size=6,
            )
        )
        for source, target in edges:
            db.add_edge(source, label, target)
    return db


def typed_pattern_strategy():
    leaves = st.sampled_from(
        [
            Label("w"),
            Label("p-in"),
            Label("r-a"),
            Reverse(Label("w")),
            Reverse(Label("p-in")),
            Reverse(Label("r-a")),
        ]
    )

    def extend(children):
        # Star is excluded: its counting semantics diverge on cyclic
        # random graphs (StarDivergenceError), which is a run-time
        # property of the data, not a type error.
        return st.one_of(
            children.map(Reverse),
            children.map(Nested),
            children.map(Skip),
            st.tuples(children, children).map(lambda p: Concat(list(p))),
            st.tuples(children, children).map(lambda p: Union(list(p))),
        )

    return st.recursive(leaves, extend, max_leaves=5)


@given(db=typed_graphs(), pattern=typed_pattern_strategy())
@settings(max_examples=80, deadline=None)
def test_accepted_patterns_evaluate_and_rejected_patterns_raise(db, pattern):
    checker = PatternTypeChecker(S.DBLP_SCHEMA)
    diagnostics = checker.check(pattern)
    engine = CommutingMatrixEngine(db)
    if has_errors(diagnostics):
        with pytest.raises(PatternTypeError):
            engine.matrix(pattern)
    else:
        matrix = engine.matrix(pattern)
        n = db.num_nodes()
        assert matrix.shape == (n, n)


# -- diagnostics value-object hygiene ----------------------------------


def test_diagnostic_equality_and_invalid_severity():
    a = Diagnostic("error", "unknown-label", "m", span=(0, 1))
    b = Diagnostic("error", "unknown-label", "m", span=(0, 1))
    assert a == b and hash(a) == hash(b)
    with pytest.raises(ValueError):
        Diagnostic("fatal", "x", "m")
