"""Unit tests for repro.graph.io (JSON / TSV round trips)."""

import pytest

from repro.constraints import parse_tgd
from repro.exceptions import ReproError
from repro.graph import GraphDatabase, Schema
from repro.graph.io import (
    database_from_dict,
    database_to_dict,
    load_json,
    load_tsv,
    save_json,
    save_tsv,
    schema_from_dict,
    schema_to_dict,
)


@pytest.fixture
def db():
    schema = Schema(
        ["a", "b"],
        constraints=[parse_tgd("(x, a, y) -> (x, b, y)")],
        node_types={"a": ("s", "t")},
    )
    database = GraphDatabase(schema)
    database.add_node("n1", "s")
    database.add_node("lonely")
    database.add_edges([("n1", "a", "n2"), ("n2", "b", "n3")])
    return database


def test_schema_dict_roundtrip(db):
    rebuilt = schema_from_dict(schema_to_dict(db.schema))
    assert rebuilt == db.schema
    assert rebuilt.node_types == db.schema.node_types


def test_database_dict_roundtrip(db):
    rebuilt = database_from_dict(database_to_dict(db))
    assert rebuilt.same_content(db)
    assert rebuilt.node_type("n1") == "s"
    assert rebuilt.has_node("lonely")


def test_json_roundtrip(db, tmp_path):
    path = tmp_path / "db.json"
    save_json(db, path)
    rebuilt = load_json(path)
    assert rebuilt.same_content(db)
    assert rebuilt.schema == db.schema


def test_tsv_roundtrip_with_nodes_file(db, tmp_path):
    edges = tmp_path / "edges.tsv"
    nodes = tmp_path / "nodes.tsv"
    save_tsv(db, edges, nodes)
    rebuilt = load_tsv(db.schema, edges, nodes)
    assert rebuilt.same_content(db)
    assert rebuilt.node_type("n1") == "s"


def test_tsv_roundtrip_edges_only_drops_isolated_nodes(db, tmp_path):
    edges = tmp_path / "edges.tsv"
    save_tsv(db, edges)
    rebuilt = load_tsv(db.schema, edges)
    assert rebuilt.edge_set() == db.edge_set()
    assert not rebuilt.has_node("lonely")


def test_tsv_bad_edge_line(tmp_path):
    path = tmp_path / "edges.tsv"
    path.write_text("only\ttwo\n")
    with pytest.raises(ReproError):
        load_tsv(Schema(["a"]), path)


def test_tsv_blank_lines_skipped(tmp_path):
    path = tmp_path / "edges.tsv"
    path.write_text("u\ta\tv\n\n")
    rebuilt = load_tsv(Schema(["a"]), path)
    assert rebuilt.num_edges() == 1
