"""Integration tests: the paper's headline claims, end to end.

* Corollary 1: RelSim returns *identical* ranked lists over a database
  and every invertible structural variation, for all three catalog
  transformations (DBLP2SIGM, WSUC2ALCH, BioMedT) and the
  information-adding DBLP2SIGMX.
* The baselines (PathSim on the "closest simple pattern", RWR, SimRank)
  are demonstrably NOT robust on the same workloads (Table 1's point).
* Proposition 4: pattern-constrained RWR/SimRank with the translated RRE
  are robust too.
* Proposition 5 (spot check): aggregated RelSim scores from Algorithm-1
  pattern sets are invariant on the worked BioMed example.
"""

import pytest

from repro.core import RelSim
from repro.datasets import sample_queries_by_degree
from repro.lang import parse_pattern
from repro.similarity import RWR, PathSim, PatternRWR, SimRank
from repro.transform import (
    EXPERIMENT_PATTERNS,
    biomedt,
    dblp2sigm,
    dblp2sigmx,
    map_pattern,
    wsuc2alch,
)


def rankings_equal(algorithm_a, algorithm_b, queries, k=10):
    for query in queries:
        if (
            algorithm_a.rank(query, top_k=k).top()
            != algorithm_b.rank(query, top_k=k).top()
        ):
            return False
    return True


def _setup(bundle, mapping_factory, spec_key):
    mapping = mapping_factory()
    db = bundle.database
    variant = mapping.apply(db)
    spec = EXPERIMENT_PATTERNS[spec_key]
    p_src = parse_pattern(spec["relsim_source"])
    p_tgt = map_pattern(mapping, p_src)
    queries = sample_queries_by_degree(db, spec["query_type"], 15, seed=11)
    return db, variant, p_src, p_tgt, spec, queries


def test_relsim_robust_under_dblp2sigm(dblp_small):
    db, variant, p_src, p_tgt, spec, queries = _setup(
        dblp_small, dblp2sigm, "DBLP2SIGM"
    )
    assert rankings_equal(
        RelSim(db, p_src), RelSim(variant, p_tgt), queries
    )


def test_relsim_scores_exactly_equal_under_dblp2sigm(dblp_small):
    db, variant, p_src, p_tgt, spec, queries = _setup(
        dblp_small, dblp2sigm, "DBLP2SIGM"
    )
    source = RelSim(db, p_src)
    target = RelSim(variant, p_tgt)
    for query in queries[:5]:
        source_scores = source.scores(query)
        target_scores = target.scores(query)
        for node, score in source_scores.items():
            assert target_scores[node] == pytest.approx(score, abs=1e-12)


def test_relsim_robust_under_dblp2sigmx(dblp_small):
    """The information-ADDING transformation (Table 2, first column)."""
    db, variant, p_src, p_tgt, spec, queries = _setup(
        dblp_small, dblp2sigmx, "DBLP2SIGM"
    )
    assert rankings_equal(
        RelSim(db, p_src), RelSim(variant, p_tgt), queries
    )


def test_relsim_robust_under_wsuc2alch(wsu_bundle):
    db, variant, p_src, p_tgt, spec, queries = _setup(
        wsu_bundle, wsuc2alch, "WSUC2ALCH"
    )
    assert rankings_equal(
        RelSim(db, p_src), RelSim(variant, p_tgt), queries
    )


def test_relsim_robust_under_biomedt(biomed_bundle):
    db = biomed_bundle.database
    mapping = biomedt()
    variant = mapping.apply(db)
    spec = EXPERIMENT_PATTERNS["BioMedT"]
    p_src = parse_pattern(spec["relsim_source"])
    p_tgt = map_pattern(mapping, p_src)
    queries = list(biomed_bundle.ground_truth)[:10]
    source = RelSim(db, p_src, scoring="cosine", answer_type="drug")
    target = RelSim(variant, p_tgt, scoring="cosine", answer_type="drug")
    assert rankings_equal(source, target, queries)


def test_pathsim_not_robust_under_dblp2sigm(dblp_small):
    db, variant, p_src, p_tgt, spec, queries = _setup(
        dblp_small, dblp2sigm, "DBLP2SIGM"
    )
    source = PathSim(db, spec["pathsim_source"])
    target = PathSim(variant, spec["pathsim_target"])
    assert not rankings_equal(source, target, queries)


def test_rwr_not_robust_under_dblp2sigm(dblp_small):
    db, variant, _, _, _, queries = _setup(
        dblp_small, dblp2sigm, "DBLP2SIGM"
    )
    assert not rankings_equal(RWR(db), RWR(variant), queries)


def test_simrank_not_robust_under_dblp2sigm(dblp_small):
    db, variant, _, _, _, queries = _setup(
        dblp_small, dblp2sigm, "DBLP2SIGM"
    )
    assert not rankings_equal(SimRank(db), SimRank(variant), queries)


def test_pattern_rwr_robust_under_dblp2sigm(dblp_small):
    """Proposition 4: pattern-constrained RWR inherits robustness."""
    db, variant, p_src, p_tgt, _, queries = _setup(
        dblp_small, dblp2sigm, "DBLP2SIGM"
    )
    assert rankings_equal(
        PatternRWR(db, p_src), PatternRWR(variant, p_tgt), queries[:8]
    )


def test_aggregated_relsim_robust_on_biomed(biomed_bundle):
    """Proposition 5 on the BioMed defining-constraint case: Algorithm 1
    maps the source pattern set one-to-one onto the target set with
    equal counts, so the aggregated ranking is invariant."""
    db = biomed_bundle.database
    mapping = biomedt()
    variant = mapping.apply(db)
    source = RelSim.from_simple_pattern(
        db,
        "dd-ph-indirect.ph-pr-assoc.targets-",
        scoring="cosine",
        answer_type="drug",
    )
    # Over the transformed schema the user writes the natural simple
    # pattern; its Algorithm-1 set must aggregate to the same scores.
    target_patterns = [
        map_pattern(mapping, p) for p in source.patterns
    ]
    target = RelSim(
        variant, target_patterns, scoring="cosine", answer_type="drug"
    )
    queries = list(biomed_bundle.ground_truth)[:8]
    assert rankings_equal(source, target, queries)


def test_relsim_tau_zero_in_robustness_experiment(dblp_small):
    from repro.eval import RobustnessExperiment

    db, variant, p_src, p_tgt, spec, queries = _setup(
        dblp_small, dblp2sigm, "DBLP2SIGM"
    )
    result = RobustnessExperiment(
        db,
        variant,
        {
            "RelSim": (
                lambda d: RelSim(d, p_src),
                lambda d: RelSim(d, p_tgt),
            ),
            "PathSim": (
                lambda d: PathSim(d, spec["pathsim_source"]),
                lambda d: PathSim(d, spec["pathsim_target"]),
            ),
        },
        queries=queries,
        transformation_name="DBLP2SIGM",
    ).run()
    assert result.tau("RelSim", 5) == 0.0
    assert result.tau("RelSim", 10) == 0.0
    assert result.tau("PathSim", 5) > 0.0
