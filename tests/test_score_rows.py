"""Array-native scoring: score_rows, top-k selection, candidate masks.

The contract under test: for every registered algorithm, the
array-native ranking path (``score_rows`` + ``np.argpartition``
selection) is *exactly* equivalent to the per-candidate dict path
(``rank_many_via_scores``), including deterministic tie-breaking at the
``top_k`` boundary — and candidates outside the algorithm's snapshot
indexer raise :class:`UnknownNodeError` uniformly.
"""

import numpy as np
import pytest

from repro.api import SimilaritySession
from repro.exceptions import UnknownNodeError
from repro.graph import GraphDatabase, Schema
from repro.graph.matrices import MatrixView
from repro.similarity import Ranking
from repro.similarity.base import SimilarityAlgorithm

PATTERN = "r-a-.p-in.p-in-.r-a"

SEED_ALGORITHMS = (
    "relsim",
    "pathsim",
    "hetesim",
    "rwr",
    "simrank",
    "pattern-rwr",
    "pattern-simrank",
    "common-neighbors",
    "katz",
)


def _constructor_options(name):
    if name in ("relsim", "pathsim", "hetesim", "pattern-rwr",
                "pattern-simrank"):
        return {"pattern": PATTERN}
    return {}


# ----------------------------------------------------------------------
# Property: array path == dict path for every registered algorithm
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SEED_ALGORITHMS)
@pytest.mark.parametrize("top_k", (None, 1, 2, 10))
def test_array_path_matches_dict_path(fig1, name, top_k):
    session = SimilaritySession(fig1)
    algorithm = session.algorithm(name, **_constructor_options(name))
    queries = ["DataMining", "Databases", "SoftwareEngineering"]
    array_path = algorithm.rank_many(queries, top_k=top_k)
    dict_path = algorithm.rank_many_via_scores(queries, top_k=top_k)
    for query in queries:
        assert array_path[query].items() == dict_path[query].items()
        assert (
            array_path[query].items()
            == algorithm.rank(query, top_k=top_k).items()
        )


@pytest.mark.parametrize("name", SEED_ALGORITHMS)
def test_every_seed_algorithm_is_array_native(fig1, name):
    session = SimilaritySession(fig1)
    algorithm = session.algorithm(name, **_constructor_options(name))
    queries = ["DataMining", "Databases"]
    indices, rows = algorithm.score_rows(queries)
    n = len(session.indexer)
    assert rows.shape == (len(queries), n)
    assert list(indices) == [
        session.indexer.index_of(query) for query in queries
    ]
    # The dict adapters read from the same rows.
    scored = algorithm.scores("DataMining")
    for node, score in scored.items():
        assert score == pytest.approx(
            float(rows[0, session.indexer.index_of(node)])
        )


@pytest.mark.parametrize("name", ("relsim", "pathsim", "common-neighbors"))
def test_array_path_matches_dict_path_on_generated_dataset(dblp_small, name):
    database = dblp_small.database
    session = SimilaritySession(database)
    algorithm = session.algorithm(name, **_constructor_options(name))
    queries = [n for n in database.nodes_of_type("area")][:4]
    array_path = algorithm.rank_many(queries, top_k=5)
    dict_path = algorithm.rank_many_via_scores(queries, top_k=5)
    for query in queries:
        assert array_path[query].items() == dict_path[query].items()


def test_array_path_matches_dict_path_odd_hetesim(biomed_bundle):
    # Odd-length meta-path: exercises the edge-decomposition halves
    # through the batch path.
    database = biomed_bundle.database
    session = SimilaritySession(database)
    algorithm = session.algorithm(
        "hetesim",
        pattern="dd-ph-assoc.ph-pr-assoc.targets-",
        answer_type="drug",
    )
    queries = list(biomed_bundle.ground_truth)[:5]
    array_path = algorithm.rank_many(queries, top_k=10)
    dict_path = algorithm.rank_many_via_scores(queries, top_k=10)
    for query in queries:
        assert array_path[query].items() == dict_path[query].items()


def test_scores_many_matches_per_query_scores(fig1):
    session = SimilaritySession(fig1)
    algorithm = session.algorithm("relsim", pattern=PATTERN)
    queries = ["DataMining", "Databases"]
    batch = algorithm.scores_many(queries)
    for query in queries:
        assert batch[query] == algorithm.scores(query)


# ----------------------------------------------------------------------
# Deterministic tie-breaking at the top_k boundary
# ----------------------------------------------------------------------
class ScriptedRows(SimilarityAlgorithm):
    """Array-native algorithm whose score rows are scripted by the test."""

    name = "ScriptedRows"

    def __init__(self, database, rows_by_query):
        super().__init__(database)
        self._view = MatrixView(database)
        self._rows_by_query = rows_by_query

    def score_rows(self, queries):
        indexer = self._view.indexer
        indices = np.array(
            [indexer.index_of(query) for query in queries], dtype=np.intp
        )
        rows = np.vstack([self._rows_by_query[query] for query in queries])
        return indices, rows


@pytest.fixture
def tied_db():
    db = GraphDatabase(Schema(["e"]))
    # "a10" < "a2" < "b1" in the str order Ranking ties break by.
    for node in ("q", "top", "a10", "a2", "b1", "low"):
        db.add_node(node, "t")
    return db


def _scripted(db, scores_by_node):
    view = MatrixView(db)
    row = np.zeros(len(view.indexer))
    for node, score in scores_by_node.items():
        row[view.indexer.index_of(node)] = score
    return ScriptedRows(db, {"q": row})


def test_topk_boundary_ties_break_by_str(tied_db):
    algorithm = _scripted(
        tied_db,
        {"top": 9.0, "a10": 2.0, "a2": 2.0, "b1": 2.0, "low": 1.0},
    )
    assert algorithm.rank("q", top_k=2).top() == ["top", "a10"]
    assert algorithm.rank("q", top_k=3).top() == ["top", "a10", "a2"]
    assert algorithm.rank("q", top_k=4).top() == ["top", "a10", "a2", "b1"]
    assert algorithm.rank("q").top() == ["top", "a10", "a2", "b1", "low"]


@pytest.mark.parametrize("top_k", (None, 1, 2, 3, 4, 5, 10))
def test_topk_boundary_matches_dict_path(tied_db, top_k):
    algorithm = _scripted(
        tied_db,
        {"top": 9.0, "a10": 2.0, "a2": 2.0, "b1": 2.0, "low": 1.0},
    )
    array_path = algorithm.rank_many(["q"], top_k=top_k)["q"]
    dict_path = algorithm.rank_many_via_scores(["q"], top_k=top_k)["q"]
    assert array_path.items() == dict_path.items()


def test_top_k_zero_returns_empty_like_dict_path(tied_db):
    algorithm = _scripted(
        tied_db, {"top": 9.0, "a10": 2.0, "a2": 2.0}
    )
    array_path = algorithm.rank_many(["q"], top_k=0)["q"]
    dict_path = algorithm.rank_many_via_scores(["q"], top_k=0)["q"]
    assert array_path.items() == dict_path.items() == []
    assert algorithm.rank("q", top_k=0).items() == []


def test_zero_scores_are_not_answers_in_array_path(tied_db):
    algorithm = _scripted(tied_db, {"top": 1.0})
    ranking = algorithm.rank("q")
    assert ranking.top() == ["top"]  # the zero-score candidates dropped


def test_query_is_masked_out_of_its_own_row(tied_db):
    algorithm = _scripted(tied_db, {"q": 100.0, "top": 1.0})
    assert algorithm.rank("q").top() == ["top"]
    assert "q" not in algorithm.scores("q")


# ----------------------------------------------------------------------
# Ranking.from_arrays
# ----------------------------------------------------------------------
def test_from_arrays_sorts_and_matches_constructor():
    nodes = ["b", "a", "c"]
    scores = np.array([0.5, 0.5, 0.9])
    built = Ranking.from_arrays(nodes, scores)
    reference = Ranking(list(zip(nodes, scores)))
    assert built.items() == reference.items()
    assert built.top() == ["c", "a", "b"]
    assert built.score_of("a") == 0.5
    assert built.position_of("c") == 1


def test_from_arrays_empty():
    ranking = Ranking.from_arrays([], np.array([]))
    assert len(ranking) == 0
    assert ranking.top() == []


def test_from_arrays_coerces_numpy_scalars_to_float():
    ranking = Ranking.from_arrays(["a"], np.array([np.float64(1.5)]))
    assert isinstance(ranking.items()[0][1], float)


# ----------------------------------------------------------------------
# Unified unindexed-candidate semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ("relsim", "rwr", "simrank", "hetesim"))
def test_unindexed_candidate_raises_uniformly(fig1, name):
    # RWR, SimRank and HeteSim used to skip candidates missing from the
    # indexer silently while the engine-backed algorithms errored; the
    # documented behavior is now UnknownNodeError for every algorithm.
    session = SimilaritySession(fig1)
    algorithm = session.algorithm(name, **_constructor_options(name))
    fig1.add_node("LateArrival", fig1.node_type("DataMining"))
    with pytest.raises(UnknownNodeError):
        algorithm.rank("DataMining")
    with pytest.raises(UnknownNodeError):
        algorithm.scores("DataMining")


def test_unindexed_candidate_raises_on_dict_path_too(fig1):
    session = SimilaritySession(fig1)
    algorithm = session.algorithm("relsim", pattern=PATTERN)
    fig1.add_node("LateArrival", fig1.node_type("DataMining"))
    with pytest.raises(UnknownNodeError):
        algorithm.rank_many_via_scores(["DataMining"])


# ----------------------------------------------------------------------
# MatrixView.candidate_index
# ----------------------------------------------------------------------
def test_candidate_index_sorted_and_cached(fig1):
    view = MatrixView(fig1)
    nodes, columns = view.candidate_index("area")
    assert nodes == sorted(fig1.nodes_of_type("area"), key=str)
    assert [view.indexer.node_at(c) for c in columns] == nodes
    # Cached: the same tuple object comes back.
    assert view.candidate_index("area") is view.candidate_index("area")


def test_candidate_index_none_means_all_nodes(fig1):
    view = MatrixView(fig1)
    nodes, columns = view.candidate_index(None)
    assert nodes == sorted(fig1.nodes(), key=str)
    assert len(columns) == len(view.indexer)


def test_candidate_index_unindexed_node_raises(fig1):
    view = MatrixView(fig1)
    fig1.add_node("LateArrival", "area")
    with pytest.raises(UnknownNodeError):
        view.candidate_index("area")


def test_candidate_index_warm_cache_still_detects_late_node(fig1):
    # The cache revalidates on the node count: the error must not
    # depend on whether the index was warmed before the mutation.
    view = MatrixView(fig1)
    view.candidate_index("area")  # warm the cache
    fig1.add_node("LateArrival", "area")
    with pytest.raises(UnknownNodeError):
        view.candidate_index("area")


def test_warm_algorithm_still_detects_late_node(fig1):
    session = SimilaritySession(fig1)
    algorithm = session.algorithm("relsim", pattern=PATTERN)
    algorithm.rank("DataMining", top_k=5)  # warm the candidate index
    fig1.add_node("LateArrival", fig1.node_type("DataMining"))
    with pytest.raises(UnknownNodeError):
        algorithm.rank("DataMining", top_k=5)
