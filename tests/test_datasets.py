"""Tests for the synthetic dataset generators and workload samplers."""

import pytest

from repro.datasets import (
    figure1_dblp,
    generate_biomed,
    generate_biomed_small,
    generate_dblp,
    generate_mas,
    generate_wsu,
    sample_queries_by_degree,
    uniform_queries,
)
from repro.datasets.synthetic import SeededGenerator


# ----------------------------------------------------------------------
# Determinism and sizing
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "factory",
    [generate_dblp, generate_wsu, generate_biomed_small, generate_mas],
)
def test_generators_deterministic(factory):
    first = factory(seed=5).database
    second = factory(seed=5).database
    assert first.same_content(second)


@pytest.mark.parametrize(
    "factory",
    [generate_dblp, generate_wsu, generate_biomed_small, generate_mas],
)
def test_generators_seed_sensitive(factory):
    assert not factory(seed=1).database.same_content(factory(seed=2).database)


def test_dblp_sizes_scale():
    small = generate_dblp(num_papers=50, num_authors=20)
    large = generate_dblp(num_papers=500, num_authors=200)
    assert large.database.num_nodes() > small.database.num_nodes()
    assert large.database.num_edges() > small.database.num_edges()


# ----------------------------------------------------------------------
# Schema conformance
# ----------------------------------------------------------------------
def test_dblp_every_paper_has_one_proc(dblp_small):
    db = dblp_small.database
    for paper in db.nodes_of_type("paper"):
        assert len(db.successors(paper, "p-in")) == 1


def test_dblp_paper_areas_match_proc_areas(dblp_small):
    """The generator enforces the DBLP constraint by construction."""
    db = dblp_small.database
    proc_areas = {}
    for paper in db.nodes_of_type("paper"):
        proc = next(iter(db.successors(paper, "p-in")))
        areas = db.successors(paper, "r-a")
        if proc in proc_areas:
            assert proc_areas[proc] == areas
        else:
            proc_areas[proc] = areas


def test_wsu_offerings_inherit_course_subjects(wsu_bundle):
    db = wsu_bundle.database
    course_subjects = {}
    for offer in db.nodes_of_type("offer"):
        course = next(iter(db.successors(offer, "co")))
        subjects = db.successors(offer, "os")
        if course in course_subjects:
            assert course_subjects[course] == subjects
        else:
            course_subjects[course] = subjects


def test_biomed_indirect_edges_are_exact_closure(biomed_bundle):
    db = biomed_bundle.database
    derived = set()
    for parent, _, child in db.edges("is-parent-of"):
        for anatomy in db.successors(parent, "ph-a-assoc"):
            derived.add((child, "ph-a-indirect", anatomy))
        for disease in db.predecessors(parent, "dd-ph-assoc"):
            derived.add((disease, "dd-ph-indirect", child))
    actual = set(db.edges("ph-a-indirect")) | set(db.edges("dd-ph-indirect"))
    assert actual == derived


def test_biomed_ground_truth_queries_are_diseases(biomed_bundle):
    db = biomed_bundle.database
    for query, drug in biomed_bundle.ground_truth.items():
        assert db.node_type(query) == "disont-disease"
        assert db.node_type(drug) == "drug"


def test_biomed_ground_truth_reachable_via_meta_path(biomed_bundle):
    """The planted drug is reachable along the evaluation pattern."""
    from repro.constraints import rpq_pairs
    from repro.lang import parse_pattern

    db = biomed_bundle.database
    pairs = rpq_pairs(
        db, parse_pattern("dd-ph-indirect.ph-pr-assoc.targets-")
    )
    for query, drug in biomed_bundle.ground_truth.items():
        assert (query, drug) in pairs


def test_biomed_query_count():
    bundle = generate_biomed_small(num_queries=10)
    assert len(bundle.ground_truth) == 10


def test_mas_papers_have_conf_and_area(mas_bundle):
    db = mas_bundle.database
    for paper in db.nodes_of_type("paper"):
        assert len(db.successors(paper, "pub-in")) == 1
        assert len(db.successors(paper, "p-area")) == 1


def test_figure1_matches_paper_fragment():
    db = figure1_dblp()
    assert db.has_edge("SimilarityMining", "p-in", "VLDB")
    assert db.has_edge("SimilarityMining", "r-a", "DataMining")
    assert db.num_nodes() == 8


def test_bundle_info_recorded(dblp_small):
    assert dblp_small.info["name"] == "DBLP"
    assert "seed" in dblp_small.info


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def test_degree_sampling_deterministic(dblp_small):
    db = dblp_small.database
    first = sample_queries_by_degree(db, "proc", 10, seed=3)
    second = sample_queries_by_degree(db, "proc", 10, seed=3)
    assert first == second


def test_degree_sampling_distinct(dblp_small):
    queries = sample_queries_by_degree(dblp_small.database, "proc", 10, seed=3)
    assert len(queries) == len(set(queries)) == 10


def test_degree_sampling_prefers_high_degree(dblp_small):
    db = dblp_small.database
    procs = db.nodes_of_type("proc")
    degrees = {p: db.degree(p) for p in procs}
    # Sample many times; the overall mean degree of sampled nodes should
    # exceed the population mean.
    sampled = []
    for seed in range(10):
        sampled.extend(sample_queries_by_degree(db, "proc", 5, seed=seed))
    population_mean = sum(degrees.values()) / len(degrees)
    sample_mean = sum(degrees[p] for p in sampled) / len(sampled)
    assert sample_mean > population_mean


def test_degree_sampling_returns_all_when_short(dblp_small):
    db = dblp_small.database
    everything = sample_queries_by_degree(db, "proc", 10_000, seed=0)
    assert set(everything) == {
        p for p in db.nodes_of_type("proc") if db.degree(p) > 0
    }


def test_uniform_queries(dblp_small):
    db = dblp_small.database
    queries = uniform_queries(db, "paper", 15, seed=0)
    assert len(queries) == 15
    assert all(db.node_type(q) == "paper" for q in queries)


# ----------------------------------------------------------------------
# SeededGenerator helpers
# ----------------------------------------------------------------------
def test_make_ids():
    gen = SeededGenerator(0)
    assert gen.make_ids("x", 3) == ["x:0", "x:1", "x:2"]


def test_zipf_sample_distinct():
    gen = SeededGenerator(0)
    items = list(range(50))
    sample = gen.zipf_sample(items, 10)
    assert len(sample) == len(set(sample)) == 10


def test_zipf_sample_caps_at_population():
    gen = SeededGenerator(0)
    assert len(gen.zipf_sample([1, 2, 3], 10)) == 3


def test_zipf_choice_prefers_head():
    gen = SeededGenerator(0)
    items = list(range(20))
    picks = [gen.zipf_choice(items, exponent=1.5) for _ in range(300)]
    head = sum(1 for p in picks if p < 5)
    assert head > 150


# ----------------------------------------------------------------------
# zipf_sample rewrite (cumulative-weight bisect) and bundle versioning
# ----------------------------------------------------------------------
def test_zipf_sample_deterministic_per_seed():
    items = list(range(500))
    first = SeededGenerator(11).zipf_sample(items, 40)
    second = SeededGenerator(11).zipf_sample(items, 40)
    third = SeededGenerator(12).zipf_sample(items, 40)
    assert first == second
    assert first != third


def test_zipf_sample_scales_to_large_pools():
    # Regression for the O(count * |pool|) rebuild-the-weights path:
    # the rejection/bisect implementation must handle a 200k pool
    # without materializing per-draw weight lists.  (The old path took
    # minutes here; any pathological slowdown will trip the suite's
    # global duration budget.)
    items = list(range(200_000))
    sample = SeededGenerator(3).zipf_sample(items, 500)
    assert len(sample) == len(set(sample)) == 500


def test_zipf_sample_dense_draw_uses_weighted_order():
    # count close to the pool size exercises the without-replacement
    # fallback; the head must still be over-represented early.
    items = list(range(40))
    sample = SeededGenerator(5).zipf_sample(items, 30, exponent=1.5)
    assert len(sample) == len(set(sample)) == 30
    head_positions = [sample.index(i) for i in range(5) if i in sample]
    assert head_positions and min(head_positions) < 5


def test_zipf_choice_matches_cumulative_bisect():
    import bisect as _bisect
    import itertools as _itertools
    import random as _random

    items = list(range(64))
    gen = SeededGenerator(9)
    mirror = _random.Random(9)
    weights = [1.0 / (rank**1.2) for rank in range(1, 65)]
    cumulative = list(_itertools.accumulate(weights))
    for _ in range(200):
        pick = gen.zipf_choice(items, exponent=1.2)
        draw = mirror.random() * cumulative[-1]
        expected = min(
            _bisect.bisect_right(cumulative, draw), len(items) - 1
        )
        assert pick == items[expected]


def test_bundles_stamp_bundle_version():
    from repro.datasets import BUNDLE_VERSION

    assert BUNDLE_VERSION == 2
    for factory in (generate_dblp, generate_wsu, generate_mas):
        assert factory(seed=1).info["bundle_version"] == BUNDLE_VERSION


# ----------------------------------------------------------------------
# Scale generator
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scale_bundle():
    from repro.datasets import generate_dblp_scale

    return generate_dblp_scale(5000, seed=4)


def test_scale_generator_deterministic(scale_bundle):
    from repro.datasets import generate_dblp_scale

    again = generate_dblp_scale(5000, seed=4)
    assert again.database.same_content(scale_bundle.database)
    assert again.info == scale_bundle.info
    other = generate_dblp_scale(5000, seed=5)
    assert not other.database.same_content(scale_bundle.database)


def test_scale_generator_edge_count_near_target(scale_bundle):
    realized = scale_bundle.database.num_edges()
    assert scale_bundle.info["num_edges"] == realized
    # Author draws dedup under set semantics and the last author
    # cohort rounds up, so the realized count lands within 10% of the
    # target on either side.
    assert 0.9 * 5000 <= realized <= 1.1 * 5000


def test_scale_generator_rejects_tiny_budget():
    from repro.datasets import generate_dblp_scale
    from repro.exceptions import ConfigurationError

    with pytest.raises(ConfigurationError):
        generate_dblp_scale(50)


def test_scale_generator_schema_conformance(scale_bundle):
    database = scale_bundle.database
    for source, label, target in database.edges():
        if label == "p-in":
            assert database.node_type(source) == "paper"
            assert database.node_type(target) == "proc"
        elif label == "r-a":
            assert database.node_type(source) == "paper"
            assert database.node_type(target) == "area"
        elif label == "w":
            assert database.node_type(source) == "author"
            assert database.node_type(target) == "paper"
        else:
            raise AssertionError("unexpected label {}".format(label))


def test_scale_generator_papers_inherit_proc_areas(scale_bundle):
    # The DBLP structural constraint the paper's transformations rely
    # on: a paper's research areas are exactly its proceedings' areas —
    # so any two papers of the same proceedings share one area set.
    database = scale_bundle.database
    paper_areas = {
        paper: frozenset(targets)
        for paper, targets in database.adjacency_lists("r-a")
    }
    seen_per_proc = {}
    for paper, procs in database.adjacency_lists("p-in"):
        (proc,) = procs
        areas = paper_areas[paper]
        assert areas  # every venue drew at least one area
        expected = seen_per_proc.setdefault(proc, areas)
        assert areas == expected, proc
    assert len(seen_per_proc) > 1


def test_scale_generator_suggested_queries(scale_bundle):
    database = scale_bundle.database
    suggested = scale_bundle.info["suggested_queries"]
    assert suggested
    for node in suggested[:10]:
        assert database.node_type(node) == "paper"
        assert database.degree(node) >= 1


def test_scale_generator_skewed_venues(scale_bundle):
    # Zipf venue popularity: the most popular venue holds several times
    # its fair share of papers.
    database = scale_bundle.database
    counts = {}
    for _, targets in database.adjacency_lists("p-in"):
        for proc in targets:
            counts[proc] = counts.get(proc, 0) + 1
    # The default exponent is deliberately mild (see scale.py), but
    # the head venue must still clearly out-draw the tail.
    assert max(counts.values()) > 1.5 * min(counts.values())
