"""Tests for the command-line interface."""

import io
import os

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def dblp_json(tmp_path):
    path = os.path.join(tmp_path, "dblp.json")
    code, _ = run_cli(
        ["generate", "--dataset", "dblp-small", "--seed", "3", "--out", path]
    )
    assert code == 0
    return path


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_generate_writes_file(tmp_path):
    path = os.path.join(tmp_path, "db.json")
    code, output = run_cli(
        ["generate", "--dataset", "wsu", "--out", path]
    )
    assert code == 0
    assert os.path.exists(path)
    assert "nodes" in output


def test_generate_deterministic(tmp_path):
    a = os.path.join(tmp_path, "a.json")
    b = os.path.join(tmp_path, "b.json")
    run_cli(["generate", "--dataset", "wsu", "--seed", "9", "--out", a])
    run_cli(["generate", "--dataset", "wsu", "--seed", "9", "--out", b])
    assert open(a).read() == open(b).read()


def test_stats(dblp_json):
    code, output = run_cli(["stats", dblp_json])
    assert code == 0
    assert "nodes" in output
    assert "r-a" in output
    assert "paper" in output


def test_stats_missing_file():
    code, _ = run_cli(["stats", "/nonexistent/db.json"])
    assert code == 2


def test_query(dblp_json):
    code, output = run_cli(
        [
            "query",
            dblp_json,
            "--pattern",
            "p-in-.r-a.r-a-.p-in",
            "--node",
            "proc:0",
            "--top",
            "5",
        ]
    )
    assert code == 0
    lines = [line for line in output.splitlines() if line.strip()]
    assert 1 <= len(lines) <= 5
    assert "proc:" in output


def test_query_with_algorithm_flag(dblp_json):
    code, output = run_cli(
        [
            "query",
            dblp_json,
            "--algorithm",
            "rwr",
            "--node",
            "proc:0",
            "--top",
            "5",
        ]
    )
    assert code == 0
    assert "proc:" in output


def test_query_pattern_algorithm_requires_pattern(dblp_json):
    code, _ = run_cli(
        ["query", dblp_json, "--algorithm", "pathsim", "--node", "proc:0"]
    )
    assert code == 2


def test_query_rejects_pattern_for_topology_algorithm(dblp_json):
    # A supplied --pattern must never be silently ignored.
    code, _ = run_cli(
        [
            "query",
            dblp_json,
            "--algorithm",
            "rwr",
            "--pattern",
            "r-a-.r-a",
            "--node",
            "proc:0",
        ]
    )
    assert code == 2


def test_query_expand_prints_patterns_used(dblp_json):
    code, output = run_cli(
        [
            "query",
            dblp_json,
            "--pattern",
            "p-in.p-in-",
            "--node",
            "paper:0",
            "--expand",
            "--max-expand",
            "8",
            "--top",
            "3",
        ]
    )
    assert code == 0
    assert "relsim over" in output
    assert "p-in.p-in-" in output


def test_query_expand_rejects_topology_algorithm(dblp_json):
    code, _ = run_cli(
        [
            "query",
            dblp_json,
            "--algorithm",
            "rwr",
            "--node",
            "proc:0",
            "--expand",
        ]
    )
    assert code == 2


def test_query_unknown_algorithm_rejected(dblp_json):
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["query", dblp_json, "--algorithm", "nope", "--node", "x"]
        )


def test_query_bad_pattern(dblp_json):
    code, _ = run_cli(
        ["query", dblp_json, "--pattern", "((", "--node", "proc:0"]
    )
    assert code == 2


def test_query_unknown_node(dblp_json):
    code, _ = run_cli(
        ["query", dblp_json, "--pattern", "r-a", "--node", "ghost"]
    )
    assert code == 2


def test_transform(dblp_json, tmp_path):
    out_path = os.path.join(tmp_path, "sigm.json")
    code, output = run_cli(
        ["transform", dblp_json, "--mapping", "dblp2sigm", "--out", out_path]
    )
    assert code == 0
    assert os.path.exists(out_path)
    assert "DBLP2SIGM" in output

    # The transformed database answers queries with the target pattern.
    code, output = run_cli(
        [
            "query",
            out_path,
            "--pattern",
            "r-a.r-a-",
            "--node",
            "proc:0",
        ]
    )
    assert code == 0


def test_explain(dblp_json):
    code, output = run_cli(
        [
            "explain",
            dblp_json,
            "--pattern",
            "r-a-.r-a",
            "--pattern",
            "(r-a-.r-a)-",
        ]
    )
    assert code == 0
    assert "canonical: r-a-.r-a" in output
    assert "order:" in output
    assert "shared sub-plans" in output


def test_explain_expand(dblp_json):
    code, output = run_cli(
        [
            "explain",
            dblp_json,
            "--pattern",
            "r-a-.p-in.p-in-.r-a",
            "--expand",
            "--max-expand",
            "8",
        ]
    )
    assert code == 0
    assert "8 patterns" in output
    assert "shared sub-plans" in output


def test_explain_expand_rejects_pattern_set(dblp_json):
    code, _ = run_cli(
        [
            "explain",
            dblp_json,
            "--pattern",
            "r-a",
            "--pattern",
            "r-a-",
            "--expand",
        ]
    )
    assert code == 2


def test_patterns(dblp_json):
    code, output = run_cli(
        ["patterns", dblp_json, "--pattern", "r-a-.p-in.p-in-.r-a",
         "--max", "8"]
    )
    assert code == 0
    assert "E_p" in output
    assert "r-a-.p-in.p-in-.r-a" in output


def test_patterns_no_filters_flag(dblp_json):
    code, output = run_cli(
        [
            "patterns",
            dblp_json,
            "--pattern",
            "p-in.p-in-",
            "--no-filters",
            "--max",
            "8",
        ]
    )
    assert code == 0
    assert "constraints used" in output


def test_serve_bench(dblp_json):
    code, output = run_cli(
        [
            "serve-bench",
            dblp_json,
            "--pattern",
            "r-a-.p-in.p-in-.r-a",
            "--expand",
            "--queries",
            "6",
            "--threads",
            "2",
            "--node-type",
            "area",
        ]
    )
    assert code == 0
    assert "per-call session.query" in output
    assert "prepared.run" in output
    assert "results identical      : yes" in output


def test_serve_bench_infers_node_type(dblp_json):
    code, output = run_cli(
        [
            "serve-bench",
            dblp_json,
            "--pattern",
            "p-in.p-in-",
            "--queries",
            "4",
            "--threads",
            "2",
        ]
    )
    assert code == 0
    # dblp-small's most common node type is 'paper'.
    assert "type 'paper'" in output


def test_serve_bench_with_delta_flags_serves_post_delta_snapshot(dblp_json):
    # The CLI serving path on a post-delta snapshot: the delta routes
    # through SimilarityService's incremental apply, and the benchmark
    # then runs (with identical per-call vs prepared results) on the
    # patched snapshot.
    code, output = run_cli(
        [
            "serve-bench",
            dblp_json,
            "--pattern",
            "r-a-.p-in.p-in-.r-a",
            "--queries",
            "4",
            "--threads",
            "2",
            "--node-type",
            "area",
            "--add-edge",
            "paper:0,p-in,proc:0",
            "--remove-edge",
            "paper:0,p-in,proc:17",
        ]
    )
    assert code == 0
    assert "applied delta (+1 / -1 edges) via incremental path" in output
    assert "snapshot version 2" in output
    assert "results identical      : yes" in output


def test_serve_bench_delta_flag_validation(dblp_json):
    code, _ = run_cli(
        [
            "serve-bench",
            dblp_json,
            "--pattern",
            "p-in.p-in-",
            "--add-edge",
            "not-an-edge",
        ]
    )
    assert code == 2
    # Removing an absent edge fails the whole command, serving nothing.
    code, _ = run_cli(
        [
            "serve-bench",
            dblp_json,
            "--pattern",
            "p-in.p-in-",
            "--remove-edge",
            "ghost,p-in,nowhere",
        ]
    )
    assert code == 2


def test_explain_with_delta_flags_plans_post_delta_snapshot(dblp_json):
    baseline_code, baseline = run_cli(
        ["explain", dblp_json, "--pattern", "p-in.p-in-"]
    )
    code, output = run_cli(
        [
            "explain",
            dblp_json,
            "--pattern",
            "p-in.p-in-",
            "--add-edge",
            "paper:1,p-in,proc:3",
        ]
    )
    assert baseline_code == 0 and code == 0
    assert "applied delta (+1 / -0 edges) via incremental path" in output
    assert "compiled plan: 1 pattern" in output
    # The report is computed on the post-delta snapshot: the p-in leaf
    # gained an edge, so the estimated nnz differs from the baseline.
    baseline_estimate = [
        line for line in baseline.splitlines() if "est nnz" in line
    ]
    delta_estimate = [
        line for line in output.splitlines() if "est nnz" in line
    ]
    assert baseline_estimate and delta_estimate
    assert baseline_estimate != delta_estimate


def test_serve_bench_rejects_pattern_for_topology_algorithms(dblp_json):
    code, _ = run_cli(
        [
            "serve-bench",
            dblp_json,
            "--algorithm",
            "rwr",
            "--pattern",
            "r-a",
        ]
    )
    assert code == 2


def test_robustness_command():
    code, output = run_cli(
        [
            "robustness",
            "--dataset",
            "dblp-small",
            "--mapping",
            "dblp2sigm",
            "--queries",
            "5",
        ]
    )
    assert code == 0
    assert "RelSim" in output
    # RelSim's row must be exactly zero.
    relsim_line = next(
        line for line in output.splitlines() if line.startswith("RelSim")
    )
    assert "0.000" in relsim_line


def test_unknown_dataset_rejected(tmp_path):
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["generate", "--dataset", "nope", "--out", "x.json"]
        )


def test_stats_live_reports_cache_and_delta_counters(dblp_json):
    code, output = run_cli(["stats", dblp_json, "--live"])
    assert code == 0
    assert "serving (version 1):" in output
    assert "cache_info:" in output
    assert "matrices" in output
    assert "delta_stats:" in output
    assert "last_path" in output
    assert "last_error" not in output  # healthy service: nothing to report


def test_stats_live_applies_delta_flags(dblp_json):
    from repro.graph.io import load_json

    database = load_json(dblp_json)
    paper = sorted(database.nodes_of_type("paper"))[0]
    proc = sorted(database.nodes_of_type("proc"))[-1]
    flag = "{},p-in,{}".format(paper, proc)
    code, output = run_cli(["stats", dblp_json, "--live", "--add-edge", flag])
    assert code == 0
    assert "serving (version 2):" in output
    assert "incremental" in output


def test_stats_delta_flags_require_live(dblp_json, capsys):
    code, _ = run_cli(["stats", dblp_json, "--add-edge", "a,p-in,b"])
    assert code == 2
    assert "require stats --live" in capsys.readouterr().err


def test_stats_needs_database_or_snapshot(capsys):
    code, _ = run_cli(["stats"])
    assert code == 2
    assert "database path or --snapshot" in capsys.readouterr().err


def test_stats_reads_snapshot_files(dblp_json, tmp_path):
    from repro.api import SimilaritySession
    from repro.graph.io import load_json
    from repro.server import save_snapshot

    path = os.path.join(tmp_path, "stats.npz")
    session = SimilaritySession(load_json(dblp_json))
    session.prepare(algorithm="pathsim", pattern="p-in.p-in-", top_k=5)
    save_snapshot(path, session)

    code, output = run_cli(["stats", "--snapshot", path])
    assert code == 0
    assert "serving snapshot {}".format(path) in output
    assert "0 skipped" in output

    code, output = run_cli(["stats", "--snapshot", path, "--live"])
    assert code == 0
    assert "serving (version 1):" in output
    # Warm start: the preloaded cache starts with zero misses.
    misses_line = next(
        line for line in output.splitlines() if "misses" in line
    )
    assert misses_line.split()[-1] == "0"


def test_serve_needs_database_or_snapshot(capsys):
    code, _ = run_cli(["serve"])
    assert code == 2
    assert "database path or an existing --snapshot" in capsys.readouterr().err


def test_serve_validates_algorithm_flags(dblp_json, capsys):
    # Pattern algorithms demand --pattern; the check fires before any
    # socket is bound, so this exercises serve without serving.
    code, _ = run_cli(["serve", dblp_json, "--algorithm", "relsim"])
    assert code == 2
    assert "needs --pattern" in capsys.readouterr().err
    code, _ = run_cli(
        ["serve", dblp_json, "--algorithm", "rwr", "--pattern", "p-in"]
    )
    assert code == 2
    assert "does not take --pattern" in capsys.readouterr().err


def test_check_clean_pattern(dblp_json):
    code, output = run_cli(
        ["check", dblp_json, "--pattern", "r-a-.r-a"]
    )
    assert code == 0
    assert "r-a-.r-a: ok" in output
    assert "endpoints {area->area}" in output
    assert "checked 1 pattern: 0 errors, 0 warnings" in output


def test_check_reports_errors_with_caret(dblp_json):
    code, output = run_cli(["check", dblp_json, "--pattern", "r-a.r-a"])
    assert code == 1
    assert "1 error" in output
    assert "error[endpoint-mismatch] at 4..7" in output
    # Caret line underlines the offending subterm of the rendering.
    lines = output.splitlines()
    caret = next(line for line in lines if line.strip().startswith("^"))
    assert caret.strip() == "^^^"


def test_check_mixed_patterns_exit_code(dblp_json):
    code, output = run_cli(
        [
            "check",
            dblp_json,
            "--pattern",
            "r-a-.r-a",
            "--pattern",
            "no-such-label",
        ]
    )
    assert code == 1
    assert "unknown-label" in output
    assert "checked 2 patterns: 1 error" in output


def test_check_json_output(dblp_json):
    import json

    code, output = run_cli(
        ["check", dblp_json, "--pattern", "r-a.r-a", "--json"]
    )
    assert code == 1
    payload = json.loads(output)
    assert payload["errors"] == 1
    entry = payload["patterns"][0]
    assert entry["ok"] is False
    diagnostic = entry["diagnostics"][0]
    assert diagnostic["code"] == "endpoint-mismatch"
    assert diagnostic["span"] == [4, 7]


def test_check_expand(dblp_json):
    code, output = run_cli(
        [
            "check",
            dblp_json,
            "--pattern",
            "r-a-.p-in.p-in-.r-a",
            "--expand",
            "--max-expand",
            "8",
        ]
    )
    assert code == 0
    assert "checked 8 patterns: 0 errors" in output


def test_check_bad_pattern_syntax(dblp_json, capsys):
    code, _ = run_cli(["check", dblp_json, "--pattern", "(((", "--json"])
    assert code == 2
    assert capsys.readouterr().err


# -- watch -------------------------------------------------------------


@pytest.fixture
def watch_server(fig1):
    from repro.api import SimilarityService
    from repro.server import BackgroundServer

    service = SimilarityService(fig1)
    prepared = service.prepare(
        algorithm="relsim", pattern="r-a-.p-in.p-in-.r-a", top_k=2
    )
    with BackgroundServer(service, prepared, port=0) as background:
        yield "http://{}:{}".format(*background.address), prepared


def test_watch_prints_the_snapshot_event(watch_server):
    url, prepared = watch_server
    code, output = run_cli(
        ["watch", url, "--node", "Databases", "--max-events", "1"]
    )
    assert code == 0
    assert output.startswith("snapshot v1")
    for node, score in prepared.run("Databases").items():
        assert "{}={:.4f}".format(node, score) in output


def test_watch_json_lines(watch_server):
    import json

    url, _ = watch_server
    code, output = run_cli(
        [
            "watch", url, "--node", "Databases", "--top", "1",
            "--max-events", "1", "--json",
        ]
    )
    assert code == 0
    record = json.loads(output.strip())
    assert record["event"] == "snapshot"
    assert record["data"]["version"] == 1
    assert len(record["data"]["ranking"]) == 1


def test_watch_reports_server_rejections(watch_server, capsys):
    url, _ = watch_server
    code, output = run_cli(["watch", url, "--node", "NoSuchNode"])
    assert code == 2
    assert output == ""
    assert "404" in capsys.readouterr().err


def test_watch_rejects_unparseable_url(capsys):
    code, _ = run_cli(["watch", "http://", "--node", "x"])
    assert code == 2
    assert "server URL" in capsys.readouterr().err
