"""Plan compiler tests: canonical caching, CSE, and the naive oracle.

The load-bearing property: for ANY pattern AST, the canonical plan's
matrix is exactly equal (bitwise — counts are integers, float64-exact)
to the seed recursive evaluation ``naive_matrix``; when the naive
evaluation diverges (Kleene star over a cycle), the plan path raises
the same error.  Random patterns are generated over random DAGs so
plain label stars converge, but stars over diagonal-producing operands
([p], eps in a union, ...) still exercise the divergence path.
"""

import random

import pytest

from repro.exceptions import StarDivergenceError

from repro.core import RelSim
from repro.graph import GraphDatabase, Schema
from repro.lang import (
    CommutingMatrixEngine,
    canonicalize,
    naive_matrix,
    parse_pattern,
)
from repro.lang.ast import (
    Conj,
    EPSILON,
    Label,
    Nested,
    Reverse,
    Skip,
    Star,
    concat,
    union,
)


def same_matrix(a, b):
    return (a != b).nnz == 0


# ----------------------------------------------------------------------
# Random pattern generation over a DAG multigraph
# ----------------------------------------------------------------------
LABELS = ("a", "b", "c")


def dag_db(seed, num_nodes=12):
    """Random DAG (edges low -> high index): label stars converge."""
    rng = random.Random(seed)
    db = GraphDatabase(Schema(list(LABELS)))
    for _ in range(3 * num_nodes):
        u = rng.randrange(num_nodes - 1)
        v = rng.randrange(u + 1, num_nodes)
        db.add_edge(u, rng.choice(LABELS), v)
    return db


def random_pattern(rng, depth=3):
    if depth <= 0:
        return rng.choice(
            [Label("a"), Label("b"), Label("c"), Reverse(Label("a")), EPSILON]
        )
    roll = rng.random()
    if roll < 0.30:
        return concat(
            *[random_pattern(rng, depth - 1) for _ in range(rng.randint(2, 3))]
        )
    if roll < 0.45:
        return union(
            *[random_pattern(rng, depth - 1) for _ in range(rng.randint(2, 3))]
        )
    if roll < 0.55:
        return Reverse(random_pattern(rng, depth - 1))
    if roll < 0.65:
        return Skip(random_pattern(rng, depth - 1))
    if roll < 0.75:
        return Nested(random_pattern(rng, depth - 1))
    if roll < 0.82:
        return Star(random_pattern(rng, depth - 1))
    if roll < 0.90:
        return Conj(
            [random_pattern(rng, depth - 1) for _ in range(2)]
        )
    return random_pattern(rng, 0)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_property_plan_matches_naive_on_random_patterns(seed):
    db = dag_db(seed)
    engine = CommutingMatrixEngine(db)
    rng = random.Random(1000 + seed)
    for _ in range(40):
        pattern = random_pattern(rng)
        try:
            naive = naive_matrix(engine.view, pattern)
        except StarDivergenceError:
            # A star whose operand matrix has a cycle (e.g. a diagonal
            # from a nested/eps sub-pattern) legitimately diverges; the
            # plan path must diverge identically, not truncate.
            with pytest.raises(StarDivergenceError):
                engine.matrix(pattern)
            continue
        planned = engine.matrix(pattern)
        assert same_matrix(planned, naive), str(pattern)


def test_skip_of_composite_is_not_collapsed(tiny_db):
    # canonicalize() keeps the count-preserving subset of simplify():
    # <<a.b>> genuinely booleanizes (node 1 reaches 4 via two a.b
    # paths), so it must stay a distinct plan from a.b.
    engine = CommutingMatrixEngine(tiny_db)
    counted = engine.matrix(parse_pattern("a.b"))
    skipped = engine.matrix(parse_pattern("<<a.b>>"))
    assert counted.max() > 1
    assert skipped.max() == 1
    assert not same_matrix(counted, skipped)
    assert same_matrix(
        skipped, naive_matrix(engine.view, parse_pattern("<<a.b>>"))
    )


# ----------------------------------------------------------------------
# Canonicalization: equivalent spellings share one cache entry
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "first, second",
    [
        ("(a.b).c", "a.(b.c)"),  # associativity
        ("(a.b)-", "b-.a-"),  # reverse pushed to leaves
        ("((a.b)-)-", "a.b"),  # double reversal
        ("a+b", "b+a"),  # union commutes
        ("a+b+a", "b+a"),  # union dedupe
        ("<<<<a.b>>>>", "<<a.b>>"),  # booleanizing twice
        ("eps.a.eps.b", "a.b"),  # epsilon units
        ("(a.b.c)-", "c-.b-.a-"),
        ("(b*)-", "(b-)*"),  # reverse through star (b is acyclic here)
        ("[a.b]-", "[a.b]"),  # nested is diagonal
    ],
)
def test_equivalent_spellings_hit_same_cache_entry(tiny_db, first, second):
    engine = CommutingMatrixEngine(tiny_db)
    m1 = engine.matrix(parse_pattern(first))
    info = engine.cache_info()
    m2 = engine.matrix(parse_pattern(second))
    after = engine.cache_info()
    assert m1 is m2
    assert after["hits"] == info["hits"] + 1
    assert after["misses"] == info["misses"]


def test_canonicalize_is_idempotent_and_type_checked():
    pattern = parse_pattern("((a.b)- + <<{0}>>).c*".format("<<a>>"))
    once = canonicalize(pattern)
    assert canonicalize(once) == once
    with pytest.raises(TypeError):
        canonicalize("a.b")


# ----------------------------------------------------------------------
# Cross-pattern CSE and cost-ordered chains
# ----------------------------------------------------------------------
def test_matrices_many_shares_prefix_across_patterns(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    patterns = [parse_pattern("a.b.c"), parse_pattern("a.b.c-")]
    engine.matrices_many(patterns)
    # The shared prefix a.b must have been materialized once: asking for
    # it now is a pure cache hit.
    info = engine.cache_info()
    engine.matrix(parse_pattern("a.b"))
    after = engine.cache_info()
    assert after["hits"] == info["hits"] + 1
    assert after["misses"] == info["misses"]


def test_matrices_many_matches_naive_and_is_idempotent(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    patterns = [
        parse_pattern(text)
        for text in ("a.b.c", "a.b.c-", "(a.b)-", "<<a.b>>.c", "a+b.c")
    ]
    first = engine.matrices_many(patterns)
    for pattern, matrix in zip(patterns, first):
        assert same_matrix(matrix, naive_matrix(engine.view, pattern))
    info = engine.cache_info()
    second = engine.matrices_many(patterns)
    after = engine.cache_info()
    assert all(a is b for a, b in zip(first, second))
    assert after["misses"] == info["misses"]


def test_materialize_builds_longer_chains_from_shorter(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    cached = engine.materialize_simple_patterns(max_length=3, labels=["a", "b"])
    # 4 steps: 4 + 16 + 64 patterns; every length-3 chain splits into a
    # length-2 chain (already materialized) times a step, so the cache
    # holds exactly the enumerated patterns — no stray intermediates.
    assert cached == 4 + 16 + 64
    assert engine.cache_size() == cached


def test_chain_order_prefers_shared_prefix(tiny_db):
    # a.b appears in both chains (count >= 2), so the amortized DP cost
    # steers both splits through the shared boundary.
    engine = CommutingMatrixEngine(tiny_db)
    plans = engine.compiler.compile_many(
        [parse_pattern("a.b.c"), parse_pattern("a.b.c-")]
    )
    for plan in plans:
        engine._ensure_ordered(plan)
    assert plans[0].left is plans[1].left
    assert str(plans[0].left) == "a.b"


def test_raw_distinct_union_duplicates_are_summed(tiny_db):
    # The paper's dedup rule is *syntactic*: a-- + a keeps both
    # disjuncts in the recursive semantics (the ASTs differ), so the
    # canonical plan must sum M_a twice even though the disjuncts are
    # canonically equal.  Only a literal p+p collapses.
    engine = CommutingMatrixEngine(tiny_db)
    for text in ("a--+a", "<<<<a.b>>>>+<<a.b>>", "(b-.a-)+(a.b)-"):
        pattern = parse_pattern(text)
        assert same_matrix(
            engine.matrix(pattern), naive_matrix(engine.view, pattern)
        ), text


# ----------------------------------------------------------------------
# Plan-backed RelSim: rankings unchanged
# ----------------------------------------------------------------------
def test_relsim_rankings_match_dict_path_on_expanded_set(fig1):
    relsim = RelSim.from_simple_pattern(fig1, "p-in.p-in-", max_patterns=16)
    queries = [node for node in fig1.nodes_of_type("proc")][:6]
    fast = relsim.rank_many(queries, top_k=5)
    reference = relsim.rank_many_via_scores(queries, top_k=5)
    for query in queries:
        assert fast[query].items() == reference[query].items()


def test_relsim_scores_unchanged_by_plan_layer(fig1):
    # Scores must equal a from-scratch naive evaluation of each pattern.
    relsim = RelSim.from_simple_pattern(fig1, "p-in.p-in-", max_patterns=16)
    engine = relsim.engine
    for pattern in relsim.patterns:
        planned = engine.matrix(pattern)
        naive = naive_matrix(engine.view, pattern)
        assert same_matrix(planned, naive)


def test_relsim_respects_small_cache_cap(fig1):
    # With an LRU cap smaller than the pattern set, score_rows must not
    # pre-materialize every matrix (that would pin the whole set and be
    # evicted before use); results stay identical to the uncapped path.
    from repro.api import SimilaritySession

    patterns = ["p-in.p-in-", "p-in-.r-a", "p-in-.p-in", "p-in.p-in-.p-in.p-in-"]
    capped = SimilaritySession(fig1, max_cached_matrices=2)
    uncapped = SimilaritySession(fig1)
    queries = ["DataMining", "Databases"]
    a = capped.rank_many(queries, patterns=patterns, top_k=5)
    b = uncapped.rank_many(queries, patterns=patterns, top_k=5)
    for query in queries:
        assert a[query].items() == b[query].items()
    assert capped.cache_info()["matrices"] <= 2


def test_compiler_prunes_singleton_subchain_counts(tiny_db):
    from repro.lang.plan import PlanCompiler

    compiler = PlanCompiler()
    compiler._MAX_SUBCHAIN_ENTRIES = 4
    compiler.compile(parse_pattern("a.b.c"))
    compiler.compile(parse_pattern("a.b.c-"))  # (a,b) reaches count 2
    compiler.compile(parse_pattern("b.c.a.b"))  # overflow: prune 1s
    assert len(compiler.subchain_uses) <= 4
    assert all(count > 1 for count in compiler.subchain_uses.values())


def test_compiler_pattern_memo_is_bounded(tiny_db):
    from repro.lang.ast import Label
    from repro.lang.plan import PlanCompiler

    compiler = PlanCompiler()
    compiler._MAX_PATTERN_MEMO = 3
    nodes = [compiler.compile(Label("a{}".format(i))) for i in range(10)]
    assert len(compiler._by_pattern) <= 3
    # Interning still canonicalizes across memo clears.
    assert compiler.compile(Label("a0")) is nodes[0]


# ----------------------------------------------------------------------
# Memory accounting
# ----------------------------------------------------------------------
def test_cache_info_reports_nnz_and_bytes(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    assert engine.cache_info()["nnz"] == 0
    assert engine.cache_info()["bytes"] == 0
    matrix = engine.matrix(parse_pattern("a"))
    info = engine.cache_info()
    assert info["nnz"] == matrix.nnz
    expected = (
        matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    )
    assert info["bytes"] == expected
    engine.column_norms(parse_pattern("a"))
    assert engine.cache_info()["bytes"] > expected  # norms counted too
    engine.matrix(parse_pattern("a.b"))
    assert engine.cache_info()["nnz"] > info["nnz"]


def test_cache_info_shrinks_on_eviction(tiny_db):
    engine = CommutingMatrixEngine(tiny_db, max_cached_matrices=1)
    engine.matrix(parse_pattern("a"))
    engine.matrix(parse_pattern("b"))
    info = engine.cache_info()
    assert info["matrices"] == 1
    assert info["nnz"] == engine.matrix(parse_pattern("b")).nnz


# ----------------------------------------------------------------------
# Explain
# ----------------------------------------------------------------------
def test_engine_explain_mentions_canonical_order_and_sharing(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    text = engine.explain(
        [parse_pattern("a.b.c"), parse_pattern("(a.b)-")]
    )
    assert "canonical: b-.a-" in text
    assert "order:" in text
    assert "shared sub-plans" in text
    assert "est nnz" in text


def test_explain_does_not_compute_products(tiny_db):
    engine = CommutingMatrixEngine(tiny_db)
    engine.explain([parse_pattern("a.b.c")])
    # Leaves may be touched for nnz estimates, but no product matrices
    # are cached by explain.
    assert engine.cache_size() == 0
