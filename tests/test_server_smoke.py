"""End-to-end smoke: ``repro serve`` as a real subprocess.

Boots the CLI entry point exactly the way an operator does (``python
-m repro.cli serve``), parses the announced port from stdout, drives
the HTTP surface with concurrent clients, applies a live delta, and
asserts a clean SIGTERM shutdown (exit code 0) plus a warm restart
from the checkpointed snapshot.  This is the test the CI
``server-smoke`` job runs.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import http.client

import pytest

from repro.api import SimilaritySession
from repro.cli import main as cli_main
from repro.graph.io import load_json

PATTERN = "r-a-.p-in.p-in-.r-a"
ANNOUNCE = re.compile(r"serving repro on http://([\d.]+):(\d+)")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


@pytest.fixture(scope="module")
def dblp_json(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "dblp.json")
    import io

    assert (
        cli_main(
            [
                "generate", "--dataset", "dblp-small",
                "--seed", "3", "--out", path,
            ],
            out=io.StringIO(),
        )
        == 0
    )
    return path


def _spawn(arguments):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (os.path.abspath(SRC), env.get("PYTHONPATH"))
        if part
    )
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli"] + arguments,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _await_announce(process):
    """Lines up to and including the serving announcement, plus address."""
    lines = []
    while True:
        line = process.stdout.readline()
        if not line:
            process.kill()
            raise AssertionError(
                "server exited before announcing: " + "".join(lines)
            )
        lines.append(line)
        match = ANNOUNCE.search(line)
        if match:
            return (match.group(1), int(match.group(2))), lines


def _call(address, method, path, payload=None, timeout=30):
    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        connection.request(method, path, body=body)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _terminate(process):
    process.send_signal(signal.SIGTERM)
    try:
        output, _ = process.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise
    return process.returncode, output


def test_serve_subprocess_lifecycle(dblp_json, tmp_path):
    snapshot = str(tmp_path / "serve.npz")
    process = _spawn(
        [
            "serve", dblp_json,
            "--algorithm", "relsim", "--pattern", PATTERN,
            "--top", "5", "--port", "0", "--snapshot", snapshot,
        ]
    )
    try:
        address, lines = _await_announce(process)
        assert any("wrote initial snapshot" in line for line in lines)
        assert os.path.exists(snapshot)

        database = load_json(dblp_json)
        session = SimilaritySession(database)
        prepared = session.prepare(
            algorithm="relsim", pattern=PATTERN, top_k=5
        )
        areas = sorted(database.nodes_of_type("area"))[:4]
        expected = {
            area: [[n, s] for n, s in prepared.run(area).items()]
            for area in areas
        }

        status, health = _call(address, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["version"] == 1

        # Concurrent clients: every response matches the direct run.
        failures = []

        def client(area):
            try:
                status, payload = _call(
                    address, "POST", "/query", {"node": area}
                )
                assert status == 200, payload
                assert payload["ranking"] == expected[area], area
            except Exception as error:  # surfaced below
                failures.append((area, error))

        threads = [
            threading.Thread(target=client, args=(area,))
            for area in areas * 3
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures[:3]

        # A live delta lands, bumps the version, and checkpoints.
        papers = sorted(database.nodes_of_type("paper"))
        procs = sorted(database.nodes_of_type("proc"))
        checkpoint_before = os.path.getmtime(snapshot)
        status, applied = _call(
            address,
            "POST",
            "/apply",
            {"edges_added": [[papers[0], "p-in", procs[-1]]]},
        )
        assert status == 200 and applied["version"] == 2
        deadline = time.monotonic() + 30
        while os.path.getmtime(snapshot) == checkpoint_before:
            assert time.monotonic() < deadline, "checkpoint never landed"
            time.sleep(0.05)

        status, stats = _call(address, "GET", "/statz")
        assert status == 200
        assert stats["version"] == 2
        assert stats["requests"] >= len(threads)
    except BaseException:
        process.kill()
        process.communicate()
        raise

    code, tail = _terminate(process)
    assert code == 0, "serve exited {} with output:\n{}".format(code, tail)

    # Warm restart: the checkpointed snapshot alone (no database
    # argument) serves the post-delta state.
    process = _spawn(["serve", "--snapshot", snapshot, "--port", "0",
                      "--algorithm", "relsim", "--pattern", PATTERN,
                      "--top", "5"])
    try:
        address, lines = _await_announce(process)
        assert any("warm start from" in line for line in lines)
        status, health = _call(address, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, payload = _call(
            address, "POST", "/query", {"node": sorted(
                load_json(dblp_json).nodes_of_type("area")
            )[0]},
        )
        assert status == 200 and payload["version"] == 1
    except BaseException:
        process.kill()
        process.communicate()
        raise
    code, tail = _terminate(process)
    assert code == 0, tail


def test_serve_rejects_missing_inputs(dblp_json):
    process = _spawn(["serve"])
    output, _ = process.communicate(timeout=60)
    assert process.returncode == 2
    assert "database path or an existing --snapshot" in output
